"""The execute phase: interchangeable scan backends behind one registry.

The compile phase (:mod:`repro.core.compiled`) produces one
:class:`CompiledDictionary`; this module holds every way to run input
through it.  A :class:`ScanBackend` consumes a :class:`ScanRequest`
(one contiguous buffer, a chunk iterator, or a file) plus a
:class:`ScanContext` (the per-dictionary execution state: cached worker
pools and shared tables) and returns a :class:`ScanOutcome` — the one
result shape the whole stack agrees on.  Counts are defined by the
dictionary's event semantics (one per dictionary entry recognized), so
every backend is bit-identical on the differential suite.

Registered backends, and the paper section each reproduces:

========== ======================================================== =======
name       strategy                                                 paper
========== ======================================================== =======
serial     reference event walk over every slice DFA                §3
chunked    in-process speculative fixpoint over the flat table      §4
fused      stacked multi-slice STT, one pass for every slice        §6
hotcold    cache-resident hot/cold union table, one gather per byte §4
hotcold2   pair-symbol hot table, one gather per two input bytes      §4
pooled     sharded process pool + shared STT + incremental repair   §6a
streaming  double-buffered staging ring, bounded-memory streams     Fig. 5
cellsim    exact counts + cycle-accounted Cell model (Table 1 v4)   §4/T1
========== ======================================================== =======

New execution strategies (GPU, thread pools, network shards) are new
``@register_backend`` entries, not new forks of the matcher.  Backend
*selection* is the execution planner's job
(:func:`repro.core.planner.plan_backend`); :func:`execute` glues the
two together and stamps wall-clock timing onto the outcome.
"""

from __future__ import annotations

import os
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import (IO, Dict, Iterable, List, Optional, Tuple, Type,
                    Union)

import numpy as np

from ..dfa.automaton import MatchEvent
from .compiled import CompiledDictionary
from .planner import plan_backend

__all__ = [
    "ScanOutcome",
    "ScanRequest",
    "ScanContext",
    "ScanBackend",
    "BackendError",
    "register_backend",
    "get_backend",
    "backend_names",
    "backend_specs",
    "execute",
]


class BackendError(Exception):
    """Raised for unknown backends or unsupported request shapes."""


@dataclass
class ScanOutcome:
    """What every backend returns: one scan's complete result.

    ``total_matches`` follows the dictionary's event semantics (one per
    entry recognized) on every backend; ``events`` / ``pattern_counts``
    are populated only by backends that support reporting; ``stats``
    carries backend-specific metadata (ring buffers cycled, shards
    repaired, modelled Cell cycles, ...).
    """

    total_matches: int
    bytes_scanned: int
    backend: str
    workers: int = 1
    events: Optional[List[MatchEvent]] = None
    pattern_counts: Optional[Dict[int, int]] = None
    seconds: float = 0.0
    stats: Dict[str, object] = field(default_factory=dict)

    @property
    def gbps(self) -> float:
        """Measured host bitrate of this scan."""
        if self.seconds <= 0:
            return 0.0
        return self.bytes_scanned * 8 / self.seconds / 1e9


@dataclass
class ScanRequest:
    """One scan's input: exactly one of ``data`` (contiguous bytes),
    ``chunks`` (an iterable of bytes-like pieces forming one logical
    stream) or ``file`` (a path or binary file object)."""

    data: Optional[bytes] = None
    chunks: Optional[Iterable] = None
    file: Optional[Union[str, os.PathLike, IO[bytes]]] = None
    workers: int = 1
    with_events: bool = False
    #: Allow the planner to pick the fused multi-slice path (the
    #: ``--no-fuse`` escape hatch sets this to ``False``).  Only
    #: consulted by auto-planning — an explicit backend name wins.
    fuse: bool = True
    #: Hot/cold escape hatch, mirroring ``fuse``: ``None`` lets the
    #: planner's cache-footprint rule decide, ``False`` forces the
    #: stacked fused path, ``True`` demands the cache-resident union
    #: scan (exact dictionaries only).  Only consulted by auto-planning.
    hot_cold: Optional[bool] = None
    #: Two-byte-stride escape hatch within the union-scan choice:
    #: ``None`` auto-selects the pair path exactly when the
    #: full-coverage pair table fits the hot budget, ``False`` keeps
    #: the one-byte union scan, ``True`` demands the pair path even at
    #: partial coverage.  Only consulted by auto-planning.
    two_byte: Optional[bool] = None
    #: Packed-prefilter escape hatch: ``None`` lets the planner mount
    #: the screening stage on large screenable blocks, ``False``
    #: disables it (``repro scan --no-prefilter``), ``True`` demands it
    #: (block input and a screenable dictionary required).  Unlike the
    #: other hatches this one is honoured for explicitly named backends
    #: too — the stage sits in front of whichever kernel runs.
    prefilter: Optional[bool] = None

    def __post_init__(self) -> None:
        given = sum(x is not None
                    for x in (self.data, self.chunks, self.file))
        if given != 1:
            raise BackendError(
                "exactly one of data/chunks/file must be given")
        if self.workers < 1:
            raise BackendError("workers must be >= 1")

    @property
    def kind(self) -> str:
        if self.data is not None:
            return "block"
        if self.chunks is not None:
            return "stream"
        return "file"


class ScanContext:
    """Per-dictionary execution state shared by the backends.

    Owns the lazily built host-parallel scanners (one persistent pool +
    shared tables per worker count) and hands out the compiled
    dictionary's in-process flat scanners.  The matcher keeps one
    context for its lifetime; benchmarks and the CLI build their own.
    """

    def __init__(self, compiled: CompiledDictionary) -> None:
        self.compiled = compiled
        self._sharded: Dict[int, object] = {}
        self._kernels: Dict[str, object] = {}
        #: Scanner-side counters of the most recent
        #: :meth:`batch_totals` call (``None`` when it took the stacked
        #: fused path, which has no hot/cold accounting): scanner name,
        #: steps, cold_steps, escapes, hot_hit_rate.  The service's
        #: batcher aggregates these per dictionary generation.
        self.last_batch_scan_stats: Optional[Dict] = None

    def scanners(self):
        return self.compiled.scanners()

    def weights(self) -> List[np.ndarray]:
        return [w for _, w in self.compiled.tables()]

    def fused(self):
        """The dictionary's cached
        :class:`~repro.core.engine.FusedScanner` (stacked multi-slice
        table, one pass over the input for every slice)."""
        return self.compiled.fused_scanner()

    def hot_cold(self):
        """The dictionary's cached
        :class:`~repro.core.engine.HotColdFusedScanner` (cache-resident
        union table, hot/cold split).  Exact dictionaries only."""
        if not self.compiled.supports_hot_cold:
            raise BackendError(
                "hot/cold scanning needs the union automaton; regex "
                "dictionaries have none (use the fused backend)")
        return self.compiled.hot_cold_scanner()

    def hot_cold2(self):
        """The dictionary's cached
        :class:`~repro.core.engine.HotCold2Scanner` (pair-symbol hot
        table over the union automaton, two input bytes per gather).
        Exact dictionaries only."""
        if not self.compiled.supports_hot_cold:
            raise BackendError(
                "two-byte-stride scanning needs the union automaton; "
                "regex dictionaries have none (use the fused backend)")
        return self.compiled.hot_cold2_scanner()

    def kernel(self, name: str):
        """The named :class:`~repro.core.scan.kernels.ScanKernel` over
        this dictionary, built once and cached.  Raises
        :class:`BackendError` when the dictionary cannot serve it
        (union kernels over a regex dictionary)."""
        from .scan.kernels import get_kernel

        kern = self._kernels.get(name)
        if kern is None:
            cls = get_kernel(name)
            if not cls.supports(self.compiled):
                raise BackendError(
                    f"kernel {name!r} needs the union automaton; regex "
                    f"dictionaries have none (use the fused kernel)")
            kern = cls.from_compiled(self.compiled)
            self._kernels[name] = kern
        return kern

    def batch_kernel_name(self) -> str:
        """The kernel the multi-stream batch path runs on: the hot/cold
        union scan when the dictionary supports it and the planner's
        footprint rule favours it (partitioned dictionary, or plain
        fused table over the cache budget) — at pair stride when the
        full-coverage pair table fits — else the stacked fused grid."""
        from .planner import CACHE_BUDGET_BYTES

        c = self.compiled
        if c.supports_hot_cold and (
                c.num_slices > 1
                or c.fused_table_bytes > CACHE_BUDGET_BYTES):
            return "hotcold2" if c.pair_table_fits() else "hotcold"
        return "fused"

    def batch_totals(self, payloads,
                     prefilter: Optional[bool] = None) -> np.ndarray:
        """Whole-dictionary totals for a batch of independent payloads
        in one multi-stream pass — the service batcher's engine, on
        :meth:`batch_kernel_name`'s kernel.  Bit-identical across
        kernels.

        Screening rides along: unless ``prefilter=False`` (or the
        dictionary is not screenable), every payload is screened first
        and only its candidate windows enter the stream pass — a clean
        payload costs three vector ops, a match-dense one falls through
        and is scanned whole.  Totals are identical either way.
        """
        name = self.batch_kernel_name()
        kern = self.kernel(name)
        kern.reset_stats()
        pf = self.compiled.prefilter() if prefilter is not False else None
        totals = self._batch_counts(kern, payloads, pf)
        stats = kern.stats()
        self.last_batch_scan_stats = \
            dict(stats, scanner=name) if stats else None
        return totals

    def _batch_counts(self, kern, payloads, pf) -> np.ndarray:
        if pf is None:
            counts, _ = kern.run_streams(payloads)
            return counts
        streams: List[bytes] = []
        owner: List[int] = []
        for i, payload in enumerate(payloads):
            arr = np.frombuffer(payload, dtype=np.uint8)
            res = pf.screen(arr)
            if res.fall_through:
                streams.append(payload)
                owner.append(i)
                continue
            for lo, hi in res.segments.tolist():
                streams.append(arr[lo:hi].tobytes())
                owner.append(i)
        totals = np.zeros(len(payloads), dtype=np.int64)
        if streams:
            counts, _ = kern.run_streams(streams)
            np.add.at(totals, owner, counts)
        return totals

    def sharded(self, workers: int):
        """Cached :class:`~repro.parallel.ShardedScanner` for a worker
        count (the pool and shared segments persist across scans)."""
        from ..parallel import ShardedScanner

        scanner = self._sharded.get(workers)
        if scanner is None:
            scanner = ShardedScanner.from_compiled(self.compiled,
                                                   workers=workers)
            self._sharded[workers] = scanner
        return scanner

    def close(self) -> None:
        """Release pools and shared segments (idempotent)."""
        scanners, self._sharded = self._sharded, {}
        for scanner in scanners.values():
            scanner.close()

    def __enter__(self) -> "ScanContext":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- the registry ------------------------------------------------------------------


class ScanBackend:
    """One execution strategy over a compiled dictionary."""

    #: Registry key and ``--backend`` value.
    name: str = ""
    #: Which request kinds this backend accepts.
    kinds: Tuple[str, ...] = ("block",)
    #: Whether it can return match events / per-pattern counts.
    supports_events: bool = False
    #: Paper section / figure this strategy reproduces.
    paper_section: str = ""
    description: str = ""

    def scan(self, ctx: ScanContext,
             request: ScanRequest) -> ScanOutcome:  # pragma: no cover
        raise NotImplementedError

    def _require_kind(self, request: ScanRequest) -> None:
        if request.kind not in self.kinds:
            raise BackendError(
                f"backend {self.name!r} accepts {self.kinds}, got a "
                f"{request.kind!r} request (route streams through the "
                f"'streaming' backend)")


_REGISTRY: Dict[str, ScanBackend] = {}


def register_backend(cls: Type[ScanBackend]) -> Type[ScanBackend]:
    """Class decorator: instantiate and register one backend."""
    if not cls.name:
        raise BackendError("backend must declare a name")
    if cls.name in _REGISTRY:
        raise BackendError(f"backend {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls()
    return cls


def get_backend(name: str) -> ScanBackend:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise BackendError(
            f"unknown backend {name!r}; registered: "
            f"{', '.join(backend_names())}") from None


def backend_names() -> List[str]:
    return list(_REGISTRY)


def backend_specs() -> List[Tuple[str, str, str]]:
    """``(name, paper_section, description)`` rows for ``repro info``."""
    return [(b.name, b.paper_section, b.description)
            for b in _REGISTRY.values()]


# -- backends ----------------------------------------------------------------------


@register_backend
class SerialBackend(ScanBackend):
    """Reference event walk: every slice DFA interprets the folded
    input with per-state outputs — full reporting, ground-truth
    semantics, pure-Python speed."""

    name = "serial"
    kinds = ("block",)
    supports_events = True
    paper_section = "§3 (reference DFA semantics)"
    description = "event-reporting reference walk over every slice"

    def scan(self, ctx: ScanContext, request: ScanRequest) -> ScanOutcome:
        self._require_kind(request)
        data = request.data
        events = ctx.compiled.match_events(data)
        counts = dict(Counter(e.pattern for e in events))
        return ScanOutcome(
            total_matches=len(events),
            bytes_scanned=len(data),
            backend=self.name,
            events=events if request.with_events else None,
            pattern_counts=counts,
            stats={"slices": ctx.compiled.num_slices})


@register_backend
class ChunkedBackend(ScanBackend):
    """In-process speculative fixpoint: the input is cut into lockstep
    pieces scanned from guessed entry states over the fold-composed
    flat table, wrong guesses repaired to convergence — the paper's §4
    inner loop at host speed, single process."""

    name = "chunked"
    kinds = ("block",)
    paper_section = "§4 (flag-encoded STT inner loop)"
    description = "single-process speculative fixpoint, counts only"

    #: Speculation granularity floor (widened to engine.LANES_TARGET on
    #: large inputs).
    chunks = 256

    def scan(self, ctx: ScanContext, request: ScanRequest) -> ScanOutcome:
        self._require_kind(request)
        arr = np.frombuffer(request.data, dtype=np.uint8)
        total = ctx.kernel("flat").count_total(arr, self.chunks)
        return ScanOutcome(
            total_matches=total,
            bytes_scanned=arr.size,
            backend=self.name,
            stats={"slices": ctx.compiled.num_slices,
                   "chunks": self.chunks})


@register_backend
class FusedBackend(ScanBackend):
    """Fused multi-slice fixpoint: every slice's flat table stacked into
    one contiguous array with per-DFA cell bases, lanes = slices ×
    chunks, one strip-mined gather per input position advancing all of
    them — O(n) input traffic however many DFAs the dictionary was
    partitioned into, where the chunked path pays O(D·n)."""

    name = "fused"
    kinds = ("block",)
    paper_section = "§6 (series tiles, fused onto host lanes)"
    description = "one pass over the input for every slice (stacked STT)"

    #: Per-DFA speculation granularity, same meaning as the chunked
    #: backend's (widened to engine.LANES_TARGET on large inputs).
    chunks = 256

    def scan(self, ctx: ScanContext, request: ScanRequest) -> ScanOutcome:
        self._require_kind(request)
        arr = np.frombuffer(request.data, dtype=np.uint8)
        kern = ctx.kernel("fused")
        total = kern.count_total(arr, self.chunks) if arr.size else 0
        return ScanOutcome(
            total_matches=total,
            bytes_scanned=arr.size,
            backend=self.name,
            stats={"slices": ctx.compiled.num_slices,
                   "chunks": self.chunks,
                   "fused_cells": int(kern.table.flat.size)})


@register_backend
class HotColdBackend(ScanBackend):
    """Cache-resident hot/cold union scan: one union automaton covers
    every slice, its hottest states packed into one compact table sized
    to stay cache-resident (the paper's §4 local-store residency on the
    host), cold rows compressed behind an explicit slow-path escape —
    one gather per input byte however the dictionary was partitioned,
    with a footprint that no longer grows with the partition count."""

    name = "hotcold"
    kinds = ("block",)
    paper_section = "§4 (local-store residency via hot/cold split)"
    description = "cache-resident union table with hot/cold state split"

    #: Speculation granularity floor, widened to
    #: engine.HOTCOLD_LANES_TARGET on large inputs.
    chunks = 256

    def scan(self, ctx: ScanContext, request: ScanRequest) -> ScanOutcome:
        self._require_kind(request)
        arr = np.frombuffer(request.data, dtype=np.uint8)
        kern = ctx.kernel("hotcold")
        kern.reset_stats()
        total = kern.count_total(arr, self.chunks)
        t = kern.table
        kstats = kern.stats()
        return ScanOutcome(
            total_matches=total,
            bytes_scanned=arr.size,
            backend=self.name,
            stats={"slices": ctx.compiled.num_slices,
                   "chunks": self.chunks,
                   "union_states": t.num_states,
                   "hot_states": t.num_hot,
                   "table_bytes": t.table_bytes,
                   "hot_hit_rate": kstats["hot_hit_rate"],
                   "escapes": kstats["escapes"]})


@register_backend
class HotCold2Backend(ScanBackend):
    """Two-byte-stride union scan: the hot/cold union automaton's
    hottest states squared into a pair-symbol table (one gather
    advances two input bytes — the paper's §4 loop unrolling pushed
    into the table itself), escapes replayed one byte at a time, and
    per-slice counts recovered D-invariantly from union-state
    accounting."""

    name = "hotcold2"
    kinds = ("block",)
    paper_section = "§4 (unrolled inner loop as a pair-symbol table)"
    description = "pair-symbol hot table, two input bytes per gather"

    #: Speculation granularity floor, widened to
    #: engine.HOTCOLD_LANES_TARGET on large inputs.
    chunks = 256

    def scan(self, ctx: ScanContext, request: ScanRequest) -> ScanOutcome:
        self._require_kind(request)
        arr = np.frombuffer(request.data, dtype=np.uint8)
        kern = ctx.kernel("hotcold2")
        kern.reset_stats()
        total = kern.count_total(arr, self.chunks)
        t = kern.table
        kstats = kern.stats()
        return ScanOutcome(
            total_matches=total,
            bytes_scanned=arr.size,
            backend=self.name,
            stats={"slices": ctx.compiled.num_slices,
                   "chunks": self.chunks,
                   "union_states": t.num_states,
                   "hot2_states": t.num_hot2,
                   "hot2_bytes": t.hot2_bytes,
                   "table_bytes": t.table_bytes,
                   "hot_hit_rate": kstats["hot_hit_rate"],
                   "cold_steps": kstats["cold_steps"],
                   "escapes": kstats["escapes"]})


@register_backend
class PooledBackend(ScanBackend):
    """Sharded process pool: shared-memory STT, speculative shard scans,
    incremental cross-shard repair — exact counts at multicore speed."""

    name = "pooled"
    kinds = ("block",)
    paper_section = "Figure 6a (parallel tiles) on host cores"
    description = "process-pool sharded scan over the shared STT"

    def scan(self, ctx: ScanContext, request: ScanRequest) -> ScanOutcome:
        self._require_kind(request)
        scanner = ctx.sharded(request.workers)
        total = scanner.count_block(request.data)
        return ScanOutcome(
            total_matches=total,
            bytes_scanned=len(request.data),
            backend=self.name,
            workers=request.workers,
            stats=dict(scanner.last_scan_stats))


@register_backend
class StreamingBackend(ScanBackend):
    """Double-buffered staging ring: blocks, chunk iterators and files
    of any size flow through a fixed shared-memory footprint while the
    pool scans the resident buffer (the paper's Figure 5 overlap)."""

    name = "streaming"
    kinds = ("block", "stream", "file")
    paper_section = "Figure 5 (double-buffered streaming)"
    description = "staging-ring pipeline for streams and files"

    def scan(self, ctx: ScanContext, request: ScanRequest) -> ScanOutcome:
        scanner = ctx.sharded(request.workers)
        if request.kind == "file":
            total = scanner.scan_file(request.file)
        elif request.kind == "stream":
            total = scanner.count_stream(request.chunks)
        else:
            total = scanner.count_stream([request.data])
        stats = dict(scanner.last_scan_stats)
        return ScanOutcome(
            total_matches=total,
            bytes_scanned=int(stats.get("bytes", 0)),
            backend=self.name,
            workers=request.workers,
            stats=stats)


@register_backend
class CellSimBackend(ScanBackend):
    """Cycle-accounted reference: exact counts via the in-process
    engine, plus the modelled cost of running the same scan on the
    paper's machine — Table-1 v4 cycles per transition, one SPE tile
    per dictionary slice — attached as metadata."""

    name = "cellsim"
    kinds = ("block",)
    paper_section = "§4 / Table 1 (modelled Cell execution)"
    description = "exact counts + modelled Cell cycle accounting"

    version = 4

    def scan(self, ctx: ScanContext, request: ScanRequest) -> ScanOutcome:
        from ..analysis.models import (PAPER_TABLE1,
                                       gbps_from_cycles_per_transition)
        from ..cell.spu import CLOCK_HZ

        self._require_kind(request)
        outcome = get_backend("chunked").scan(ctx, request)
        cpt = PAPER_TABLE1[self.version].cycles_per_transition
        # Series slices occupy separate SPEs and scan concurrently, so
        # the modelled makespan is one tile's pass over the input.
        per_tile_transitions = outcome.bytes_scanned
        transitions = per_tile_transitions * ctx.compiled.num_slices
        modelled_seconds = per_tile_transitions * cpt / CLOCK_HZ
        outcome.backend = self.name
        outcome.stats.update({
            "kernel_version": self.version,
            "cycles_per_transition": cpt,
            "transitions": transitions,
            "modelled_seconds": modelled_seconds,
            "modelled_gbps": gbps_from_cycles_per_transition(cpt),
            "spes_used": ctx.compiled.num_slices,
        })
        return outcome


# -- driver ------------------------------------------------------------------------

#: Exact-verification kernel behind each block backend — what the
#: prefilter stage counts candidate windows with, so the screened path
#: runs the same inner loop the bare backend would.
_VERIFY_KERNELS = {
    "chunked": "flat",
    "cellsim": "flat",
    "fused": "fused",
    "hotcold": "hotcold",
    "hotcold2": "hotcold2",
}


def _validate_request(ctx: ScanContext, request: ScanRequest) -> None:
    """Reject contradictory flag combinations with one error naming the
    conflict, before any planning or table building happens."""
    union = request.hot_cold is True or request.two_byte is True
    if request.two_byte is True and request.hot_cold is False:
        raise BackendError(
            "conflicting flags: two_byte=True demands the union scan "
            "but hot_cold=False pins the stacked path; drop one of "
            "them")
    if union and request.with_events:
        raise BackendError(
            "conflicting flags: hot_cold/two_byte select counts-only "
            "union kernels, but with_events=True needs the serial "
            "reference walk; drop the union flags to get events")
    if union and not request.fuse:
        raise BackendError(
            "conflicting flags: hot_cold/two_byte build on the fused "
            "union automaton, but fuse=False disables fusion; drop one "
            "of them")
    if union and not ctx.compiled.supports_hot_cold:
        raise BackendError(
            "conflicting flags: hot_cold/two_byte need the union "
            "automaton, and regex dictionaries have none; drop the "
            "flags or use the fused backend")
    if request.prefilter is True:
        if request.kind != "block":
            raise BackendError(
                f"conflicting flags: prefilter=True screens one "
                f"in-memory block, but this is a {request.kind!r} "
                f"request; candidate windows cannot be carried across "
                f"staging-ring refills")
        if ctx.compiled.prefilter() is None:
            raise BackendError(
                "conflicting flags: prefilter=True, but this "
                "dictionary is not screenable (regex entries, a "
                "pattern shorter than 3 bytes, or a trigram mask over "
                "the cache ceiling)")


def _plan(ctx: ScanContext, request: ScanRequest,
          backend: Optional[str]):
    """Resolve one request to an :class:`ExecutionPlan`.  An explicit
    backend name wins outright; only the ``prefilter`` hatch is still
    honoured for it, because the screening stage sits *in front of*
    whichever kernel runs rather than replacing it."""
    name = backend or "auto"
    if name != "auto":
        from .planner import ExecutionPlan

        return ExecutionPlan(name, "explicitly requested",
                             prefilter=request.prefilter is True)
    nbytes = len(request.data) if request.data is not None else None
    screenable = (request.kind == "block"
                  and ctx.compiled.prefilter() is not None)
    return plan_backend(nbytes=nbytes,
                        streaming=request.kind != "block",
                        workers=request.workers,
                        with_events=request.with_events,
                        num_slices=ctx.compiled.num_slices,
                        fuse=request.fuse,
                        exact=ctx.compiled.supports_hot_cold,
                        fused_bytes=ctx.compiled.fused_table_bytes,
                        hot_cold=request.hot_cold,
                        two_byte=request.two_byte,
                        pair_fit=ctx.compiled.pair_table_fits(),
                        prefilter=request.prefilter,
                        screenable=screenable)


def _segment_runner(ctx: ScanContext, request: ScanRequest, plan):
    """The prefilter stage's verifier: run the disjoint candidate
    windows through the same kernel family the bare backend would use
    (or replay the reference event walk per window for the serial
    backend, shifting event offsets back into block coordinates)."""
    from .scan.prefilter import count_segments

    def run_segments(arr: np.ndarray, segments: np.ndarray,
                     pstats: Dict) -> ScanOutcome:
        stats: Dict[str, object] = {"slices": ctx.compiled.num_slices,
                                    "prefilter": pstats}
        if plan.backend == "serial":
            events: List[MatchEvent] = []
            for lo, hi in segments.tolist():
                events.extend(
                    MatchEvent(ev.end + lo, ev.pattern)
                    for ev in ctx.compiled.match_events(
                        arr[lo:hi].tobytes()))
            events.sort(key=lambda e: (e.end, e.pattern))
            return ScanOutcome(
                total_matches=len(events),
                bytes_scanned=arr.size,
                backend=plan.backend,
                events=events if request.with_events else None,
                pattern_counts=dict(
                    Counter(e.pattern for e in events)),
                stats=stats)
        kname = _VERIFY_KERNELS.get(plan.backend,
                                    ctx.batch_kernel_name())
        kern = ctx.kernel(kname)
        kern.reset_stats()
        total = count_segments(kern, arr, segments)
        stats["kernel"] = kname
        return ScanOutcome(
            total_matches=total,
            bytes_scanned=arr.size,
            backend=plan.backend,
            workers=request.workers,
            stats=stats)

    return run_segments


def build_pipeline(ctx: ScanContext, request: ScanRequest, plan,
                   chosen: ScanBackend):
    """Assemble one request's explicit stage pipeline: the packed
    prefilter stage when the plan mounts it, then the terminal backend
    stage.  The returned pipeline is inspectable (``describe()``) — it
    *is* the execution strategy, not a trace of one."""
    from .scan.pipeline import (BackendStage, PrefilterStage,
                                ScanPipeline)

    stages: List = []
    if plan.prefilter and request.kind == "block":
        pf = ctx.compiled.prefilter()
        if pf is not None:
            arr = np.frombuffer(request.data, dtype=np.uint8)
            stages.append(PrefilterStage(
                pf, arr, _segment_runner(ctx, request, plan)))
    stages.append(BackendStage(plan.backend,
                               lambda: chosen.scan(ctx, request)))
    return ScanPipeline(stages)


def execute(ctx: ScanContext, request: ScanRequest,
            backend: Optional[str] = None) -> ScanOutcome:
    """Run one request: validate its flags, resolve a plan
    (``None``/``"auto"`` asks the execution planner), assemble the
    stage pipeline, run it, and stamp the measured wall-clock onto the
    outcome.  Notes left by declining stages (a fallen-through
    prefilter's screening stats) are merged into the outcome's stats."""
    _validate_request(ctx, request)
    plan = _plan(ctx, request, backend)
    chosen = get_backend(plan.backend)
    if request.with_events and not chosen.supports_events:
        raise BackendError(
            f"backend {chosen.name!r} cannot report match events; use "
            f"the serial backend (workers=1)")
    pipeline = build_pipeline(ctx, request, plan, chosen)
    t0 = time.perf_counter()
    outcome = pipeline.run()
    outcome.seconds = time.perf_counter() - t0
    for key, val in pipeline.notes.items():
        outcome.stats.setdefault(key, val)
    return outcome
