"""Flow-aware scanning: per-connection DFA state across packets.

The paper's 16 SIMD lanes are "16 distinct input streams" — in a NIDS
those are TCP flows, and a signature split across two packets of the same
flow must still match.  That works only if each flow's DFA state survives
between packets; the tile already persists lane states in its state-save
area, and this module provides the host-side counterpart: a flow table
mapping connection ids to DFA states, batch scanning through the
vectorized engine, and eviction for terminated flows.

This closes the loop on the paper's deployment story: packets arrive
interleaved across connections, get routed to their flow's lane, and the
dictionary matches exactly as if each flow were one contiguous stream
(property-tested against whole-stream scans).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..dfa.automaton import DFA, DFAError
from .engine import VectorDFAEngine, build_weight_table

__all__ = ["FlowMatcher", "FlowError"]


class FlowError(Exception):
    """Raised for unknown flows or malformed packets."""


@dataclass
class _FlowRecord:
    state: int
    bytes_seen: int = 0
    matches: int = 0


class FlowMatcher:
    """Stateful multi-flow scanner over a dictionary DFA.

    Packets are fed per flow (any hashable id); matches spanning packet
    boundaries within a flow are found because each flow resumes from its
    saved DFA state.  ``scan_batch`` processes many flows' packets in one
    vectorized lockstep pass.

    Counts are per dictionary entry (a state recognizing k suffix-
    overlapping entries counts k), the same semantics as the block scan
    backends — so a flow's lifetime total equals a one-shot scan of its
    reassembled stream regardless of which path served it.
    """

    def __init__(self, dfa: DFA, max_flows: int = 65536,
                 on_full: str = "reject") -> None:
        if max_flows < 1:
            raise FlowError("max_flows must be positive")
        if on_full not in ("reject", "lru"):
            raise FlowError(
                f"on_full must be 'reject' or 'lru', got {on_full!r}")
        self.dfa = dfa
        self.engine = VectorDFAEngine(dfa)
        self._weights = build_weight_table(dfa)
        self.max_flows = max_flows
        self.on_full = on_full
        #: Flows dropped by the LRU policy since construction.
        self.evictions = 0
        # Insertion-ordered; every access moves the flow to the back, so
        # the front is always the least-recently-scanned flow.
        self._flows: Dict[Hashable, _FlowRecord] = {}

    # -- flow table ---------------------------------------------------------------

    @property
    def num_flows(self) -> int:
        return len(self._flows)

    def flow_ids(self) -> List[Hashable]:
        """Live flow ids, least-recently-scanned first."""
        return list(self._flows)

    def __contains__(self, flow_id: Hashable) -> bool:
        return flow_id in self._flows

    def _record(self, flow_id: Hashable) -> _FlowRecord:
        record = self._flows.get(flow_id)
        if record is not None:
            # Touch: move to the recently-used end of the table.
            self._flows[flow_id] = self._flows.pop(flow_id)
            return record
        if len(self._flows) >= self.max_flows:
            if self.on_full == "reject":
                raise FlowError(
                    f"flow table full ({self.max_flows}); close flows "
                    f"first")
            # LRU: drop the least-recently-scanned flow to bound memory.
            self._flows.pop(next(iter(self._flows)))
            self.evictions += 1
        record = _FlowRecord(state=self.dfa.start)
        self._flows[flow_id] = record
        return record

    def touch(self, flow_id: Hashable) -> None:
        """Register a flow (at the DFA start state) or refresh its
        recency without scanning any bytes — subject to the same
        ``on_full`` policy as a scan."""
        self._record(flow_id)

    def peek_state(self, flow_id: Hashable) -> int:
        """The DFA state the flow's next packet will resume from,
        without touching recency or registering the flow (an unknown
        flow starts at the DFA start state)."""
        record = self._flows.get(flow_id)
        return record.state if record is not None else self.dfa.start

    def close_flow(self, flow_id: Hashable) -> Tuple[int, int]:
        """Evict a flow; returns its lifetime (bytes, matches)."""
        record = self._flows.pop(flow_id, None)
        if record is None:
            raise FlowError(f"unknown flow {flow_id!r}")
        return record.bytes_seen, record.matches

    def flow_matches(self, flow_id: Hashable) -> int:
        record = self._flows.get(flow_id)
        if record is None:
            raise FlowError(f"unknown flow {flow_id!r}")
        return record.matches

    # -- scanning ------------------------------------------------------------------

    def scan_packet(self, flow_id: Hashable, payload: bytes) -> int:
        """Scan one packet in its flow's context; returns new matches."""
        record = self._record(flow_id)
        if not payload:
            return 0
        res = self.engine.run_streams(
            [payload], start_states=np.array([record.state]),
            weights=self._weights)
        record.state = int(res.final_states[0])
        record.bytes_seen += len(payload)
        new = int(res.counts[0])
        record.matches += new
        return new

    def scan_batch(self, packets: Sequence[Tuple[Hashable, bytes]]
                   ) -> List[int]:
        """Scan many packets in one vectorized pass.

        Packets of the *same* flow in one batch are processed in order
        (they must chain states, so they serialize); distinct flows run
        in lockstep.  Returns per-packet match counts, in input order.
        """
        results = [0] * len(packets)
        remaining = list(enumerate(packets))
        while remaining:
            # One round: the first pending packet of each flow.
            seen_flows = set()
            this_round: List[Tuple[int, Hashable, bytes]] = []
            deferred = []
            for idx, (fid, payload) in remaining:
                if fid in seen_flows:
                    deferred.append((idx, (fid, payload)))
                else:
                    seen_flows.add(fid)
                    this_round.append((idx, fid, payload))
            remaining = deferred
            # Group by payload length for lockstep scanning.
            by_len: Dict[int, List[Tuple[int, Hashable, bytes]]] = {}
            for item in this_round:
                by_len.setdefault(len(item[2]), []).append(item)
            for length, group in by_len.items():
                if length == 0:
                    for idx, fid, _ in group:
                        self._record(fid)
                    continue
                states = np.array([self._record(fid).state
                                   for _, fid, _ in group])
                res = self.engine.run_streams(
                    [payload for _, _, payload in group],
                    start_states=states, weights=self._weights)
                for j, (idx, fid, payload) in enumerate(group):
                    record = self._flows[fid]
                    record.state = int(res.final_states[j])
                    record.bytes_seen += length
                    new = int(res.counts[j])
                    record.matches += new
                    results[idx] = new
        return results

    def total_matches(self) -> int:
        return sum(r.matches for r in self._flows.values())
