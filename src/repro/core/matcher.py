"""High-level public API: build a dictionary, plan a Cell configuration,
scan traffic.

:class:`CellStringMatcher` is what a downstream user touches first.  It
is a thin shell over the compile/execute split: the dictionary compiles
once into a :class:`~repro.core.compiled.CompiledDictionary` (optionally
via the on-disk artifact cache, so repeated service starts skip
Aho–Corasick/determinize entirely), deployment is sized against the tile
budget exactly as before, and every scan — block, stream or file — is a
:class:`~repro.core.backends.ScanRequest` executed by a registered
:class:`~repro.core.backends.ScanBackend`.  The deployment shapes follow
the paper:

* fits one tile → parallel tiles for throughput (Figure 6a);
* needs several tiles → series / mixed composition (Figures 6b, 7);
* exceeds eight tiles → dynamic STT replacement (§6).

Scanning is exact (counts and match events agree with a monolithic
reference scan); the report also carries the *modelled* Cell throughput of
the chosen configuration, so experiments can ask "what would this
dictionary cost on the machine the paper used?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Dict, Iterable, List, Optional, Sequence, Tuple,
                    Union)

from ..cell.processor import NUM_SPES
from ..dfa.alphabet import FoldMap, case_fold_32
from ..dfa.automaton import MatchEvent
from .backends import ScanContext, ScanOutcome, ScanRequest, execute
from .compiled import ArtifactCache, CompileError, compile_dictionary
from .composition import TileComposition
from .planner import TilePlan, plan_tile
from .replacement import HALF_TILE_STATES, ReplacementMatcher, effective_gbps

__all__ = ["CellStringMatcher", "ScanReport", "MatcherError",
           "PAPER_TILE_GBPS"]

#: The paper's peak single-tile throughput (Table 1, version 4).
PAPER_TILE_GBPS = 5.11

Pattern = Union[str, bytes]


class MatcherError(Exception):
    """Raised for unusable dictionaries or configurations."""


@dataclass
class ScanReport:
    """Outcome of one scan, wrapping the executing backend's
    :class:`~repro.core.backends.ScanOutcome` with the matcher's
    modelled-Cell deployment numbers."""

    total_matches: int
    events: Optional[List[MatchEvent]]     # end positions + pattern ids
    bytes_scanned: int
    configuration: str
    spes_used: int
    modelled_gbps: float
    #: Occurrences per (global) pattern id; patterns with zero hits are
    #: omitted.  Only the event-reporting (serial) backend fills this.
    pattern_counts: Optional[Dict[int, int]] = None
    #: Measured wall-clock of this scan on the host, and how many worker
    #: processes ran it — the *real* numbers reported next to the
    #: modelled-Cell ones.
    host_seconds: float = 0.0
    workers: int = 1
    #: Registry name of the backend that executed the scan.
    backend: str = ""

    def modelled_seconds(self) -> float:
        """Time the modelled Cell configuration would need for this scan."""
        if self.modelled_gbps <= 0:
            return float("inf")
        return self.bytes_scanned * 8 / (self.modelled_gbps * 1e9)

    @property
    def host_gbps(self) -> float:
        """Measured host bitrate of this scan."""
        if self.host_seconds <= 0:
            return 0.0
        return self.bytes_scanned * 8 / self.host_seconds / 1e9

    def summary(self) -> str:
        """Modelled-Cell and measured-host numbers, side by side."""
        backend = f" [{self.backend}]" if self.backend else ""
        return (f"{self.total_matches} matches in {self.bytes_scanned} B | "
                f"modelled Cell: {self.modelled_gbps:.2f} Gbps on "
                f"{self.spes_used} SPE(s) ({self.configuration}) | "
                f"host: {self.host_gbps:.4f} Gbps on {self.workers} "
                f"worker(s){backend}")


class CellStringMatcher:
    """Multi-pattern scanner with automatic Cell-BE deployment planning.

    ``cache`` (an :class:`~repro.core.compiled.ArtifactCache`, a cache
    directory path, or ``True`` for the default location) loads/stores
    the compiled dictionary on disk, keyed by content fingerprint.
    """

    def __init__(self, patterns: Sequence[Pattern],
                 fold: Optional[FoldMap] = None,
                 regex: bool = False,
                 target_gbps: float = PAPER_TILE_GBPS,
                 per_tile_gbps: float = PAPER_TILE_GBPS,
                 max_spes: int = NUM_SPES,
                 plan: Optional[TilePlan] = None,
                 cache: Union[ArtifactCache, str, bool, None] = None) -> None:
        if not patterns:
            raise MatcherError("dictionary must contain at least one "
                               "pattern")
        self.fold = fold if fold is not None else case_fold_32()
        self.regex = regex
        self.per_tile_gbps = per_tile_gbps
        self.max_spes = max_spes
        self.plan = plan if plan is not None \
            else plan_tile(alphabet_size=self.fold.width)
        if self.plan.alphabet_size != self.fold.width:
            raise MatcherError(
                f"tile plan alphabet {self.plan.alphabet_size} != fold "
                f"width {self.fold.width}")

        self._raw_patterns = [p.encode() if isinstance(p, str) else bytes(p)
                              for p in patterns]
        self._cache = ArtifactCache() if cache is True else cache
        self.compiled = self._compile(self.plan.max_states)
        self._ctx = ScanContext(self.compiled)

        if regex:
            self._plan_regex()
        else:
            self._plan_exact(target_gbps)

    # -- construction ------------------------------------------------------------

    def _compile(self, max_states: int):
        try:
            return compile_dictionary(self._raw_patterns, fold=self.fold,
                                      regex=self.regex,
                                      max_states=max_states,
                                      cache=self._cache)
        except CompileError as exc:
            raise MatcherError(str(exc)) from exc

    def _plan_exact(self, target_gbps: float) -> None:
        slices = self.compiled.num_slices
        if slices <= self.max_spes:
            import math
            ways_needed = max(1, math.ceil(target_gbps
                                           / self.per_tile_gbps))
            ways = max(1, min(self.max_spes // slices, ways_needed))
            self.composition: Optional[TileComposition] = \
                TileComposition.from_compiled(self.compiled, ways=ways,
                                              max_spes=self.max_spes)
            self.replacement: Optional[ReplacementMatcher] = None
            kind = "parallel" if slices == 1 and ways > 1 else \
                ("series" if ways == 1 and slices > 1 else
                 ("mixed" if slices > 1 else "single tile"))
            self.configuration = (
                f"{kind}: {ways} way(s) × {slices} slice(s) "
                f"({self.composition.spes_used} SPEs)")
            self.spes_used = self.composition.spes_used
            self.modelled_gbps = self.composition.throughput_gbps(
                self.per_tile_gbps)
        else:
            # Too many slices for resident tiles: dynamic STT replacement
            # with half-size slots.  Recompile against the half budget
            # (its own fingerprint, so both artifacts cache cleanly).
            half_budget = min(HALF_TILE_STATES, self.plan.max_states)
            self.compiled = self._compile(half_budget)
            self._ctx = ScanContext(self.compiled)
            self.composition = None
            self.replacement = ReplacementMatcher(self.compiled.partition)
            self.spes_used = self.max_spes
            self.modelled_gbps = effective_gbps(
                self.compiled.num_slices, self.per_tile_gbps, self.max_spes)
            self.configuration = (
                f"dynamic STT replacement: {self.compiled.num_slices} "
                f"slices cycling on {self.max_spes} SPE(s)")

    def _plan_regex(self) -> None:
        """Deploy the bin-packed regex slices: series tiles while they
        fit the SPE budget, dynamic STT replacement beyond that."""
        self.replacement = None
        num_slices = self.compiled.num_slices
        if num_slices <= self.max_spes:
            self.composition = TileComposition.from_compiled(
                self.compiled, ways=1, overlap=0, max_spes=self.max_spes)
            self.spes_used = num_slices
            self.modelled_gbps = self.per_tile_gbps
            kind = "single regex tile" if num_slices == 1 \
                else f"{num_slices} series regex tiles"
            self.configuration = \
                f"{kind} ({self.compiled.total_states} states)"
        else:
            self.composition = None
            self.spes_used = self.max_spes
            self.modelled_gbps = effective_gbps(
                num_slices, self.per_tile_gbps, self.max_spes)
            self.configuration = (
                f"dynamic STT replacement: {num_slices} regex slices "
                f"cycling on {self.max_spes} SPE(s)")

    # -- scanning -----------------------------------------------------------------

    def _execute(self, request: ScanRequest,
                 backend: Optional[str]) -> ScanOutcome:
        from .backends import BackendError

        try:
            return execute(self._ctx, request, backend=backend)
        except BackendError as exc:
            raise MatcherError(str(exc)) from exc

    def scan(self, data: Union[str, bytes],
             with_events: bool = False, workers: int = 1,
             backend: Optional[str] = None,
             fuse: bool = True,
             hot_cold: Optional[bool] = None,
             two_byte: Optional[bool] = None,
             prefilter: Optional[bool] = None) -> ScanReport:
        """Scan one contiguous buffer; returns counts (and, optionally,
        the full list of match events with end positions).

        ``backend`` names a registry entry (``serial``, ``chunked``,
        ``fused``, ``hotcold``, ``pooled``, ``streaming``, ``cellsim``);
        ``None``/``"auto"`` lets the execution planner choose from the
        input size, ``workers`` and ``with_events`` — preferring one
        shared pass whenever the dictionary was partitioned into
        several slices (``fuse=False`` is the escape hatch back to one
        pass per slice, ``hot_cold`` overrides the planner's choice
        between the cache-resident union scan and the stacked fused
        grid, and ``two_byte`` overrides its choice between the
        one-byte union scan and the pair-symbol two-byte-stride
        variant; ``prefilter`` overrides the packed screening stage —
        ``False`` disables it, ``True`` demands it, honoured even for
        an explicitly named backend).  ``workers > 1`` routes through
        the host-parallel layer
        (shared-memory STTs, a persistent process pool, cross-shard
        fixpoint repair).  Only the serial reporting backend produces
        events and per-pattern attribution.
        """
        raw = data.encode() if isinstance(data, str) else bytes(data)
        if with_events and workers > 1:
            raise MatcherError(
                "match events need the serial path; use workers=1 "
                "with with_events=True")
        outcome = self._execute(
            ScanRequest(data=raw, workers=workers,
                        with_events=with_events, fuse=fuse,
                        hot_cold=hot_cold, two_byte=two_byte,
                        prefilter=prefilter), backend)
        return self._report(outcome)

    def scan_iter(self, chunks: Iterable[Union[str, bytes]],
                  workers: int = 1) -> ScanReport:
        """Scan a stream of chunks as one contiguous input, without ever
        materializing it.

        The concatenation of ``chunks`` is scanned exactly as
        :meth:`scan` would scan it in one piece — chunk boundaries are
        invisible, matches straddling them are counted — but memory use
        is bounded by the staging ring, so multi-GB streams flow
        through.  Counts only (events need the serial block path).
        """
        outcome = self._execute(
            ScanRequest(chunks=(c.encode() if isinstance(c, str) else c
                                for c in chunks),
                        workers=workers), "streaming")
        return self._report(outcome)

    def scan_file(self, file, workers: int = 1) -> ScanReport:
        """Scan a binary file's bytes, streamed straight into the
        staging ring (never materialized).  ``file`` is a path or a
        binary file object; counts only."""
        outcome = self._execute(
            ScanRequest(file=file, workers=workers), "streaming")
        return self._report(outcome)

    def scan_streams(self, streams: Sequence[bytes],
                     workers: int = 1) -> ScanReport:
        """Scan independent streams (counts only)."""
        total = 0
        bytes_scanned = 0
        seconds = 0.0
        backend = ""
        for s in streams:
            raw = s.encode() if isinstance(s, str) else bytes(s)
            outcome = self._execute(
                ScanRequest(data=raw, workers=workers), None)
            total += outcome.total_matches
            bytes_scanned += outcome.bytes_scanned
            seconds += outcome.seconds
            backend = outcome.backend
        return self._report(ScanOutcome(
            total_matches=total, bytes_scanned=bytes_scanned,
            backend=backend, workers=workers, seconds=seconds))

    def close(self) -> None:
        """Release host-parallel pools and shared artifacts, if any."""
        self._ctx.close()

    def __enter__(self) -> "CellStringMatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    def count(self, data: Union[str, bytes], workers: int = 1) -> int:
        """Shortcut: total dictionary occurrences in ``data``."""
        return self.scan(data, workers=workers).total_matches

    def _report(self, outcome: ScanOutcome) -> ScanReport:
        return ScanReport(
            total_matches=outcome.total_matches,
            events=outcome.events,
            bytes_scanned=outcome.bytes_scanned,
            configuration=self.configuration,
            spes_used=self.spes_used,
            modelled_gbps=self.modelled_gbps,
            pattern_counts=outcome.pattern_counts,
            host_seconds=outcome.seconds,
            workers=outcome.workers,
            backend=outcome.backend,
        )

    # -- introspection ---------------------------------------------------------------

    @property
    def partition(self):
        """The exact-dictionary partition (``None`` in regex mode)."""
        return self.compiled.partition

    @property
    def _regex_slices(self) -> List[Tuple[object, List[int]]]:
        return self.compiled.regex_slices

    @property
    def num_patterns(self) -> int:
        return len(self._raw_patterns)

    def __repr__(self) -> str:
        return (f"CellStringMatcher(patterns={self.num_patterns}, "
                f"config={self.configuration!r})")
