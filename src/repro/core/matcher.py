"""High-level public API: build a dictionary, plan a Cell configuration,
scan traffic.

:class:`CellStringMatcher` is what a downstream user touches first.  It
folds the dictionary and the input through the paper's 32-symbol reduction,
compiles the dictionary (exact strings via Aho–Corasick, or regexes via the
NFA pipeline), sizes it against the tile budget, and picks the paper's
deployment shape automatically:

* fits one tile → parallel tiles for throughput (Figure 6a);
* needs several tiles → series / mixed composition (Figures 6b, 7);
* exceeds eight tiles → dynamic STT replacement (§6).

Scanning is exact (counts and match events agree with a monolithic
reference scan); the report also carries the *modelled* Cell throughput of
the chosen configuration, so experiments can ask "what would this
dictionary cost on the machine the paper used?".
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..cell.processor import NUM_SPES
from ..dfa.aho_corasick import AhoCorasick
from ..dfa.alphabet import FoldMap, case_fold_32
from ..dfa.automaton import DFA, MatchEvent
from ..dfa.partition import partition_patterns
from ..dfa.regex import compile_patterns
from .composition import TileComposition
from .planner import TilePlan, plan_tile
from .replacement import HALF_TILE_STATES, ReplacementMatcher, effective_gbps

__all__ = ["CellStringMatcher", "ScanReport", "MatcherError",
           "PAPER_TILE_GBPS"]

#: The paper's peak single-tile throughput (Table 1, version 4).
PAPER_TILE_GBPS = 5.11

Pattern = Union[str, bytes]


class MatcherError(Exception):
    """Raised for unusable dictionaries or configurations."""


@dataclass
class ScanReport:
    """Outcome of one scan."""

    total_matches: int
    events: Optional[List[MatchEvent]]     # end positions + pattern ids
    bytes_scanned: int
    configuration: str
    spes_used: int
    modelled_gbps: float
    #: Occurrences per (global) pattern id; patterns with zero hits are
    #: omitted.
    pattern_counts: Optional[Dict[int, int]] = None
    #: Measured wall-clock of this scan on the host, and how many worker
    #: processes ran it — the *real* numbers reported next to the
    #: modelled-Cell ones.
    host_seconds: float = 0.0
    workers: int = 1

    def modelled_seconds(self) -> float:
        """Time the modelled Cell configuration would need for this scan."""
        if self.modelled_gbps <= 0:
            return float("inf")
        return self.bytes_scanned * 8 / (self.modelled_gbps * 1e9)

    @property
    def host_gbps(self) -> float:
        """Measured host bitrate of this scan."""
        if self.host_seconds <= 0:
            return 0.0
        return self.bytes_scanned * 8 / self.host_seconds / 1e9

    def summary(self) -> str:
        """Modelled-Cell and measured-host numbers, side by side."""
        return (f"{self.total_matches} matches in {self.bytes_scanned} B | "
                f"modelled Cell: {self.modelled_gbps:.2f} Gbps on "
                f"{self.spes_used} SPE(s) ({self.configuration}) | "
                f"host: {self.host_gbps:.4f} Gbps on {self.workers} "
                f"worker(s)")


class CellStringMatcher:
    """Multi-pattern scanner with automatic Cell-BE deployment planning."""

    def __init__(self, patterns: Sequence[Pattern],
                 fold: Optional[FoldMap] = None,
                 regex: bool = False,
                 target_gbps: float = PAPER_TILE_GBPS,
                 per_tile_gbps: float = PAPER_TILE_GBPS,
                 max_spes: int = NUM_SPES,
                 plan: Optional[TilePlan] = None) -> None:
        if not patterns:
            raise MatcherError("dictionary must contain at least one "
                               "pattern")
        self.fold = fold if fold is not None else case_fold_32()
        self.regex = regex
        self.per_tile_gbps = per_tile_gbps
        self.max_spes = max_spes
        self.plan = plan if plan is not None \
            else plan_tile(alphabet_size=self.fold.width)
        if self.plan.alphabet_size != self.fold.width:
            raise MatcherError(
                f"tile plan alphabet {self.plan.alphabet_size} != fold "
                f"width {self.fold.width}")

        self._raw_patterns = [p.encode() if isinstance(p, str) else bytes(p)
                              for p in patterns]
        #: Cached host-parallel scanners, keyed by worker count.
        self._sharded: Dict[int, object] = {}

        if regex:
            self._init_regex([p.decode("latin-1")
                              for p in self._raw_patterns])
        else:
            self._init_exact(target_gbps)

    # -- construction ------------------------------------------------------------

    def _init_exact(self, target_gbps: float) -> None:
        folded = [self.fold.fold_bytes(p) for p in self._raw_patterns]
        for i, p in enumerate(folded):
            if not p:
                raise MatcherError(f"pattern {i} is empty")
        tile_budget = self.plan.max_states
        partition = partition_patterns(folded, tile_budget, self.fold.width)
        self._acs = [AhoCorasick(partition.slice_patterns(i),
                                 self.fold.width)
                     for i in range(partition.num_slices)]
        self.partition = partition
        slices = partition.num_slices

        if slices <= self.max_spes:
            import math
            ways_needed = max(1, math.ceil(target_gbps
                                           / self.per_tile_gbps))
            ways = max(1, min(self.max_spes // slices, ways_needed))
            self.composition: Optional[TileComposition] = TileComposition(
                partition.dfas, ways=ways, max_spes=self.max_spes)
            self.replacement: Optional[ReplacementMatcher] = None
            kind = "parallel" if slices == 1 and ways > 1 else \
                ("series" if ways == 1 and slices > 1 else
                 ("mixed" if slices > 1 else "single tile"))
            self.configuration = (
                f"{kind}: {ways} way(s) × {slices} slice(s) "
                f"({self.composition.spes_used} SPEs)")
            self.spes_used = self.composition.spes_used
            self.modelled_gbps = self.composition.throughput_gbps(
                self.per_tile_gbps)
        else:
            # Too many slices for resident tiles: dynamic STT replacement
            # with half-size slots.
            half_budget = min(HALF_TILE_STATES, tile_budget)
            partition = partition_patterns(folded, half_budget,
                                           self.fold.width)
            self._acs = [AhoCorasick(partition.slice_patterns(i),
                                     self.fold.width)
                         for i in range(partition.num_slices)]
            self.partition = partition
            self.composition = None
            self.replacement = ReplacementMatcher(partition)
            self.spes_used = self.max_spes
            self.modelled_gbps = effective_gbps(
                partition.num_slices, self.per_tile_gbps, self.max_spes)
            self.configuration = (
                f"dynamic STT replacement: {partition.num_slices} slices "
                f"cycling on {self.max_spes} SPE(s)")

    def _init_regex(self, patterns: List[str]) -> None:
        """Greedy bin-packing of regexes into tile-sized DFA slices.

        Each slice is one multi-pattern DFA within the state budget; a
        single regex exceeding the budget alone is rejected.  Slices
        deploy like exact-dictionary slices: series tiles while they fit
        the SPE budget, dynamic STT replacement beyond that.
        """
        budget = self.plan.max_states
        slices: List[Tuple[object, List[int]]] = []   # (dfa, global ids)
        current_ids: List[int] = []
        current_pats: List[str] = []
        compiled = None
        for i, pattern in enumerate(patterns):
            trial = compile_patterns(current_pats + [pattern], self.fold)
            if trial.num_states <= budget:
                current_ids.append(i)
                current_pats.append(pattern)
                compiled = trial
                continue
            if not current_pats:
                raise MatcherError(
                    f"regex {pattern!r} alone needs {trial.num_states} "
                    f"states, tile budget is {budget}")
            slices.append((compiled, current_ids))
            solo = compile_patterns([pattern], self.fold)
            if solo.num_states > budget:
                raise MatcherError(
                    f"regex {pattern!r} alone needs {solo.num_states} "
                    f"states, tile budget is {budget}")
            current_ids = [i]
            current_pats = [pattern]
            compiled = solo
        if current_pats:
            slices.append((compiled, current_ids))

        self._regex_slices = slices
        self._acs = []
        self.partition = None
        self.replacement = None
        num_slices = len(slices)
        if num_slices <= self.max_spes:
            self.composition = TileComposition(
                [dfa for dfa, _ in slices], ways=1, overlap=0,
                max_spes=self.max_spes)
            self.spes_used = num_slices
            self.modelled_gbps = self.per_tile_gbps
            kind = "single regex tile" if num_slices == 1                 else f"{num_slices} series regex tiles"
            total_states = sum(d.num_states for d, _ in slices)
            self.configuration = f"{kind} ({total_states} states)"
        else:
            self.composition = None
            self.spes_used = self.max_spes
            self.modelled_gbps = effective_gbps(
                num_slices, self.per_tile_gbps, self.max_spes)
            self.configuration = (
                f"dynamic STT replacement: {num_slices} regex slices "
                f"cycling on {self.max_spes} SPE(s)")

    # -- scanning -----------------------------------------------------------------

    def scan(self, data: Union[str, bytes],
             with_events: bool = False, workers: int = 1) -> ScanReport:
        """Scan one contiguous buffer; returns counts (and, optionally,
        the full list of match events with end positions).

        ``workers > 1`` routes the scan through the host-parallel layer
        (:class:`repro.parallel.ShardedScanner`): the slice DFAs live in
        shared memory, the input is sharded across a persistent process
        pool, and a cross-shard fixpoint keeps the total exact.  The
        parallel path counts totals only — per-pattern attribution and
        events need the serial reporting path.
        """
        raw = data.encode() if isinstance(data, str) else bytes(data)
        t0 = time.perf_counter()
        if workers > 1:
            if with_events:
                raise MatcherError(
                    "match events need the serial path; use workers=1 "
                    "with with_events=True")
            total = self._scan_sharded(raw, workers)
            return self._report(total, None, len(raw),
                                host_seconds=time.perf_counter() - t0,
                                workers=workers)
        folded = self.fold.fold_bytes(raw)
        all_events: List[MatchEvent] = []
        if self.regex:
            for dfa, ids in self._regex_slices:
                for ev in dfa.match_events(folded):
                    all_events.append(MatchEvent(ev.end, ids[ev.pattern]))
        else:
            for si, ac in enumerate(self._acs):
                for ev in ac.find_all(folded):
                    all_events.append(MatchEvent(
                        ev.end,
                        self.partition.global_pattern_id(si, ev.pattern)))
        all_events.sort(key=lambda e: (e.end, e.pattern))
        counts = dict(Counter(e.pattern for e in all_events))
        return self._report(len(all_events),
                            all_events if with_events else None,
                            len(raw), counts,
                            host_seconds=time.perf_counter() - t0)

    def _slice_dfas(self) -> List[DFA]:
        if self.regex:
            return [dfa for dfa, _ in self._regex_slices]
        return list(self.partition.dfas)

    def _sharded_scanner(self, workers: int):
        """Lazily built, cached host-parallel scanner (one pool per
        worker count; the pool and the shared STTs persist across
        scans)."""
        from ..parallel import ShardedScanner

        scanner = self._sharded.get(workers)
        if scanner is None:
            scanner = ShardedScanner(self._slice_dfas(), workers=workers,
                                     fold=self.fold, weighted=True)
            self._sharded[workers] = scanner
        return scanner

    def _scan_sharded(self, raw: bytes, workers: int) -> int:
        # weighted=True makes the flat-table count agree with the event
        # semantics of the serial path (one hit per dictionary entry
        # recognized, even when several end on one state entry).
        return self._sharded_scanner(workers).count_block(raw)

    def scan_iter(self, chunks: Iterable[Union[str, bytes]],
                  workers: int = 1) -> ScanReport:
        """Scan a stream of chunks as one contiguous input, without ever
        materializing it.

        The concatenation of ``chunks`` is scanned exactly as
        :meth:`scan` would scan it in one piece — chunk boundaries are
        invisible, matches straddling them are counted — but memory use
        is bounded by the staging ring, so multi-GB streams flow
        through.  Counts only (events need the serial block path).
        """
        t0 = time.perf_counter()
        scanner = self._sharded_scanner(workers)
        total = scanner.count_stream(
            c.encode() if isinstance(c, str) else c for c in chunks)
        return self._report(total, None,
                            scanner.last_scan_stats["bytes"],
                            host_seconds=time.perf_counter() - t0,
                            workers=workers)

    def scan_file(self, file, workers: int = 1) -> ScanReport:
        """Scan a binary file's bytes, streamed straight into the
        staging ring (never materialized).  ``file`` is a path or a
        binary file object; counts only."""
        t0 = time.perf_counter()
        scanner = self._sharded_scanner(workers)
        total = scanner.scan_file(file)
        return self._report(total, None,
                            scanner.last_scan_stats["bytes"],
                            host_seconds=time.perf_counter() - t0,
                            workers=workers)

    def scan_streams(self, streams: Sequence[bytes],
                     workers: int = 1) -> ScanReport:
        """Scan independent streams (counts only)."""
        t0 = time.perf_counter()
        total = 0
        bytes_scanned = 0
        for s in streams:
            raw = s.encode() if isinstance(s, str) else bytes(s)
            bytes_scanned += len(raw)
            if workers > 1:
                total += self._scan_sharded(raw, workers)
            else:
                total += self.scan(raw).total_matches
        return self._report(total, None, bytes_scanned,
                            host_seconds=time.perf_counter() - t0,
                            workers=workers)

    def close(self) -> None:
        """Release host-parallel pools and shared artifacts, if any."""
        for scanner in self._sharded.values():
            scanner.close()
        self._sharded.clear()

    def __enter__(self) -> "CellStringMatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    def count(self, data: Union[str, bytes], workers: int = 1) -> int:
        """Shortcut: total dictionary occurrences in ``data``."""
        return self.scan(data, workers=workers).total_matches

    def _report(self, total: int, events: Optional[List[MatchEvent]],
                nbytes: int,
                counts: Optional[Dict[int, int]] = None,
                host_seconds: float = 0.0,
                workers: int = 1) -> ScanReport:
        return ScanReport(
            total_matches=total,
            events=events,
            bytes_scanned=nbytes,
            configuration=self.configuration,
            spes_used=self.spes_used,
            modelled_gbps=self.modelled_gbps,
            pattern_counts=counts,
            host_seconds=host_seconds,
            workers=workers,
        )

    # -- introspection ---------------------------------------------------------------

    @property
    def num_patterns(self) -> int:
        return len(self._raw_patterns)

    def __repr__(self) -> str:
        return (f"CellStringMatcher(patterns={self.num_patterns}, "
                f"config={self.configuration!r})")
