"""DFA algebra: product constructions over complete automata.

Security filters compose: "alert if the payload matches *any* signature"
(union), "matches signature A *and* policy B" (intersection), "matches A
but is whitelisted by W" (difference).  All three are instances of the
product construction δ((a,b), c) = (δ_A(a,c), δ_B(b,c)) with a final-set
predicate; complement flips the final marking of a complete DFA.

Outputs are combined so union products still report which side (and which
pattern) matched: pattern ids of ``b`` are shifted by ``a``'s pattern
count (the same global-id convention the partitioner uses).

Reachable-state-only construction keeps products small; results are
optionally Hopcroft-minimized.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .automaton import DFA, DFAError

__all__ = ["union", "intersection", "difference", "complement", "product"]


def _num_patterns(dfa: DFA) -> int:
    return 1 + max((max(p) for p in dfa.outputs.values() if p),
                   default=-1)


def product(a: DFA, b: DFA,
            final_rule: Callable[[bool, bool], bool],
            combine_outputs: bool = False,
            minimal: bool = False) -> DFA:
    """Reachable product of two complete DFAs over the same alphabet.

    ``final_rule(a_final, b_final)`` decides finality of a product state;
    with ``combine_outputs`` the product carries both sides' outputs,
    ``b``'s pattern ids shifted past ``a``'s.
    """
    if a.alphabet_size != b.alphabet_size:
        raise DFAError(
            f"alphabet mismatch: {a.alphabet_size} vs {b.alphabet_size}")
    W = a.alphabet_size
    shift = _num_patterns(a) if combine_outputs else 0

    index: Dict[Tuple[int, int], int] = {(a.start, b.start): 0}
    order: List[Tuple[int, int]] = [(a.start, b.start)]
    rows: List[np.ndarray] = []
    finals: List[int] = []
    outputs: Dict[int, Tuple[int, ...]] = {}

    i = 0
    while i < len(order):
        sa, sb = order[i]
        row = np.zeros(W, dtype=np.int32)
        for c in range(W):
            nxt = (int(a.transitions[sa, c]), int(b.transitions[sb, c]))
            j = index.get(nxt)
            if j is None:
                j = len(order)
                index[nxt] = j
                order.append(nxt)
            row[c] = j
        rows.append(row)
        fa = bool(a.final_mask[sa])
        fb = bool(b.final_mask[sb])
        if final_rule(fa, fb):
            finals.append(i)
            if combine_outputs:
                pats = tuple(a.outputs.get(sa, ())) + tuple(
                    p + shift for p in b.outputs.get(sb, ()))
                if pats:
                    outputs[i] = tuple(sorted(pats))
        i += 1

    result = DFA(np.vstack(rows), finals, start=0, outputs=outputs)
    if minimal:
        from .regex.minimize import minimize
        result = minimize(result)
    return result


def union(a: DFA, b: DFA, minimal: bool = False) -> DFA:
    """Accept where either side accepts; outputs report both sides."""
    return product(a, b, lambda fa, fb: fa or fb, combine_outputs=True,
                   minimal=minimal)


def intersection(a: DFA, b: DFA, minimal: bool = False) -> DFA:
    """Accept where both sides accept simultaneously."""
    return product(a, b, lambda fa, fb: fa and fb, minimal=minimal)


def difference(a: DFA, b: DFA, minimal: bool = False) -> DFA:
    """Accept where ``a`` accepts and ``b`` does not (whitelisting)."""
    return product(a, b, lambda fa, fb: fa and not fb, minimal=minimal)


def complement(a: DFA) -> DFA:
    """Flip final/non-final (complete DFAs only, which ours always are).

    Note the *acceptor* semantics: the complement is final exactly at
    positions where the original is not; outputs are dropped (there is no
    meaningful pattern id for "nothing matched here").
    """
    finals = [s for s in range(a.num_states) if s not in a.finals]
    return DFA(a.transitions.copy(), finals, start=a.start)
