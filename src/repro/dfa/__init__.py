"""DFA construction substrate: alphabet folding, Aho–Corasick, regex
compilation, minimization, and dictionary partitioning."""

from .aho_corasick import AhoCorasick, build_dfa
from .alphabet import FoldMap, case_fold_32, fold_from_classes, identity_fold
from .automaton import DFA, DFAError, MatchEvent
from .partition import PartitionedDictionary, partition_patterns, trie_states
from .regex import compile_patterns, compile_regex

__all__ = [
    "AhoCorasick",
    "build_dfa",
    "FoldMap",
    "case_fold_32",
    "fold_from_classes",
    "identity_fold",
    "DFA",
    "DFAError",
    "MatchEvent",
    "PartitionedDictionary",
    "partition_patterns",
    "trie_states",
    "compile_patterns",
    "compile_regex",
]
