"""Deterministic finite automata used as string acceptors (paper §3).

A DFA here is the quintuple (Σ, S, s0, δ, F): ``alphabet_size`` symbols, a
dense transition table δ of shape (|S|, |Σ|), a start state, and a final-
state marking.  Final states may carry *outputs* — the dictionary patterns
recognized on entering them — so the same object serves as a counting
acceptor (the paper's kernels) and as a full match reporter (the baselines
and the numpy engine).

The reference interpreter :meth:`DFA.count_matches` defines the ground-truth
semantics every other engine in this repository is tested against: one match
event per input position whose destination state is final.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["DFA", "DFAError", "MatchEvent"]


class DFAError(Exception):
    """Raised for malformed automata."""


@dataclass(frozen=True)
class MatchEvent:
    """A recognized dictionary entry: ``end`` is the index one past the
    last matched symbol; ``pattern`` the dictionary index."""

    end: int
    pattern: int


class DFA:
    """Dense deterministic finite automaton.

    Parameters
    ----------
    transitions:
        Array-like of shape (num_states, alphabet_size); entry [s, c] is the
        destination state of δ(s, c).  Must be a *complete* table (the paper
        requires content-independent workload: every state consumes every
        symbol in exactly one step).
    finals:
        Iterable of final state ids.
    start:
        Initial state s0.
    outputs:
        Optional mapping state → tuple of dictionary-pattern indices that
        end at this state.
    """

    def __init__(self, transitions: Sequence[Sequence[int]],
                 finals: Iterable[int], start: int = 0,
                 outputs: Optional[Dict[int, Tuple[int, ...]]] = None) -> None:
        table = np.asarray(transitions, dtype=np.int32)
        if table.ndim != 2:
            raise DFAError("transition table must be 2-D (states × symbols)")
        self.transitions = table
        self.num_states, self.alphabet_size = table.shape
        if self.num_states == 0 or self.alphabet_size == 0:
            raise DFAError("DFA needs at least one state and one symbol")
        if not 0 <= start < self.num_states:
            raise DFAError(f"start state {start} out of range")
        if table.min() < 0 or table.max() >= self.num_states:
            raise DFAError("transition table references unknown states")
        self.start = int(start)
        finals = frozenset(int(f) for f in finals)
        for f in finals:
            if not 0 <= f < self.num_states:
                raise DFAError(f"final state {f} out of range")
        self.finals = finals
        self.final_mask = np.zeros(self.num_states, dtype=bool)
        for f in finals:
            self.final_mask[f] = True
        self.outputs: Dict[int, Tuple[int, ...]] = dict(outputs or {})
        for s in self.outputs:
            if s not in self.finals:
                raise DFAError(f"output attached to non-final state {s}")

    # -- reference interpreter ----------------------------------------------------

    def step(self, state: int, symbol: int) -> int:
        """One application of δ."""
        if not 0 <= symbol < self.alphabet_size:
            raise DFAError(f"symbol {symbol} outside alphabet "
                           f"[0, {self.alphabet_size})")
        return int(self.transitions[state, symbol])

    def count_matches(self, symbols: bytes) -> int:
        """Ground-truth counting semantics: +1 per final-state entry.

        This is exactly what the paper's kernels compute ("counts the number
        of occurrences of dictionary entries in the given block").
        """
        state = self.start
        table = self.transitions
        final = self.final_mask
        count = 0
        for sym in symbols:
            state = table[state, sym]
            if final[state]:
                count += 1
        return count

    def run(self, symbols: bytes) -> int:
        """Consume ``symbols``; return the final state reached."""
        state = self.start
        table = self.transitions
        for sym in symbols:
            state = table[state, sym]
        return int(state)

    def match_events(self, symbols: bytes) -> List[MatchEvent]:
        """Full reporting semantics using per-state outputs."""
        state = self.start
        table = self.transitions
        events: List[MatchEvent] = []
        for pos, sym in enumerate(symbols):
            state = int(table[state, sym])
            for pat in self.outputs.get(state, ()):
                events.append(MatchEvent(pos + 1, pat))
        return events

    def state_trace(self, symbols: bytes) -> List[int]:
        """Sequence of states visited (excluding the start state)."""
        state = self.start
        table = self.transitions
        trace = []
        for sym in symbols:
            state = int(table[state, sym])
            trace.append(state)
        return trace

    # -- structural queries ------------------------------------------------------

    def is_complete(self) -> bool:
        """A dense int table is complete by construction; kept for API
        symmetry with sparse representations."""
        return True

    def reachable_states(self) -> np.ndarray:
        """Boolean mask of states reachable from the start state."""
        seen = np.zeros(self.num_states, dtype=bool)
        stack = [self.start]
        seen[self.start] = True
        while stack:
            s = stack.pop()
            for t in np.unique(self.transitions[s]):
                if not seen[t]:
                    seen[t] = True
                    stack.append(int(t))
        return seen

    def trim(self) -> "DFA":
        """Drop unreachable states (renumbering the rest)."""
        mask = self.reachable_states()
        if mask.all():
            return self
        old_to_new = -np.ones(self.num_states, dtype=np.int32)
        old_to_new[mask] = np.arange(int(mask.sum()), dtype=np.int32)
        table = old_to_new[self.transitions[mask]]
        finals = [int(old_to_new[f]) for f in self.finals if mask[f]]
        outputs = {int(old_to_new[s]): pats
                   for s, pats in self.outputs.items() if mask[s]}
        return DFA(table, finals, int(old_to_new[self.start]), outputs)

    def memory_bytes(self, cell_bytes: int = 4) -> int:
        """Footprint of the dense STT at ``cell_bytes`` per entry."""
        return self.num_states * self.alphabet_size * cell_bytes

    def __repr__(self) -> str:
        return (f"DFA(states={self.num_states}, "
                f"alphabet={self.alphabet_size}, finals={len(self.finals)})")

    # -- equivalence (for tests) ----------------------------------------------------

    def equivalent_to(self, other: "DFA", max_depth: int = 10_000) -> bool:
        """Language equivalence by synchronized BFS over the product."""
        if self.alphabet_size != other.alphabet_size:
            return False
        seen = set()
        frontier = [(self.start, other.start)]
        seen.add((self.start, other.start))
        steps = 0
        while frontier:
            a, b = frontier.pop()
            if self.final_mask[a] != other.final_mask[b]:
                return False
            for c in range(self.alphabet_size):
                pair = (int(self.transitions[a, c]),
                        int(other.transitions[b, c]))
                if pair not in seen:
                    seen.add(pair)
                    frontier.append(pair)
            steps += 1
            if steps > max_depth:
                raise DFAError("equivalence check exceeded max_depth")
        return True
