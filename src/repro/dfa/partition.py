"""Dictionary partitioning for series tiles and dynamic STT replacement.

A single DFA tile holds roughly 1500 states (Figure 3); a half-size
replacement slice roughly 800 (§6).  Larger dictionaries must be split into
groups of patterns whose individual automata respect a state budget; each
group becomes one STT placed on its own tile ("in series", §5) or streamed
through a tile cyclically (§6).

The Aho–Corasick automaton's state count equals its trie node count, so the
partitioner packs patterns greedily by *exact* incremental trie growth —
no estimation slack — and guarantees every group fits the budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .aho_corasick import AhoCorasick
from .automaton import DFA, DFAError

__all__ = ["PartitionedDictionary", "partition_patterns", "trie_states"]


class _TrieCounter:
    """Incremental trie-size tracker (exact AC state counts)."""

    def __init__(self) -> None:
        self.children: List[Dict[int, int]] = [{}]

    @property
    def num_states(self) -> int:
        return len(self.children)

    def added_states(self, pattern: bytes) -> int:
        """How many new states inserting ``pattern`` would create."""
        node = 0
        for i, sym in enumerate(pattern):
            nxt = self.children[node].get(sym)
            if nxt is None:
                return len(pattern) - i
            node = nxt
        return 0

    def insert(self, pattern: bytes) -> None:
        node = 0
        for sym in pattern:
            nxt = self.children[node].get(sym)
            if nxt is None:
                self.children.append({})
                nxt = len(self.children) - 1
                self.children[node][sym] = nxt
            node = nxt


def trie_states(patterns: Sequence[bytes]) -> int:
    """Exact Aho–Corasick state count for a pattern set."""
    trie = _TrieCounter()
    for p in patterns:
        trie.insert(bytes(p))
    return trie.num_states


@dataclass
class PartitionedDictionary:
    """A dictionary split into state-budgeted groups.

    ``groups[i]`` lists the (original) pattern indices of slice ``i``;
    ``dfas[i]`` is that slice's dense Aho–Corasick DFA.  Pattern ids in each
    DFA's outputs are *local* to the group; :meth:`global_pattern_id` maps
    them back.
    """

    patterns: Tuple[bytes, ...]
    groups: Tuple[Tuple[int, ...], ...]
    dfas: Tuple[DFA, ...]
    max_states: int

    @property
    def num_slices(self) -> int:
        return len(self.groups)

    def global_pattern_id(self, slice_index: int, local_id: int) -> int:
        return self.groups[slice_index][local_id]

    def slice_patterns(self, slice_index: int) -> List[bytes]:
        return [self.patterns[i] for i in self.groups[slice_index]]

    def total_states(self) -> int:
        return sum(d.num_states for d in self.dfas)

    def validate(self) -> None:
        """Check the partition invariants (used by tests)."""
        seen = [i for group in self.groups for i in group]
        if sorted(seen) != list(range(len(self.patterns))):
            raise DFAError("partition does not cover every pattern exactly "
                           "once")
        for i, dfa in enumerate(self.dfas):
            if dfa.num_states > self.max_states:
                raise DFAError(
                    f"slice {i} has {dfa.num_states} states "
                    f"> budget {self.max_states}")


def partition_patterns(patterns: Sequence[bytes], max_states: int,
                       alphabet_size: int = 32) -> PartitionedDictionary:
    """Greedy first-fit packing of patterns into state-budgeted slices.

    Patterns are packed in the given order; a pattern that does not fit the
    current slice closes it and opens the next.  A single pattern whose own
    trie exceeds the budget is rejected — it can never fit any tile.
    """
    if max_states < 2:
        raise DFAError("state budget must allow at least the root plus one "
                       "state")
    pats = [bytes(p) for p in patterns]
    if not pats:
        raise DFAError("dictionary must contain at least one pattern")

    groups: List[List[int]] = []
    current: List[int] = []
    trie = _TrieCounter()
    for idx, pattern in enumerate(pats):
        if len(pattern) + 1 > max_states:
            raise DFAError(
                f"pattern {idx} needs {len(pattern) + 1} states by itself, "
                f"more than the {max_states}-state budget")
        if trie.num_states + trie.added_states(pattern) > max_states:
            groups.append(current)
            current = []
            trie = _TrieCounter()
        trie.insert(pattern)
        current.append(idx)
    if current:
        groups.append(current)

    dfas = []
    for group in groups:
        ac = AhoCorasick([pats[i] for i in group], alphabet_size)
        dfas.append(ac.to_dfa())

    return PartitionedDictionary(
        patterns=tuple(pats),
        groups=tuple(tuple(g) for g in groups),
        dfas=tuple(dfas),
        max_states=max_states,
    )
