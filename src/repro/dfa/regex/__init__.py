"""Regex → DFA pipeline: parse → Thompson NFA → subset construction →
Hopcroft minimization.

High-level entry points:

* :func:`compile_regex` — one pattern → minimal scanner DFA;
* :func:`compile_patterns` — many patterns → one multi-pattern DFA whose
  outputs report which pattern matched (the construction the paper's
  reference [4] assumes for regex dictionaries).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..alphabet import FoldMap, identity_fold
from ..automaton import DFA
from .determinize import determinize
from .minimize import minimize
from .nfa import NFA, build_nfa, combine
from .parser import Node, RegexError, parse

__all__ = [
    "RegexError",
    "Node",
    "NFA",
    "parse",
    "build_nfa",
    "combine",
    "determinize",
    "minimize",
    "compile_regex",
    "compile_patterns",
]


def compile_regex(pattern: str, fold: Optional[FoldMap] = None,
                  unanchored: bool = True, minimal: bool = True) -> DFA:
    """Compile a single regex into a (minimal) scanner DFA."""
    if fold is None:
        fold = identity_fold()
    ast = parse(pattern, fold)
    nfa = build_nfa(ast, fold.width, unanchored=unanchored)
    dfa = determinize(nfa)
    return minimize(dfa) if minimal else dfa


def compile_patterns(patterns: Sequence[str], fold: Optional[FoldMap] = None,
                     unanchored: bool = True, minimal: bool = True) -> DFA:
    """Compile several regexes into one multi-pattern scanner DFA."""
    if fold is None:
        fold = identity_fold()
    asts = [parse(p, fold) for p in patterns]
    nfa = combine(asts, fold.width, unanchored=unanchored)
    dfa = determinize(nfa)
    return minimize(dfa) if minimal else dfa
