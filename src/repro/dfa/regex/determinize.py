"""Subset construction: NFA → dense DFA.

Produces the complete transition table the paper's kernels need: every
(state, symbol) pair resolved, final states carrying the set of pattern ids
they accept.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

import numpy as np

from ..automaton import DFA
from .nfa import NFA

__all__ = ["determinize"]

#: Safety valve against exponential blow-up; the paper's tiles top out at
#: ~1712 states, so anything far beyond that indicates a pathological regex.
MAX_DFA_STATES = 200_000


class DeterminizeError(Exception):
    """Raised when subset construction exceeds the state budget."""


def determinize(nfa: NFA) -> DFA:
    """Classic subset construction over the dense symbol alphabet."""
    W = nfa.alphabet_size
    start_set = nfa.epsilon_closure({nfa.start})
    index: Dict[FrozenSet[int], int] = {start_set: 0}
    order: List[FrozenSet[int]] = [start_set]
    rows: List[np.ndarray] = []
    outputs: Dict[int, Tuple[int, ...]] = {}

    i = 0
    while i < len(order):
        current = order[i]
        row = np.zeros(W, dtype=np.int32)
        for sym in range(W):
            nxt = nfa.epsilon_closure(nfa.move(current, sym))
            j = index.get(nxt)
            if j is None:
                j = len(order)
                if j >= MAX_DFA_STATES:
                    raise DeterminizeError(
                        f"subset construction exceeded {MAX_DFA_STATES} "
                        f"states; simplify the pattern set")
                index[nxt] = j
                order.append(nxt)
            row[sym] = j
        rows.append(row)
        pats = nfa.accepted_patterns(current)
        if pats:
            outputs[i] = pats
        i += 1

    table = np.vstack(rows)
    return DFA(table, list(outputs.keys()), start=0, outputs=outputs)
