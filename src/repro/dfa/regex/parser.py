"""Regular-expression parser.

The paper (§1, ref [4]) notes that when the dictionary is a set of regular
expressions, a single DFA recognizing all of them can be generated.  This
module parses a practical regex subset into an AST over *symbol sets* of the
folded alphabet:

* literals (folded through the active :class:`~repro.dfa.alphabet.FoldMap`);
* ``.`` — any symbol;
* character classes ``[abc]``, ranges ``[a-z]``, negation ``[^...]``;
* escapes ``\\xHH``, ``\\d``, ``\\w``, ``\\s`` and escaped metacharacters;
* alternation ``|``, grouping ``(...)``;
* quantifiers ``*``, ``+``, ``?``, ``{m}``, ``{m,}``, ``{m,n}``.

Classes and escapes are expanded to byte sets *before* folding, so e.g.
``[a-c]`` over the 32-symbol case fold becomes the symbol set {A,B,C}.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple, Union

from ..alphabet import FoldMap, identity_fold

__all__ = [
    "RegexError",
    "Node",
    "SymbolSet",
    "Concat",
    "Alt",
    "Repeat",
    "Empty",
    "parse",
]


class RegexError(Exception):
    """Raised on malformed patterns."""


class Node:
    """Base class of AST nodes."""


@dataclass(frozen=True)
class Empty(Node):
    """Matches the empty string (ε)."""


@dataclass(frozen=True)
class SymbolSet(Node):
    """Matches exactly one symbol drawn from ``symbols``."""

    symbols: FrozenSet[int]

    def __post_init__(self) -> None:
        if not self.symbols:
            raise RegexError("empty symbol set can never match")


@dataclass(frozen=True)
class Concat(Node):
    parts: Tuple[Node, ...]


@dataclass(frozen=True)
class Alt(Node):
    options: Tuple[Node, ...]


@dataclass(frozen=True)
class Repeat(Node):
    """``child`` repeated between ``lo`` and ``hi`` times (hi=None → ∞)."""

    child: Node
    lo: int
    hi: Optional[int]

    def __post_init__(self) -> None:
        if self.lo < 0:
            raise RegexError("repeat lower bound must be >= 0")
        if self.hi is not None and self.hi < self.lo:
            raise RegexError(f"repeat bounds inverted: {{{self.lo},{self.hi}}}")


_METACHARS = set("\\.[]()|*+?{}^$")

_ESCAPE_CLASSES = {
    "d": set(range(ord("0"), ord("9") + 1)),
    "w": (set(range(ord("a"), ord("z") + 1))
          | set(range(ord("A"), ord("Z") + 1))
          | set(range(ord("0"), ord("9") + 1)) | {ord("_")}),
    "s": {ord(" "), ord("\t"), ord("\n"), ord("\r"), 0x0B, 0x0C},
    "n": {ord("\n")},
    "t": {ord("\t")},
    "r": {ord("\r")},
}


class _Parser:
    """Recursive-descent parser; one instance per pattern."""

    def __init__(self, pattern: str, fold: FoldMap) -> None:
        self.pattern = pattern
        self.fold = fold
        self.pos = 0

    # -- byte-set helpers ---------------------------------------------------------

    def _fold_set(self, byte_values) -> FrozenSet[int]:
        syms = frozenset(self.fold.table[b] for b in byte_values)
        return syms

    def _any_symbol(self) -> FrozenSet[int]:
        return frozenset(range(self.fold.width))

    # -- scanning -------------------------------------------------------------------

    def _peek(self) -> Optional[str]:
        return self.pattern[self.pos] if self.pos < len(self.pattern) else None

    def _next(self) -> str:
        if self.pos >= len(self.pattern):
            raise RegexError(f"unexpected end of pattern {self.pattern!r}")
        ch = self.pattern[self.pos]
        self.pos += 1
        return ch

    def _expect(self, ch: str) -> None:
        got = self._next()
        if got != ch:
            raise RegexError(
                f"expected {ch!r} at offset {self.pos - 1} of "
                f"{self.pattern!r}, found {got!r}")

    # -- grammar ----------------------------------------------------------------

    def parse(self) -> Node:
        node = self._alternation()
        if self.pos != len(self.pattern):
            raise RegexError(
                f"trailing characters at offset {self.pos} of "
                f"{self.pattern!r}")
        return node

    def _alternation(self) -> Node:
        options = [self._concat()]
        while self._peek() == "|":
            self._next()
            options.append(self._concat())
        if len(options) == 1:
            return options[0]
        return Alt(tuple(options))

    def _concat(self) -> Node:
        parts: List[Node] = []
        while True:
            ch = self._peek()
            if ch is None or ch in "|)":
                break
            parts.append(self._repeat())
        if not parts:
            return Empty()
        if len(parts) == 1:
            return parts[0]
        return Concat(tuple(parts))

    def _repeat(self) -> Node:
        atom = self._atom()
        while True:
            ch = self._peek()
            if ch == "*":
                self._next()
                atom = Repeat(atom, 0, None)
            elif ch == "+":
                self._next()
                atom = Repeat(atom, 1, None)
            elif ch == "?":
                self._next()
                atom = Repeat(atom, 0, 1)
            elif ch == "{":
                atom = Repeat(atom, *self._braces())
            else:
                return atom

    def _braces(self) -> Tuple[int, Optional[int]]:
        self._expect("{")
        lo = self._number()
        ch = self._next()
        if ch == "}":
            return lo, lo
        if ch != ",":
            raise RegexError(f"malformed {{m,n}} in {self.pattern!r}")
        if self._peek() == "}":
            self._next()
            return lo, None
        hi = self._number()
        self._expect("}")
        return lo, hi

    def _number(self) -> int:
        digits = ""
        while self._peek() is not None and self._peek().isdigit():
            digits += self._next()
        if not digits:
            raise RegexError(f"expected number at offset {self.pos} of "
                             f"{self.pattern!r}")
        return int(digits)

    def _atom(self) -> Node:
        ch = self._next()
        if ch == "(":
            node = self._alternation()
            self._expect(")")
            return node
        if ch == ".":
            return SymbolSet(self._any_symbol())
        if ch == "[":
            return self._char_class()
        if ch == "\\":
            return SymbolSet(self._fold_set(self._escape_bytes()))
        if ch in "*+?{":
            raise RegexError(f"quantifier {ch!r} with nothing to repeat in "
                             f"{self.pattern!r}")
        if ch in ")|]":
            raise RegexError(f"unexpected {ch!r} at offset {self.pos - 1} "
                             f"of {self.pattern!r}")
        return SymbolSet(self._fold_set({ord(ch)}))

    def _escape_bytes(self) -> set:
        ch = self._next()
        if ch == "x":
            hex_digits = self._next() + self._next()
            try:
                return {int(hex_digits, 16)}
            except ValueError:
                raise RegexError(
                    f"bad hex escape \\x{hex_digits} in {self.pattern!r}"
                ) from None
        if ch in _ESCAPE_CLASSES:
            return set(_ESCAPE_CLASSES[ch])
        if ch in _METACHARS or not ch.isalnum():
            return {ord(ch)}
        raise RegexError(f"unknown escape \\{ch} in {self.pattern!r}")

    def _char_class(self) -> Node:
        negate = False
        if self._peek() == "^":
            self._next()
            negate = True
        byte_values: set = set()
        first = True
        while True:
            ch = self._peek()
            if ch is None:
                raise RegexError(f"unterminated class in {self.pattern!r}")
            if ch == "]" and not first:
                self._next()
                break
            first = False
            ch = self._next()
            if ch == "\\":
                members = self._escape_bytes()
                byte_values |= members
                continue
            lo = ord(ch)
            if self._peek() == "-" and self.pos + 1 < len(self.pattern) \
                    and self.pattern[self.pos + 1] != "]":
                self._next()
                hi_ch = self._next()
                if hi_ch == "\\":
                    members = self._escape_bytes()
                    if len(members) != 1:
                        raise RegexError("class escape cannot end a range")
                    hi = next(iter(members))
                else:
                    hi = ord(hi_ch)
                if hi < lo:
                    raise RegexError(
                        f"inverted range {chr(lo)}-{chr(hi)} in "
                        f"{self.pattern!r}")
                byte_values |= set(range(lo, hi + 1))
            else:
                byte_values.add(lo)
        if negate:
            byte_values = set(range(256)) - byte_values
        if not byte_values:
            raise RegexError(f"empty character class in {self.pattern!r}")
        return SymbolSet(self._fold_set(byte_values))


def parse(pattern: str, fold: Optional[FoldMap] = None) -> Node:
    """Parse ``pattern`` into an AST over the folded symbol alphabet."""
    if fold is None:
        fold = identity_fold()
    return _Parser(pattern, fold).parse()
