"""Hopcroft DFA minimization.

Shrinks the determinized automaton before it is laid out as an STT — every
state removed saves a 128-byte table row of precious local store.  The
initial partition distinguishes states by their *output signature* (which
pattern ids they report), not merely final/non-final, so minimization never
merges states that would conflate two dictionary entries.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Set, Tuple

import numpy as np

from ..automaton import DFA

__all__ = ["minimize"]


def minimize(dfa: DFA) -> DFA:
    """Return an equivalent DFA with the minimal number of states."""
    dfa = dfa.trim()
    n = dfa.num_states
    W = dfa.alphabet_size
    table = dfa.transitions

    # Initial partition: group states by output signature.
    signature: Dict[int, Tuple[int, ...]] = {
        s: dfa.outputs.get(s, ()) if s in dfa.finals else None  # type: ignore
        for s in range(n)
    }
    # Non-final states get signature None; final states their outputs (an
    # empty tuple is a distinct signature from None).
    groups: Dict[object, Set[int]] = defaultdict(set)
    for s in range(n):
        key = ("F", signature[s]) if s in dfa.finals else ("N",)
        groups[key].add(s)

    partitions: List[Set[int]] = [g for g in groups.values() if g]
    # Hopcroft worklist: (partition index) refined per symbol.
    # We track membership via an array for O(1) lookup.
    part_of = np.zeros(n, dtype=np.int64)
    for idx, block in enumerate(partitions):
        for s in block:
            part_of[s] = idx

    # Precompute inverse transitions: for each symbol, state -> predecessors.
    preds: List[Dict[int, List[int]]] = []
    for c in range(W):
        inv: Dict[int, List[int]] = defaultdict(list)
        col = table[:, c]
        for s in range(n):
            inv[int(col[s])].append(s)
        preds.append(inv)

    worklist: Set[Tuple[int, int]] = {
        (idx, c) for idx in range(len(partitions)) for c in range(W)
    }

    while worklist:
        a_idx, c = worklist.pop()
        splitter = partitions[a_idx]
        # X = states with a c-transition into the splitter.
        inv = preds[c]
        x: Set[int] = set()
        for t in splitter:
            x.update(inv.get(t, ()))
        if not x:
            continue
        # Refine every block crossed by X.
        touched: Dict[int, Set[int]] = defaultdict(set)
        for s in x:
            touched[int(part_of[s])].add(s)
        for b_idx, inter in touched.items():
            block = partitions[b_idx]
            if len(inter) == len(block):
                continue
            diff = block - inter
            # Replace block with the smaller half; append the larger.
            new_idx = len(partitions)
            if len(inter) <= len(diff):
                partitions[b_idx] = diff
                partitions.append(inter)
                moved = inter
            else:
                partitions[b_idx] = inter
                partitions.append(diff)
                moved = diff
            for s in moved:
                part_of[s] = new_idx
            for sym in range(W):
                if (b_idx, sym) in worklist:
                    worklist.add((new_idx, sym))
                else:
                    # Add the smaller of the two halves.
                    if len(partitions[new_idx]) <= len(partitions[b_idx]):
                        worklist.add((new_idx, sym))
                    else:
                        worklist.add((b_idx, sym))

    # Rebuild the quotient automaton; keep the start state's block first.
    old_start_block = int(part_of[dfa.start])
    order = [old_start_block] + [i for i in range(len(partitions))
                                 if i != old_start_block and partitions[i]]
    renumber = {blk: i for i, blk in enumerate(order)}

    m = len(order)
    new_table = np.zeros((m, W), dtype=np.int32)
    new_outputs: Dict[int, Tuple[int, ...]] = {}
    new_finals: List[int] = []
    for blk, new_id in renumber.items():
        rep = next(iter(partitions[blk]))
        for c in range(W):
            new_table[new_id, c] = renumber[int(part_of[table[rep, c]])]
        if rep in dfa.finals:
            new_finals.append(new_id)
            pats = dfa.outputs.get(rep, ())
            if pats:
                new_outputs[new_id] = pats
    return DFA(new_table, new_finals, start=0, outputs=new_outputs)
