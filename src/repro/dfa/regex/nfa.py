"""Thompson construction: regex AST → nondeterministic finite automaton.

States are integers; transitions are either ε-edges or labelled with a
symbol set.  Multiple regexes combine into one NFA whose accepting states
are tagged with the pattern index, so the determinized DFA can report which
dictionary entry matched — the multi-pattern construction the paper's
reference [4] (Chang & Paige) assumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .parser import Alt, Concat, Empty, Node, RegexError, Repeat, SymbolSet

__all__ = ["NFA", "build_nfa", "combine"]


@dataclass
class NFA:
    """ε-NFA with symbol-set-labelled edges.

    ``edges[s]`` is a list of (symbol_set | None, destination); ``None``
    labels an ε-edge.  ``accepts`` maps accepting states to pattern ids.
    """

    num_states: int = 0
    edges: List[List[Tuple[Optional[FrozenSet[int]], int]]] = \
        field(default_factory=list)
    start: int = 0
    accepts: Dict[int, int] = field(default_factory=dict)
    alphabet_size: int = 32

    def new_state(self) -> int:
        self.edges.append([])
        self.num_states += 1
        return self.num_states - 1

    def add_edge(self, src: int, label: Optional[FrozenSet[int]],
                 dst: int) -> None:
        self.edges[src].append((label, dst))

    # -- analysis -------------------------------------------------------------

    def epsilon_closure(self, states: Set[int]) -> FrozenSet[int]:
        """All states reachable from ``states`` through ε-edges alone."""
        closure = set(states)
        stack = list(states)
        while stack:
            s = stack.pop()
            for label, dst in self.edges[s]:
                if label is None and dst not in closure:
                    closure.add(dst)
                    stack.append(dst)
        return frozenset(closure)

    def move(self, states: FrozenSet[int], symbol: int) -> Set[int]:
        """States reachable by consuming ``symbol`` (before ε-closure)."""
        out: Set[int] = set()
        for s in states:
            for label, dst in self.edges[s]:
                if label is not None and symbol in label:
                    out.add(dst)
        return out

    def accepted_patterns(self, states: FrozenSet[int]) -> Tuple[int, ...]:
        """Sorted pattern ids accepted by any state in the set."""
        return tuple(sorted({self.accepts[s] for s in states
                             if s in self.accepts}))


def _build_fragment(nfa: NFA, node: Node) -> Tuple[int, int]:
    """Compile ``node`` into ``nfa``; return (entry, exit) states."""
    if isinstance(node, Empty):
        s = nfa.new_state()
        t = nfa.new_state()
        nfa.add_edge(s, None, t)
        return s, t
    if isinstance(node, SymbolSet):
        s = nfa.new_state()
        t = nfa.new_state()
        nfa.add_edge(s, node.symbols, t)
        return s, t
    if isinstance(node, Concat):
        entry, cur = _build_fragment(nfa, node.parts[0])
        for part in node.parts[1:]:
            nxt_entry, nxt_exit = _build_fragment(nfa, part)
            nfa.add_edge(cur, None, nxt_entry)
            cur = nxt_exit
        return entry, cur
    if isinstance(node, Alt):
        s = nfa.new_state()
        t = nfa.new_state()
        for option in node.options:
            entry, exit_ = _build_fragment(nfa, option)
            nfa.add_edge(s, None, entry)
            nfa.add_edge(exit_, None, t)
        return s, t
    if isinstance(node, Repeat):
        return _build_repeat(nfa, node)
    raise RegexError(f"unknown AST node {type(node).__name__}")


def _build_repeat(nfa: NFA, node: Repeat) -> Tuple[int, int]:
    """Expand {lo,hi} by chaining copies; hi=None adds a Kleene tail."""
    s = nfa.new_state()
    cur = s
    # Mandatory copies.
    for _ in range(node.lo):
        entry, exit_ = _build_fragment(nfa, node.child)
        nfa.add_edge(cur, None, entry)
        cur = exit_
    t = nfa.new_state()
    if node.hi is None:
        # Kleene star/plus tail: loop on one more copy.
        entry, exit_ = _build_fragment(nfa, node.child)
        nfa.add_edge(cur, None, entry)
        nfa.add_edge(exit_, None, entry)
        nfa.add_edge(exit_, None, t)
        nfa.add_edge(cur, None, t)
    else:
        # Optional copies lo..hi.
        nfa.add_edge(cur, None, t)
        for _ in range(node.hi - node.lo):
            entry, exit_ = _build_fragment(nfa, node.child)
            nfa.add_edge(cur, None, entry)
            nfa.add_edge(exit_, None, t)
            cur = exit_
    return s, t


def build_nfa(node: Node, alphabet_size: int, pattern_id: int = 0,
              unanchored: bool = True) -> NFA:
    """Compile one AST into an NFA scanner.

    ``unanchored=True`` prepends an implicit ``.*`` self-loop so the
    automaton recognizes the pattern starting at *any* stream offset —
    the acceptor semantics of paper §3 ("strings of different lengths
    starting at arbitrary locations in the packet payload").
    """
    nfa = NFA(alphabet_size=alphabet_size)
    start = nfa.new_state()
    if unanchored:
        nfa.add_edge(start, frozenset(range(alphabet_size)), start)
    entry, exit_ = _build_fragment(nfa, node)
    nfa.add_edge(start, None, entry)
    nfa.start = start
    nfa.accepts[exit_] = pattern_id
    return nfa


def combine(nodes: Sequence[Node], alphabet_size: int,
            unanchored: bool = True) -> NFA:
    """Union of several patterns into a single multi-pattern scanner NFA."""
    if not nodes:
        raise RegexError("at least one pattern required")
    nfa = NFA(alphabet_size=alphabet_size)
    start = nfa.new_state()
    if unanchored:
        nfa.add_edge(start, frozenset(range(alphabet_size)), start)
    nfa.start = start
    for pid, node in enumerate(nodes):
        entry, exit_ = _build_fragment(nfa, node)
        nfa.add_edge(start, None, entry)
        nfa.accepts[exit_] = pid
    return nfa
