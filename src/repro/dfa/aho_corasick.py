"""Aho–Corasick multi-pattern matching (paper §1, ref [1]).

The classic dictionary-matching automaton: a trie of the patterns, failure
links computed breadth-first, and output sets merged along failure chains.
Two uses in this repository:

* :meth:`AhoCorasick.to_dfa` produces the dense, failure-free DFA the
  paper's kernels execute — δ(s, c) is fully resolved so every input symbol
  costs exactly one table lookup, the content-independence property that
  makes DFA matching immune to overload attacks;
* :meth:`AhoCorasick.find_all` is itself the reference multi-pattern
  searcher the engines are validated against.

Patterns are byte strings over an already-folded alphabet: byte values must
be < ``alphabet_size``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .automaton import DFA, DFAError, MatchEvent

__all__ = ["AhoCorasick", "build_dfa"]


class AhoCorasick:
    """Aho–Corasick automaton over a ``alphabet_size``-symbol alphabet."""

    def __init__(self, patterns: Sequence[bytes],
                 alphabet_size: int = 32) -> None:
        if alphabet_size <= 0 or alphabet_size > 256:
            raise DFAError("alphabet size must be in 1..256")
        if not patterns:
            raise DFAError("dictionary must contain at least one pattern")
        self.alphabet_size = alphabet_size
        self.patterns: Tuple[bytes, ...] = tuple(bytes(p) for p in patterns)
        for i, p in enumerate(self.patterns):
            if not p:
                raise DFAError(f"pattern {i} is empty")
            bad = [b for b in p if b >= alphabet_size]
            if bad:
                raise DFAError(
                    f"pattern {i} contains symbol {bad[0]} outside the "
                    f"{alphabet_size}-symbol alphabet; fold it first")
        self._build()

    # -- construction ----------------------------------------------------------

    def _build(self) -> None:
        W = self.alphabet_size
        # Trie as parallel arrays; -1 marks "no edge".
        goto: List[np.ndarray] = [np.full(W, -1, dtype=np.int32)]
        out: List[List[int]] = [[]]
        depth: List[int] = [0]

        for idx, pattern in enumerate(self.patterns):
            state = 0
            for sym in pattern:
                nxt = int(goto[state][sym])
                if nxt == -1:
                    goto.append(np.full(W, -1, dtype=np.int32))
                    out.append([])
                    depth.append(depth[state] + 1)
                    nxt = len(goto) - 1
                    goto[state][sym] = nxt
                state = nxt
            out[state].append(idx)

        n = len(goto)
        fail = np.zeros(n, dtype=np.int32)

        # BFS from the root: compute failure links and resolve the complete
        # transition function in place (goto becomes the dense δ).
        queue: deque = deque()
        for c in range(W):
            s = int(goto[0][c])
            if s == -1:
                goto[0][c] = 0
            else:
                fail[s] = 0
                queue.append(s)
        while queue:
            r = queue.popleft()
            # Merge outputs reachable through the failure link.
            f = int(fail[r])
            if out[f]:
                out[r] = out[r] + out[f]
            for c in range(W):
                s = int(goto[r][c])
                if s == -1:
                    goto[r][c] = goto[int(fail[r])][c]
                else:
                    fail[s] = goto[int(fail[r])][c]
                    queue.append(s)

        self.num_states = n
        self.transitions = np.vstack(goto)
        self.fail = fail
        self.depth = np.asarray(depth, dtype=np.int32)
        self.outputs: Dict[int, Tuple[int, ...]] = {
            s: tuple(sorted(pats)) for s, pats in enumerate(out) if pats
        }

    # -- searching ----------------------------------------------------------------

    def find_all(self, text: bytes) -> List[MatchEvent]:
        """All dictionary occurrences in ``text`` (end position, pattern)."""
        state = 0
        table = self.transitions
        events: List[MatchEvent] = []
        for pos, sym in enumerate(text):
            if sym >= self.alphabet_size:
                raise DFAError(
                    f"input symbol {sym} at offset {pos} outside alphabet")
            state = int(table[state, sym])
            for pat in self.outputs.get(state, ()):
                events.append(MatchEvent(pos + 1, pat))
        return events

    def count(self, text: bytes) -> int:
        """Occurrence count (== len(find_all)); the semantics shared with
        the :mod:`repro.baselines` matchers."""
        return len(self.find_all(text))

    def count_final_entries(self, text: bytes) -> int:
        """Counting semantics matching the paper's kernels: +1 per entry
        into a state with a non-empty output set."""
        state = 0
        table = self.transitions
        count = 0
        for sym in text:
            state = int(table[state, sym])
            if state in self.outputs:
                count += 1
        return count

    # -- export --------------------------------------------------------------------

    def to_dfa(self) -> DFA:
        """Dense failure-free DFA with per-state outputs."""
        finals = list(self.outputs.keys())
        return DFA(self.transitions, finals, start=0,
                   outputs=dict(self.outputs))

    @property
    def max_pattern_length(self) -> int:
        return max(len(p) for p in self.patterns)

    def __repr__(self) -> str:
        return (f"AhoCorasick(patterns={len(self.patterns)}, "
                f"states={self.num_states}, alphabet={self.alphabet_size})")


def build_dfa(patterns: Sequence[bytes], alphabet_size: int = 32) -> DFA:
    """Convenience: dictionary → dense Aho–Corasick DFA."""
    return AhoCorasick(patterns, alphabet_size).to_dfa()
