"""Automaton visualization: Graphviz DOT export.

Debugging a dictionary automaton is far easier on a picture.  These
helpers render a :class:`~repro.dfa.automaton.DFA` as DOT text (pipe it
through ``dot -Tsvg``); transitions are grouped by destination so the
32-symbol alphabet doesn't explode into 32 parallel edges, and symbols
can be labelled through a :class:`~repro.dfa.alphabet.FoldMap` so edges
read "A-C" instead of "1-3".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .alphabet import FoldMap
from .automaton import DFA

__all__ = ["to_dot", "symbol_labels"]


def symbol_labels(fold: FoldMap) -> List[str]:
    """Human-readable label per symbol: the printable byte(s) folding
    onto it, or the symbol number."""
    labels = []
    for sym in range(fold.width):
        pre = [b for b in fold.preimage(sym)
               if 0x21 <= b < 0x7F]
        if pre:
            # Prefer an uppercase letter if one maps here.
            letters = [b for b in pre if ord("A") <= b <= ord("Z")]
            pick = letters[0] if letters else pre[0]
            labels.append(chr(pick))
        else:
            labels.append(str(sym))
    return labels


def _group_edges(dfa: DFA, state: int) -> Dict[int, List[int]]:
    """destination -> sorted list of symbols."""
    groups: Dict[int, List[int]] = {}
    for sym in range(dfa.alphabet_size):
        dst = int(dfa.transitions[state, sym])
        groups.setdefault(dst, []).append(sym)
    return groups


def _ranges(symbols: Sequence[int]) -> List[Tuple[int, int]]:
    """Collapse a sorted symbol list into inclusive ranges."""
    out: List[Tuple[int, int]] = []
    for sym in symbols:
        if out and sym == out[-1][1] + 1:
            out[-1] = (out[-1][0], sym)
        else:
            out.append((sym, sym))
    return out


def to_dot(dfa: DFA, fold: Optional[FoldMap] = None,
           max_states: int = 200, skip_to_start: bool = True,
           name: str = "dfa") -> str:
    """Render ``dfa`` as Graphviz DOT.

    ``skip_to_start`` suppresses edges returning to the start state (the
    overwhelming majority in a security DFA — the picture is unreadable
    with them).  Automata beyond ``max_states`` are rejected; visualize a
    slice instead.
    """
    if dfa.num_states > max_states:
        raise ValueError(
            f"{dfa.num_states} states is too many to draw (limit "
            f"{max_states}); visualize one dictionary slice instead")
    labels = symbol_labels(fold) if fold is not None else [
        str(s) for s in range(dfa.alphabet_size)]

    lines = [f"digraph {name} {{", "  rankdir=LR;",
             "  node [shape=circle];",
             f"  start [shape=point];",
             f"  start -> s{dfa.start};"]
    for s in dfa.finals:
        lines.append(f"  s{s} [shape=doublecircle];")
    for s, pats in sorted(dfa.outputs.items()):
        plist = ",".join(str(p) for p in pats)
        lines.append(f'  s{s} [xlabel="out:{plist}"];')
    for s in range(dfa.num_states):
        for dst, symbols in sorted(_group_edges(dfa, s).items()):
            if skip_to_start and dst == dfa.start:
                continue
            parts = []
            for lo, hi in _ranges(symbols):
                if lo == hi:
                    parts.append(labels[lo])
                else:
                    parts.append(f"{labels[lo]}-{labels[hi]}")
            label = ",".join(parts)
            lines.append(f'  s{s} -> s{dst} [label="{label}"];')
    lines.append("}")
    return "\n".join(lines)
