"""Input-alphabet data reduction (paper §4).

The paper shrinks the state-transition table by folding the 256-value byte
range onto a 32-symbol alphabet — "e.g. the 32 values from 0x40 to 0x5F,
which comprise the uppercase Latin alphabet plus other 6 characters" — since
most security filters are case-insensitive anyway.  Folding happens *before*
the DFA: both the dictionary and the input stream pass through the same
fold, so matching is exact in folded space (collisions introduced by the
fold are a property of the filter, not of the engine).

:class:`FoldMap` is the general mechanism; :func:`case_fold_32` builds the
paper's example fold, and :func:`identity_fold` the trivial full-byte one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

__all__ = ["FoldMap", "case_fold_32", "identity_fold", "fold_from_classes"]


@dataclass(frozen=True)
class FoldMap:
    """A byte → symbol reduction: 256-entry table onto ``width`` symbols."""

    table: Tuple[int, ...]
    width: int

    def __post_init__(self) -> None:
        if len(self.table) != 256:
            raise ValueError("fold table must have 256 entries")
        if self.width <= 0 or self.width > 256:
            raise ValueError("fold width must be in 1..256")
        bad = [s for s in self.table if not 0 <= s < self.width]
        if bad:
            raise ValueError(
                f"fold table maps outside [0, {self.width}): {bad[:4]}...")

    # -- application -----------------------------------------------------------

    def fold_byte(self, b: int) -> int:
        return self.table[b]

    def fold_bytes(self, data: bytes) -> bytes:
        """Fold an input stream; result bytes are symbol ids < width."""
        arr = np.frombuffer(data, dtype=np.uint8)
        return self.np_table[arr].tobytes()

    def fold_symbols(self, data: bytes) -> np.ndarray:
        """Fold to a numpy array of symbol ids (for the numpy engine)."""
        arr = np.frombuffer(data, dtype=np.uint8)
        return self.np_table[arr]

    @property
    def np_table(self) -> np.ndarray:
        # Frozen dataclass: stash the computed array on the instance via
        # object.__setattr__ (an id()-keyed cache would go stale when ids
        # are recycled after garbage collection).
        cached = getattr(self, "_np_table", None)
        if cached is None:
            cached = np.asarray(self.table, dtype=np.uint8)
            object.__setattr__(self, "_np_table", cached)
        return cached

    # -- analysis ----------------------------------------------------------------

    def preimage(self, symbol: int) -> Tuple[int, ...]:
        """All byte values folding onto ``symbol``."""
        return tuple(b for b in range(256) if self.table[b] == symbol)

    def collision_count(self) -> int:
        """Number of byte values sharing a symbol with another byte."""
        from collections import Counter
        counts = Counter(self.table)
        return sum(c for c in counts.values() if c > 1)

    def is_identity(self) -> bool:
        return self.width == 256 and all(
            self.table[b] == b for b in range(256))


def case_fold_32() -> FoldMap:
    """The paper's 32-symbol case-insensitive fold.

    Bytes 0x40–0x5F (``@``, ``A``–``Z``, ``[``, ``\\``, ``]``, ``^``, ``_``)
    map to symbols 0–31 directly; lowercase letters fold onto their
    uppercase symbol; every other byte maps to symbol 0 (the ``@`` bucket).
    """
    table = [0] * 256
    for b in range(0x40, 0x60):
        table[b] = b - 0x40
    for b in range(ord("a"), ord("z") + 1):
        table[b] = (b - 0x20) - 0x40
    return FoldMap(tuple(table), 32)


def identity_fold(width: int = 256) -> FoldMap:
    """No reduction: byte b maps to symbol b (bytes >= width map to 0).

    With ``width=256`` this is the unfolded full-byte alphabet; smaller
    widths keep the low byte values and bucket the rest, which is handy for
    alphabet-width ablations.
    """
    table = [b if b < width else 0 for b in range(256)]
    return FoldMap(tuple(table), width)


def fold_from_classes(classes: Sequence[Iterable[int]],
                      default: int = 0) -> FoldMap:
    """Build a fold from explicit byte classes.

    ``classes[i]`` lists the byte values mapping to symbol ``i``; bytes in
    no class map to ``default``.  Raises if a byte appears in two classes.
    """
    width = len(classes)
    if width == 0:
        raise ValueError("at least one class required")
    if not 0 <= default < width:
        raise ValueError("default symbol outside alphabet")
    table = [default] * 256
    seen: Dict[int, int] = {}
    for sym, members in enumerate(classes):
        for b in members:
            if not 0 <= b < 256:
                raise ValueError(f"byte value {b} out of range")
            if b in seen:
                raise ValueError(
                    f"byte {b} assigned to classes {seen[b]} and {sym}")
            seen[b] = sym
            table[b] = sym
    return FoldMap(tuple(table), width)
