"""Host-parallel scan layer — the paper's parallel-tile composition
(Figure 6a) mapped onto host cores.

The paper multiplies throughput by running identical DFA tiles over
disjoint input slices; here :class:`ShardedScanner` runs identical
:class:`~repro.core.engine.FlatScanner` workers over disjoint input
shards.  The compiled artifact — flag-encoded flat STT, final mask,
match-multiplicity weights and fold table — is built once and placed in
``multiprocessing.shared_memory`` by :class:`SharedSTT`, so a persistent
worker pool attaches it zero-copy instead of unpickling the tables per
task, just as the paper loads each SPE's local store once and streams
only input past it.

Input moves the way the paper's Figure 5 moves it: a persistent
:class:`StagingRing` of shared buffers is filled by the host (the
PPE/MFC role) while the workers scan the resident buffer, so blocks,
chunk streams and files of any size flow through a fixed footprint.
Fold maps are *composed into* the shared flat tables, so workers gather
directly on staged raw bytes.  Shards are scanned *speculatively* from
guessed entry states and repaired incrementally from per-segment
ledgers — across shard and buffer boundaries — so the counts are
bit-identical to a serial scan (the same mechanism
:meth:`VectorDFAEngine.count_block` uses within one process,
generalized across processes and time).
"""

from .ring import StagingRing
from .shared_stt import (SharedFusedTable, SharedHotCold2Table,
                         SharedHotColdTable, SharedSTT, SharedSTTError)
from .sharded import ShardedScanner, ShardedScanError

__all__ = [
    "SharedSTT",
    "SharedFusedTable",
    "SharedHotColdTable",
    "SharedHotCold2Table",
    "SharedSTTError",
    "ShardedScanner",
    "ShardedScanError",
    "StagingRing",
]
