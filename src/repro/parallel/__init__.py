"""Host-parallel scan layer — the paper's parallel-tile composition
(Figure 6a) mapped onto host cores.

The paper multiplies throughput by running identical DFA tiles over
disjoint input slices; here :class:`ShardedScanner` runs identical
:class:`~repro.core.engine.FlatScanner` workers over disjoint input
shards.  The compiled artifact — flag-encoded flat STT, final mask,
match-multiplicity weights and fold table — is built once and placed in
``multiprocessing.shared_memory`` by :class:`SharedSTT`, so a persistent
worker pool attaches it zero-copy instead of unpickling the tables per
task, just as the paper loads each SPE's local store once and streams
only input past it.

Where the analogy breaks: there is no DMA and no static stream
assignment.  Shards are scanned *speculatively* from guessed entry
states and a cross-shard fixpoint repair on the host makes the counts
exact (the same mechanism :meth:`VectorDFAEngine.count_block` uses
within one process, generalized across processes).
"""

from .shared_stt import SharedSTT, SharedSTTError
from .sharded import ShardedScanner, ShardedScanError

__all__ = [
    "SharedSTT",
    "SharedSTTError",
    "ShardedScanner",
    "ShardedScanError",
]
