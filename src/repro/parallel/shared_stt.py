"""Compiled match artifacts in POSIX shared memory.

A :class:`SharedSTT` is the host-parallel analogue of a loaded SPE local
store: the flag-encoded flat transition table (see
:func:`repro.core.engine.build_flat_table`), the final-state mask, the
per-state match-multiplicity weights and the byte→symbol fold table, all
living in one ``multiprocessing.shared_memory`` segment.  The expensive
work — dictionary compile, DFA densification, flat encoding — happens
once in the parent; workers *attach* in microseconds and scan through
numpy views that alias the segment, so no table bytes are ever pickled
or copied per task.

When a fold map is given it is *composed into* the flat table: rows are
widened to one column per raw byte value (stride 512), so workers gather
directly on unfolded input and never materialize a folded copy of their
shard.  The 2 KB/state cost lands in the one shared segment, not in
every worker.

These four classes are now thin compatibility shims over the generic
:class:`repro.core.scan.bundle.SharedArrayBundle` — one manifest-driven
pack/attach/unlink implementation instead of four hand-rolled copies.
New code should export bundles through a kernel's ``shared_export()``
and attach with :func:`repro.core.scan.bundle.scanner_from_bundle`.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..dfa.alphabet import FoldMap
from ..dfa.automaton import DFA
from ..core.scan.bundle import SharedArrayBundle, bundle_from_table
from ..core.engine import (FlatScanner, FusedScanner, FusedTable,
                           HotCold2Scanner, HotCold2Table,
                           HotColdFusedScanner, HotColdFusedTable,
                           build_flat_table, build_weight_table)

__all__ = ["SharedSTT", "SharedFusedTable", "SharedHotColdTable",
           "SharedHotCold2Table", "SharedSTTError"]


class SharedSTTError(Exception):
    """Raised for malformed or mismatched shared artifacts."""


class _SharedShim:
    """Common lifetime plumbing: every shim wraps one bundle."""

    _bundle: SharedArrayBundle

    @classmethod
    def attach(cls, meta: Dict):
        """Attach to an existing artifact from its metadata (worker
        side).  Zero-copy: the returned object's arrays are views into
        the creator's segment.  The attacher never unlinks."""
        self = cls.__new__(cls)
        self._bundle = SharedArrayBundle.attach(meta)
        self._map_views()
        return self

    def _map_views(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def meta(self) -> Dict:
        """Picklable attachment recipe for workers."""
        return self._bundle.meta()

    @property
    def size_bytes(self) -> int:
        return self._bundle.size_bytes

    def close(self) -> None:
        """Release this process's mapping; unlink too if we created it."""
        bundle = getattr(self, "_bundle", None)
        if bundle is None:
            return
        self._drop_views()
        bundle.close()

    def _drop_views(self) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass


class SharedSTT(_SharedShim):
    """A DFA's scan artifact placed in (or attached from) shared memory.

    Parameters
    ----------
    dfa:
        Compiled automaton; flattened with the final flag in pointer
        bit 0 exactly as the single-process engine uses it.
    fold:
        Optional byte→symbol reduction, *composed into* the flat table:
        the stored rows are indexed by raw byte (stride 512) and workers
        scan unfolded traffic directly.  The 256-byte fold table itself
        is kept in the segment for introspection.
    tables:
        Optional pre-built ``(flat, weights)`` pair — e.g. from
        :meth:`repro.core.compiled.CompiledDictionary.tables` — copied
        into the segment instead of re-encoding the DFA.  Must match the
        layout this class would build for ``(dfa, fold)``.
    """

    def __init__(self, dfa: DFA, fold: Optional[FoldMap] = None,
                 tables: Optional[tuple] = None) -> None:
        if fold is not None:
            fold_table = np.ascontiguousarray(fold.table, dtype=np.uint8)
            if fold_table.size != 256:
                raise SharedSTTError("fold table must map all 256 bytes")
            if fold.width != dfa.alphabet_size:
                raise SharedSTTError(
                    f"fold width {fold.width} != DFA alphabet "
                    f"{dfa.alphabet_size}")
            symbol_width = 256
        else:
            fold_table = None
            symbol_width = dfa.alphabet_size
        if tables is not None:
            flat, weights = tables
            flat = np.ascontiguousarray(flat, dtype=np.int32)
            weights = np.ascontiguousarray(weights, dtype=np.int32)
            if flat.size != dfa.num_states * 2 * symbol_width:
                raise SharedSTTError(
                    f"pre-built flat table has {flat.size} cells, expected "
                    f"{dfa.num_states * 2 * symbol_width} for "
                    f"{dfa.num_states} states × {symbol_width} symbols")
            if weights.size != dfa.num_states * symbol_width + 1:
                raise SharedSTTError(
                    f"pre-built weight table has {weights.size} cells, "
                    f"expected {dfa.num_states * symbol_width + 1}")
        else:
            flat, _stride = build_flat_table(dfa.transitions, dfa.final_mask,
                                             fold_table=fold_table)
            weights = build_weight_table(dfa, symbol_width)
        final = np.ascontiguousarray(dfa.final_mask, dtype=np.uint8)

        arrays = [("flat", flat), ("weights", weights), ("final", final)]
        if fold_table is not None:
            arrays.append(("fold_table", fold_table))
        self._bundle = SharedArrayBundle("flat", arrays, {
            "num_states": dfa.num_states,
            "alphabet_size": dfa.alphabet_size,
            "symbol_width": symbol_width,
            "start": dfa.start,
        })
        self._map_views()

    def _map_views(self) -> None:
        b = self._bundle
        self.num_states = b.scalar("num_states")
        self.alphabet_size = b.scalar("alphabet_size")
        self.symbol_width = b.scalar("symbol_width")
        self.start = b.scalar("start")
        self.flat = b["flat"]
        self.weights = b["weights"]
        self.final = b["final"]
        self.fold_table = b.get("fold_table")

    def _drop_views(self) -> None:
        self.flat = self.weights = self.final = self.fold_table = None

    def scanner(self) -> FlatScanner:
        """A :class:`FlatScanner` running directly on the shared table."""
        return FlatScanner(self.flat, self.symbol_width, self.start,
                           self.num_states)

    @property
    def input_bound(self) -> Optional[int]:
        """Exclusive upper bound on scannable input byte values, or
        ``None`` when every byte is scannable (fold composed into the
        table, or a full-byte alphabet)."""
        if self.symbol_width == 256:
            return None
        return self.alphabet_size

    def __repr__(self) -> str:
        return (f"SharedSTT(states={self.num_states}, "
                f"alphabet={self.alphabet_size}, "
                f"bytes={self.size_bytes if self._bundle._shm else 0}, "
                f"owner={self._bundle._owner})")


class SharedFusedTable(_SharedShim):
    """A fused multi-DFA stacked table (see
    :func:`repro.core.engine.fuse_tables`) in one shared segment.

    The multi-slice analogue of :class:`SharedSTT`: the stacked flat
    table, the stacked weight table and the per-DFA base/start/size
    vectors live in a single ``shared_memory`` block, so a pool worker
    attaches *one* segment and scans every dictionary slice in one pass
    — instead of attaching D segments and making D passes.
    """

    def __init__(self, table: FusedTable) -> None:
        self._bundle = bundle_from_table(table)
        self._map_views()

    def _map_views(self) -> None:
        self.num_dfas = self._bundle.scalar("num_dfas")
        self.symbol_width = self._bundle.scalar("symbol_width")
        self.table = self._bundle.table()

    def _drop_views(self) -> None:
        self.table = None

    def scanner(self) -> FusedScanner:
        """A :class:`FusedScanner` running directly on the shared table."""
        return FusedScanner(self.table)

    @property
    def input_bound(self) -> Optional[int]:
        if self.symbol_width == 256:
            return None
        return self.symbol_width

    def __repr__(self) -> str:
        return (f"SharedFusedTable(dfas={self.num_dfas}, "
                f"bytes={self.size_bytes if self._bundle._shm else 0}, "
                f"owner={self._bundle._owner})")


class SharedHotColdTable(_SharedShim):
    """A hot/cold union table (see
    :func:`repro.core.engine.build_hot_cold_table`) in one shared
    segment.

    The cache-resident analogue of :class:`SharedFusedTable`: the hot
    table + parking zone, the union weight layout, the compressed cold
    store's three flat arrays, the fold table and the renumbering
    vectors all live in a single ``shared_memory`` block.  Workers
    attach one segment whose *hot* part is the only thing their inner
    loops touch — the whole-dictionary totals view only (per-slice
    layouts stay with the creator; pooled scans count totals).
    """

    def __init__(self, table: HotColdFusedTable) -> None:
        if np.asarray(table.fold_table).size != 256:
            raise SharedSTTError("fold table must map all 256 bytes")
        self._bundle = bundle_from_table(table)
        self._map_views()

    def _map_views(self) -> None:
        self.symbol_width = self._bundle.scalar("symbol_width")
        self.table = self._bundle.table()

    def _drop_views(self) -> None:
        self.table = None

    def scanner(self) -> HotColdFusedScanner:
        """A :class:`HotColdFusedScanner` on the shared table (union
        whole-dictionary totals view)."""
        return HotColdFusedScanner(self.table)

    @property
    def input_bound(self) -> Optional[int]:
        """Scans read raw bytes — the fold is part of the table."""
        return None

    def __repr__(self) -> str:
        m = self._bundle._meta
        return (f"SharedHotColdTable(states={m['num_states']}, "
                f"hot={m['num_hot']}, "
                f"bytes={self.size_bytes if self._bundle._shm else 0}, "
                f"owner={self._bundle._owner})")


class SharedHotCold2Table(_SharedShim):
    """A pair-symbol two-byte-stride table (see
    :func:`repro.core.engine.build_hot_cold2_table`) plus its base
    hot/cold union table in one shared segment.

    The sharded pool's fastest whole-dictionary mode: workers attach a
    single block carrying the rank-space pair rows, the aux flag and
    multiplicity tables, the pair fold, the rank-space single-step
    table and the entire base hot/cold layout (hot rows, compressed
    cold store, renumbering vectors), then scan two input bytes per
    gather.  Whole-dictionary totals view only, like
    :class:`SharedHotColdTable`.
    """

    def __init__(self, table: HotCold2Table) -> None:
        if np.asarray(table.base.fold_table).size != 256:
            raise SharedSTTError("fold table must map all 256 bytes")
        self._bundle = bundle_from_table(table)
        self._map_views()

    def _map_views(self) -> None:
        self.symbol_width = self._bundle.scalar("symbol_width")
        self.table = self._bundle.table()

    def _drop_views(self) -> None:
        self.table = None

    def scanner(self) -> HotCold2Scanner:
        """A :class:`HotCold2Scanner` on the shared table (union
        whole-dictionary totals view)."""
        return HotCold2Scanner(self.table)

    @property
    def input_bound(self) -> Optional[int]:
        """Scans read raw bytes — the fold is part of the table."""
        return None

    def __repr__(self) -> str:
        m = self._bundle._meta
        w2 = m["symbol_width"] ** 2
        n_hot2 = next(spec[3] for spec in m["arrays"]
                      if spec[0] == "hot2_flat")
        hot2 = (n_hot2 - 1) // w2
        return (f"SharedHotCold2Table(states={m['num_states']},"
                f" hot2={hot2}, "
                f"bytes={self.size_bytes if self._bundle._shm else 0}, "
                f"owner={self._bundle._owner})")
