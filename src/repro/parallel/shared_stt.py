"""Compiled match artifacts in POSIX shared memory.

A :class:`SharedSTT` is the host-parallel analogue of a loaded SPE local
store: the flag-encoded flat transition table (see
:func:`repro.core.engine.build_flat_table`), the final-state mask, the
per-state match-multiplicity weights and the byte→symbol fold table, all
living in one ``multiprocessing.shared_memory`` segment.  The expensive
work — dictionary compile, DFA densification, flat encoding — happens
once in the parent; workers *attach* in microseconds and scan through
numpy views that alias the segment, so no table bytes are ever pickled
or copied per task.

When a fold map is given it is *composed into* the flat table: rows are
widened to one column per raw byte value (stride 512), so workers gather
directly on unfolded input and never materialize a folded copy of their
shard.  The 2 KB/state cost lands in the one shared segment, not in
every worker.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np
from multiprocessing import shared_memory

from ..dfa.alphabet import FoldMap
from ..dfa.automaton import DFA
from ..core.compressed import ColdRowStore
from ..core.engine import (FlatScanner, FusedScanner, FusedTable,
                           HotCold2Scanner, HotCold2Table,
                           HotColdFusedScanner, HotColdFusedTable,
                           build_flat_table, build_weight_table)

__all__ = ["SharedSTT", "SharedFusedTable", "SharedHotColdTable",
           "SharedHotCold2Table", "SharedSTTError"]


class SharedSTTError(Exception):
    """Raised for malformed or mismatched shared artifacts."""


def _align(offset: int, alignment: int = 8) -> int:
    return (offset + alignment - 1) & ~(alignment - 1)


class SharedSTT:
    """A DFA's scan artifact placed in (or attached from) shared memory.

    Parameters
    ----------
    dfa:
        Compiled automaton; flattened with the final flag in pointer
        bit 0 exactly as the single-process engine uses it.
    fold:
        Optional byte→symbol reduction, *composed into* the flat table:
        the stored rows are indexed by raw byte (stride 512) and workers
        scan unfolded traffic directly.  The 256-byte fold table itself
        is kept in the segment for introspection.
    tables:
        Optional pre-built ``(flat, weights)`` pair — e.g. from
        :meth:`repro.core.compiled.CompiledDictionary.tables` — copied
        into the segment instead of re-encoding the DFA.  Must match the
        layout this class would build for ``(dfa, fold)``.
    """

    def __init__(self, dfa: DFA, fold: Optional[FoldMap] = None,
                 tables: Optional[tuple] = None) -> None:
        if fold is not None:
            fold_table = np.ascontiguousarray(fold.table, dtype=np.uint8)
            if fold_table.size != 256:
                raise SharedSTTError("fold table must map all 256 bytes")
            if fold.width != dfa.alphabet_size:
                raise SharedSTTError(
                    f"fold width {fold.width} != DFA alphabet "
                    f"{dfa.alphabet_size}")
            symbol_width = 256
        else:
            fold_table = None
            symbol_width = dfa.alphabet_size
        if tables is not None:
            flat, weights = tables
            flat = np.ascontiguousarray(flat, dtype=np.int32)
            weights = np.ascontiguousarray(weights, dtype=np.int32)
            if flat.size != dfa.num_states * 2 * symbol_width:
                raise SharedSTTError(
                    f"pre-built flat table has {flat.size} cells, expected "
                    f"{dfa.num_states * 2 * symbol_width} for "
                    f"{dfa.num_states} states × {symbol_width} symbols")
            if weights.size != dfa.num_states * symbol_width + 1:
                raise SharedSTTError(
                    f"pre-built weight table has {weights.size} cells, "
                    f"expected {dfa.num_states * symbol_width + 1}")
        else:
            flat, _stride = build_flat_table(dfa.transitions, dfa.final_mask,
                                             fold_table=fold_table)
            weights = build_weight_table(dfa, symbol_width)
        final = np.ascontiguousarray(dfa.final_mask, dtype=np.uint8)

        off_flat = 0
        off_weights = _align(off_flat + flat.nbytes)
        off_final = _align(off_weights + weights.nbytes)
        off_fold = _align(off_final + final.nbytes)
        size = off_fold + (256 if fold_table is not None else 0)

        self._shm = shared_memory.SharedMemory(create=True, size=size)
        self._owner = True
        self._meta: Dict = {
            "name": self._shm.name,
            "num_states": dfa.num_states,
            "alphabet_size": dfa.alphabet_size,
            "symbol_width": symbol_width,
            "start": dfa.start,
            "off_flat": off_flat,
            "flat_cells": flat.size,
            "off_weights": off_weights,
            "weight_cells": weights.size,
            "off_final": off_final,
            "off_fold": off_fold if fold_table is not None else None,
        }
        self._map_views()
        self.flat[:] = flat
        self.weights[:] = weights
        self.final[:] = final
        if fold_table is not None:
            self.fold_table[:] = fold_table

    @classmethod
    def attach(cls, meta: Dict) -> "SharedSTT":
        """Attach to an existing artifact from its metadata (worker side).

        Zero-copy: the returned object's arrays are views into the
        creator's segment.  The attacher never unlinks.
        """
        self = cls.__new__(cls)
        # No resource-tracker unregister here: pool workers share the
        # creator's (forked) tracker, whose registration set dedupes the
        # attach-side registration; the creator's unlink clears it once.
        self._shm = shared_memory.SharedMemory(name=meta["name"])
        self._owner = False
        self._meta = dict(meta)
        self._map_views()
        return self

    def _map_views(self) -> None:
        m = self._meta
        buf = self._shm.buf
        self.num_states = m["num_states"]
        self.alphabet_size = m["alphabet_size"]
        self.symbol_width = m["symbol_width"]
        self.start = m["start"]
        self.flat = np.frombuffer(buf, dtype=np.int32,
                                  count=m["flat_cells"],
                                  offset=m["off_flat"])
        self.weights = np.frombuffer(buf, dtype=np.int32,
                                     count=m["weight_cells"],
                                     offset=m["off_weights"])
        self.final = np.frombuffer(buf, dtype=np.uint8,
                                   count=m["num_states"],
                                   offset=m["off_final"])
        if m["off_fold"] is not None:
            self.fold_table = np.frombuffer(buf, dtype=np.uint8, count=256,
                                            offset=m["off_fold"])
        else:
            self.fold_table = None

    # -- use ----------------------------------------------------------------------

    def meta(self) -> Dict:
        """Picklable attachment recipe for workers."""
        return dict(self._meta)

    def scanner(self) -> FlatScanner:
        """A :class:`FlatScanner` running directly on the shared table."""
        return FlatScanner(self.flat, self.symbol_width, self.start,
                           self.num_states)

    @property
    def input_bound(self) -> Optional[int]:
        """Exclusive upper bound on scannable input byte values, or
        ``None`` when every byte is scannable (fold composed into the
        table, or a full-byte alphabet)."""
        if self.symbol_width == 256:
            return None
        return self.alphabet_size

    @property
    def size_bytes(self) -> int:
        return self._shm.size

    # -- lifetime -----------------------------------------------------------------

    def _drop_views(self) -> None:
        self.flat = self.weights = self.final = self.fold_table = None

    def close(self) -> None:
        """Release this process's mapping; unlink too if we created it."""
        if self._shm is None:
            return
        self._drop_views()
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass
        self._shm = None

    def __enter__(self) -> "SharedSTT":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (f"SharedSTT(states={self.num_states}, "
                f"alphabet={self.alphabet_size}, "
                f"bytes={self._shm.size if self._shm else 0}, "
                f"owner={self._owner})")


class SharedFusedTable:
    """A fused multi-DFA stacked table (see
    :func:`repro.core.engine.fuse_tables`) in one shared segment.

    The multi-slice analogue of :class:`SharedSTT`: the stacked flat
    table, the stacked weight table and the per-DFA base/start/size
    vectors live in a single ``shared_memory`` block, so a pool worker
    attaches *one* segment and scans every dictionary slice in one pass
    — instead of attaching D segments and making D passes.
    """

    def __init__(self, table: FusedTable) -> None:
        flat = np.ascontiguousarray(table.flat, dtype=np.int32)
        weights = np.ascontiguousarray(table.weights, dtype=np.int32)
        cell_base = np.ascontiguousarray(table.cell_base, dtype=np.int64)
        starts = np.ascontiguousarray(table.starts, dtype=np.int64)
        num_states = np.ascontiguousarray(table.num_states,
                                          dtype=np.int64)
        off_flat = 0
        off_weights = _align(off_flat + flat.nbytes)
        off_base = _align(off_weights + weights.nbytes)
        off_starts = _align(off_base + cell_base.nbytes)
        off_nstates = _align(off_starts + starts.nbytes)
        size = off_nstates + num_states.nbytes

        self._shm = shared_memory.SharedMemory(create=True, size=size)
        self._owner = True
        self._meta: Dict = {
            "name": self._shm.name,
            "num_dfas": int(len(cell_base)),
            "symbol_width": int(table.symbol_width),
            "off_flat": off_flat,
            "flat_cells": int(flat.size),
            "off_weights": off_weights,
            "weight_cells": int(weights.size),
            "off_base": off_base,
            "off_starts": off_starts,
            "off_nstates": off_nstates,
        }
        self._map_views()
        self.table.flat[:] = flat
        self.table.weights[:] = weights
        self.table.cell_base[:] = cell_base
        self.table.starts[:] = starts
        self.table.num_states[:] = num_states

    @classmethod
    def attach(cls, meta: Dict) -> "SharedFusedTable":
        """Attach to an existing fused artifact (worker side, zero-copy;
        the attacher never unlinks)."""
        self = cls.__new__(cls)
        self._shm = shared_memory.SharedMemory(name=meta["name"])
        self._owner = False
        self._meta = dict(meta)
        self._map_views()
        return self

    def _map_views(self) -> None:
        m = self._meta
        buf = self._shm.buf
        ndfa = m["num_dfas"]
        self.num_dfas = ndfa
        self.symbol_width = m["symbol_width"]
        self.table = FusedTable(
            flat=np.frombuffer(buf, dtype=np.int32,
                               count=m["flat_cells"],
                               offset=m["off_flat"]),
            weights=np.frombuffer(buf, dtype=np.int32,
                                  count=m["weight_cells"],
                                  offset=m["off_weights"]),
            cell_base=np.frombuffer(buf, dtype=np.int64, count=ndfa,
                                    offset=m["off_base"]),
            starts=np.frombuffer(buf, dtype=np.int64, count=ndfa,
                                 offset=m["off_starts"]),
            num_states=np.frombuffer(buf, dtype=np.int64, count=ndfa,
                                     offset=m["off_nstates"]),
            symbol_width=m["symbol_width"])

    # -- use ----------------------------------------------------------------------

    def meta(self) -> Dict:
        """Picklable attachment recipe for workers."""
        return dict(self._meta)

    def scanner(self) -> FusedScanner:
        """A :class:`FusedScanner` running directly on the shared table."""
        return FusedScanner(self.table)

    @property
    def input_bound(self) -> Optional[int]:
        if self.symbol_width == 256:
            return None
        return self.symbol_width

    @property
    def size_bytes(self) -> int:
        return self._shm.size

    # -- lifetime -----------------------------------------------------------------

    def close(self) -> None:
        """Release this process's mapping; unlink too if we created it."""
        if self._shm is None:
            return
        self.table = None
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass
        self._shm = None

    def __enter__(self) -> "SharedFusedTable":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (f"SharedFusedTable(dfas={self.num_dfas}, "
                f"bytes={self._shm.size if self._shm else 0}, "
                f"owner={self._owner})")


class SharedHotColdTable:
    """A hot/cold union table (see
    :func:`repro.core.engine.build_hot_cold_table`) in one shared
    segment.

    The cache-resident analogue of :class:`SharedFusedTable`: the hot
    table + parking zone, the union weight layout, the compressed cold
    store's three flat arrays, the fold table and the renumbering
    vectors all live in a single ``shared_memory`` block.  Workers
    attach one segment whose *hot* part is the only thing their inner
    loops touch — the whole-dictionary totals view only (per-slice
    layouts stay with the creator; pooled scans count totals).
    """

    def __init__(self, table: HotColdFusedTable) -> None:
        hot_flat = np.ascontiguousarray(table.hot_flat, dtype=np.int32)
        weights = np.ascontiguousarray(table.weights, dtype=np.int32)
        keys = np.ascontiguousarray(table.cold.keys, dtype=np.int64)
        vals = np.ascontiguousarray(table.cold.vals, dtype=np.int32)
        default_row = np.ascontiguousarray(table.cold.default_row,
                                           dtype=np.int32)
        fold_table = np.ascontiguousarray(table.fold_table,
                                          dtype=np.uint8)
        if fold_table.size != 256:
            raise SharedSTTError("fold table must map all 256 bytes")
        hot_states = np.ascontiguousarray(table.hot_states,
                                          dtype=np.int64)
        cold_states = np.ascontiguousarray(table.cold_states,
                                           dtype=np.int64)
        entry_cells = np.ascontiguousarray(table.entry_cells,
                                           dtype=np.int32)

        off_hot = 0
        off_weights = _align(off_hot + hot_flat.nbytes)
        off_keys = _align(off_weights + weights.nbytes)
        off_vals = _align(off_keys + keys.nbytes)
        off_default = _align(off_vals + vals.nbytes)
        off_fold = _align(off_default + default_row.nbytes)
        off_hs = _align(off_fold + fold_table.nbytes)
        off_cs = _align(off_hs + hot_states.nbytes)
        off_entry = _align(off_cs + cold_states.nbytes)
        size = off_entry + entry_cells.nbytes

        self._shm = shared_memory.SharedMemory(create=True, size=size)
        self._owner = True
        self._meta: Dict = {
            "name": self._shm.name,
            "num_hot": int(table.num_hot),
            "num_cold": int(table.num_cold),
            "num_states": int(table.num_states),
            "symbol_width": int(table.symbol_width),
            "start": int(table.start),
            "off_hot": off_hot,
            "hot_cells": int(hot_flat.size),
            "off_weights": off_weights,
            "weight_cells": int(weights.size),
            "off_keys": off_keys,
            "cold_entries": int(keys.size),
            "off_vals": off_vals,
            "off_default": off_default,
            "off_fold": off_fold,
            "off_hs": off_hs,
            "off_cs": off_cs,
            "off_entry": off_entry,
        }
        # Fill before mapping: the cold store validates its sorted keys
        # at construction, which a still-zeroed segment would fail.
        buf = self._shm.buf
        for arr, off in ((hot_flat, off_hot), (weights, off_weights),
                         (keys, off_keys), (vals, off_vals),
                         (default_row, off_default),
                         (fold_table, off_fold), (hot_states, off_hs),
                         (cold_states, off_cs),
                         (entry_cells, off_entry)):
            np.frombuffer(buf, dtype=arr.dtype, count=arr.size,
                          offset=off)[:] = arr
        self._map_views()

    @classmethod
    def attach(cls, meta: Dict) -> "SharedHotColdTable":
        """Attach to an existing hot/cold artifact (worker side,
        zero-copy; the attacher never unlinks)."""
        self = cls.__new__(cls)
        self._shm = shared_memory.SharedMemory(name=meta["name"])
        self._owner = False
        self._meta = dict(meta)
        self._map_views()
        return self

    def _map_views(self) -> None:
        m = self._meta
        buf = self._shm.buf
        self.symbol_width = m["symbol_width"]
        cold = ColdRowStore(
            np.frombuffer(buf, dtype=np.int64, count=m["cold_entries"],
                          offset=m["off_keys"]),
            np.frombuffer(buf, dtype=np.int32, count=m["cold_entries"],
                          offset=m["off_vals"]),
            np.frombuffer(buf, dtype=np.int32, count=m["symbol_width"],
                          offset=m["off_default"]),
            m["num_cold"])
        self.table = HotColdFusedTable(
            hot_flat=np.frombuffer(buf, dtype=np.int32,
                                   count=m["hot_cells"],
                                   offset=m["off_hot"]),
            weights=np.frombuffer(buf, dtype=np.int32,
                                  count=m["weight_cells"],
                                  offset=m["off_weights"]),
            cold=cold,
            fold_table=np.frombuffer(buf, dtype=np.uint8, count=256,
                                     offset=m["off_fold"]),
            hot_states=np.frombuffer(buf, dtype=np.int64,
                                     count=m["num_hot"],
                                     offset=m["off_hs"]),
            cold_states=np.frombuffer(buf, dtype=np.int64,
                                      count=m["num_cold"],
                                      offset=m["off_cs"]),
            entry_cells=np.frombuffer(buf, dtype=np.int32,
                                      count=m["num_states"],
                                      offset=m["off_entry"]),
            start=m["start"],
            num_states=m["num_states"],
            symbol_width=m["symbol_width"])

    # -- use ----------------------------------------------------------------------

    def meta(self) -> Dict:
        """Picklable attachment recipe for workers."""
        return dict(self._meta)

    def scanner(self) -> HotColdFusedScanner:
        """A :class:`HotColdFusedScanner` on the shared table (union
        whole-dictionary totals view)."""
        return HotColdFusedScanner(self.table)

    @property
    def input_bound(self) -> Optional[int]:
        """Scans read raw bytes — the fold is part of the table."""
        return None

    @property
    def size_bytes(self) -> int:
        return self._shm.size

    # -- lifetime -----------------------------------------------------------------

    def close(self) -> None:
        """Release this process's mapping; unlink too if we created it."""
        if self._shm is None:
            return
        self.table = None
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass
        self._shm = None

    def __enter__(self) -> "SharedHotColdTable":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (f"SharedHotColdTable(states={self._meta['num_states']}, "
                f"hot={self._meta['num_hot']}, "
                f"bytes={self._shm.size if self._shm else 0}, "
                f"owner={self._owner})")


class SharedHotCold2Table:
    """A pair-symbol two-byte-stride table (see
    :func:`repro.core.engine.build_hot_cold2_table`) plus its base
    hot/cold union table in one shared segment.

    The sharded pool's fastest whole-dictionary mode: workers attach a
    single block carrying the rank-space pair rows, the aux flag and
    multiplicity tables, the pair fold, the rank-space single-step
    table and the entire base hot/cold layout (hot rows, compressed
    cold store, renumbering vectors), then scan two input bytes per
    gather.  Whole-dictionary totals view only, like
    :class:`SharedHotColdTable`.
    """

    #: ``(array name, dtype)`` in segment order; ``wflat`` is appended
    #: separately because its dtype adapts to the multiplicity range.
    _FIXED = (("hot_flat", np.int32), ("weights", np.int32),
              ("keys", np.int64), ("vals", np.int32),
              ("default_row", np.int32), ("fold_table", np.uint8),
              ("hot_states", np.int64), ("cold_states", np.int64),
              ("entry_cells", np.int32), ("hot2_flat", np.int16),
              ("fflat", np.uint8), ("foldpair", np.uint16),
              ("utr", np.int16), ("order", np.int64),
              ("rank_of", np.int64), ("wstate", np.int32),
              ("fstate", np.int32))

    def __init__(self, table: HotCold2Table) -> None:
        b = table.base
        src = {"hot_flat": b.hot_flat, "weights": b.weights,
               "keys": b.cold.keys, "vals": b.cold.vals,
               "default_row": b.cold.default_row,
               "fold_table": b.fold_table, "hot_states": b.hot_states,
               "cold_states": b.cold_states,
               "entry_cells": b.entry_cells,
               "hot2_flat": table.hot2_flat, "fflat": table.fflat,
               "foldpair": table.foldpair, "utr": table.utr,
               "order": table.order, "rank_of": table.rank_of,
               "wstate": table.wstate, "fstate": table.fstate}
        arrays = [(name, np.ascontiguousarray(src[name], dtype=dt))
                  for name, dt in self._FIXED]
        arrays.append(("wflat", np.ascontiguousarray(table.wflat)))
        if src["fold_table"].size != 256:
            raise SharedSTTError("fold table must map all 256 bytes")
        meta: Dict = {
            "num_hot": int(b.num_hot),
            "num_cold": int(b.num_cold),
            "num_states": int(b.num_states),
            "symbol_width": int(b.symbol_width),
            "start": int(b.start),
            "wflat_dtype": arrays[-1][1].dtype.str,
            "pair_budget_bytes": int(table.pair_budget_bytes),
            "hot2_mass": (None if table.hot2_mass is None
                          else float(table.hot2_mass)),
        }
        offset = 0
        for name, arr in arrays:
            offset = _align(offset)
            meta[f"off_{name}"] = offset
            meta[f"n_{name}"] = int(arr.size)
            offset += arr.nbytes
        self._shm = shared_memory.SharedMemory(create=True,
                                               size=max(offset, 1))
        self._owner = True
        meta["name"] = self._shm.name
        self._meta = meta
        # Fill before mapping: the cold store validates its sorted keys
        # at construction, which a still-zeroed segment would fail.
        buf = self._shm.buf
        for name, arr in arrays:
            np.frombuffer(buf, dtype=arr.dtype, count=arr.size,
                          offset=meta[f"off_{name}"])[:] = arr
        self._map_views()

    @classmethod
    def attach(cls, meta: Dict) -> "SharedHotCold2Table":
        """Attach to an existing pair-table artifact (worker side,
        zero-copy; the attacher never unlinks)."""
        self = cls.__new__(cls)
        self._shm = shared_memory.SharedMemory(name=meta["name"])
        self._owner = False
        self._meta = dict(meta)
        self._map_views()
        return self

    def _map_views(self) -> None:
        m = self._meta
        buf = self._shm.buf

        def view(name: str, dtype) -> np.ndarray:
            return np.frombuffer(buf, dtype=dtype,
                                 count=m[f"n_{name}"],
                                 offset=m[f"off_{name}"])

        self.symbol_width = m["symbol_width"]
        cold = ColdRowStore(view("keys", np.int64),
                            view("vals", np.int32),
                            view("default_row", np.int32),
                            m["num_cold"])
        base = HotColdFusedTable(
            hot_flat=view("hot_flat", np.int32),
            weights=view("weights", np.int32),
            cold=cold,
            fold_table=view("fold_table", np.uint8),
            hot_states=view("hot_states", np.int64),
            cold_states=view("cold_states", np.int64),
            entry_cells=view("entry_cells", np.int32),
            start=m["start"],
            num_states=m["num_states"],
            symbol_width=m["symbol_width"])
        self.table = HotCold2Table(
            base=base,
            hot2_flat=view("hot2_flat", np.int16),
            wflat=view("wflat", np.dtype(m["wflat_dtype"])),
            fflat=view("fflat", np.uint8),
            foldpair=view("foldpair", np.uint16),
            utr=view("utr", np.int16),
            order=view("order", np.int64),
            rank_of=view("rank_of", np.int64),
            wstate=view("wstate", np.int32),
            fstate=view("fstate", np.int32),
            pair_budget_bytes=m["pair_budget_bytes"],
            hot2_mass=m["hot2_mass"])

    # -- use ----------------------------------------------------------------------

    def meta(self) -> Dict:
        """Picklable attachment recipe for workers."""
        return dict(self._meta)

    def scanner(self) -> HotCold2Scanner:
        """A :class:`HotCold2Scanner` on the shared table (union
        whole-dictionary totals view)."""
        return HotCold2Scanner(self.table)

    @property
    def input_bound(self) -> Optional[int]:
        """Scans read raw bytes — the fold is part of the table."""
        return None

    @property
    def size_bytes(self) -> int:
        return self._shm.size

    # -- lifetime -----------------------------------------------------------------

    def close(self) -> None:
        """Release this process's mapping; unlink too if we created it."""
        if self._shm is None:
            return
        self.table = None
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass
        self._shm = None

    def __enter__(self) -> "SharedHotCold2Table":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        w2 = self._meta["symbol_width"] ** 2
        hot2 = (self._meta["n_hot2_flat"] - 1) // w2
        return (f"SharedHotCold2Table(states={self._meta['num_states']},"
                f" hot2={hot2}, "
                f"bytes={self._shm.size if self._shm else 0}, "
                f"owner={self._owner})")
