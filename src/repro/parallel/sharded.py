"""Sharded, speculative, exact multicore scanning — pipelined.

:class:`ShardedScanner` is the paper's Figure 6a made host-parallel: one
compiled artifact, many identical scan units, disjoint slices of the
input.  A persistent worker pool attaches the :class:`SharedSTT` once
(zero-copy, the "load the local store once" moment) and, since PR 2, a
persistent :class:`StagingRing` of input buffers (the Figure 5
double-buffering moment): the host fills the idle ring buffer while the
workers scan the resident one, so arbitrarily large inputs — blocks,
chunk iterators, files — stream through a fixed shared-memory footprint
with no per-scan segment create/attach at all.

Exactness is kept by speculation plus repair, at two nested levels.
Every worker scans its shard from a *guessed* entry state (Ko et al.'s
speculative DFA membership idea), and returns a per-segment
:class:`~repro.core.engine.ScanDetail` ledger.  The host chains the true
states across shards and across ring buffers; a wrong guess is repaired
*incrementally* — leading ledger segments are rescanned until the state
trajectory rejoins the recorded one — so a mis-speculated shard costs
about one sub-chunk, not a full rescan.  Counts are bit-identical to a
serial scan by determinism.

Multiple DFAs (e.g. the slices of a partitioned dictionary) ride the
same pool, the same ring and the same staged bytes; their repair chains
are independent but their scan tasks share the worker queue.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from collections import deque
from typing import (Dict, Iterable, IO, List, Optional, Sequence, Tuple,
                    Union)

import numpy as np
from multiprocessing import shared_memory

from ..dfa.alphabet import FoldMap
from ..dfa.automaton import DFA
from ..core.engine import (FusedTable, HotCold2Table,
                           HotColdFusedTable, ScanDetail,
                           StreamResult, count_arr, count_arr_detail,
                           repair_detail)
from ..core.scan.bundle import SharedArrayBundle, scanner_from_bundle
from .ring import StagingRing
from .shared_stt import (SharedFusedTable, SharedHotCold2Table,
                         SharedHotColdTable, SharedSTT)

__all__ = ["ShardedScanner", "ShardedScanError"]

#: Default staging-buffer capacity.  Two of these exist per scanner; the
#: value trades shared-memory footprint against dispatch rounds for huge
#: inputs.
DEFAULT_RING_BYTES = 1 << 24


class ShardedScanError(Exception):
    """Raised for invalid inputs or configurations of the sharded path."""


# -- worker side -------------------------------------------------------------------

_WORKER: Dict = {}


def _bundle_input_bound(bundle: SharedArrayBundle) -> Optional[int]:
    """Exclusive upper bound on scannable input byte values, or
    ``None`` when every byte is scannable (fold composed into the
    table, or a full-byte alphabet)."""
    if bundle.kind in ("hotcold", "hotcold2"):
        return None
    width = bundle.scalar("symbol_width")
    if width == 256:
        return None
    if bundle.kind == "flat":
        return bundle.scalar("alphabet_size")
    return width


def _init_worker(bundle_metas: List[Dict],
                 ring_names: List[str]) -> None:
    """Pool initializer: attach every shared bundle exactly once.

    One manifest-driven path for every artifact layout — each bundle's
    ``kind`` says how its scanner seats into the worker state.  Per-DFA
    ``flat`` bundles become one classic task chain each; a ``fused``
    bundle's scanner is kept whole (its slice views serve the classic
    task shapes while the fused task scans all DFAs at once); a
    ``hotcold``/``hotcold2`` bundle's single union scanner *is* the
    whole dictionary, and every classic single-chain task shape works
    unchanged on top of it (the union scanners are
    :class:`FlatScanner`-compatible).
    """
    bundles = [SharedArrayBundle.attach(m) for m in bundle_metas]
    scanners: List = []
    weights: List = []
    bounds: List = []
    fused = None
    for b in bundles:
        sc = scanner_from_bundle(b)
        if b.kind == "fused":
            fused = sc
            scanners.extend(sc.slice_view(d)
                            for d in range(sc.num_dfas))
            weights.extend([sc.weights] * sc.num_dfas)
            bounds.extend([_bundle_input_bound(b)] * sc.num_dfas)
        elif b.kind == "flat":
            scanners.append(sc)
            weights.append(b["weights"])
            bounds.append(_bundle_input_bound(b))
        else:
            scanners.append(sc)
            weights.append(sc.weights)
            bounds.append(_bundle_input_bound(b))
    _WORKER["artifacts"] = bundles
    _WORKER["fused"] = fused
    _WORKER["scanners"] = scanners
    _WORKER["weights"] = weights
    _WORKER["bounds"] = bounds
    _WORKER["ring"] = [shared_memory.SharedMemory(name=n)
                       for n in ring_names]


def _check_symbols(bound: Optional[int], raw: np.ndarray) -> None:
    if bound is not None and raw.size and int(raw.max()) >= bound:
        raise ShardedScanError(
            "input contains symbols outside the alphabet and the scanner "
            "was built without a fold map")


def _scan_shard(dfa_idx: int, seg_idx: int, lo: int, hi: int,
                entry_state: int, chunks: int,
                weighted: bool) -> ScanDetail:
    """One speculative shard scan over a staged ring buffer.

    Gathers directly on the staged bytes (the fold, if any, is composed
    into the shared table) and returns the per-segment ledger the host's
    incremental repair runs on.
    """
    scanner = _WORKER["scanners"][dfa_idx]
    shm = _WORKER["ring"][seg_idx]
    raw = np.frombuffer(shm.buf, dtype=np.uint8, count=hi - lo, offset=lo)
    try:
        _check_symbols(_WORKER["bounds"][dfa_idx], raw)
        weights = _WORKER["weights"][dfa_idx] if weighted else None
        return count_arr_detail(scanner, raw, chunks, entry_state,
                                weights=weights)
    finally:
        raw = None


def _scan_shard_fused(seg_idx: int, lo: int, hi: int,
                      entry_states: Optional[Tuple[int, ...]],
                      chunks: int, weighted: bool) -> List[ScanDetail]:
    """One speculative shard scan advancing *every* DFA in one pass over
    the staged bytes; returns one ledger per DFA for the host's
    per-chain incremental repair."""
    fused = _WORKER["fused"]
    shm = _WORKER["ring"][seg_idx]
    raw = np.frombuffer(shm.buf, dtype=np.uint8, count=hi - lo, offset=lo)
    try:
        _check_symbols(_WORKER["bounds"][0], raw)
        weights = fused.weights if weighted else None
        return fused.count_arr_detail_per_dfa(raw, chunks,
                                              entry_states=entry_states,
                                              weights=weights)
    finally:
        raw = None


def _scan_streams_shard(dfa_idx: int, shm_name: str, first: int, count: int,
                        length: int, weighted: bool
                        ) -> Tuple[List[int], List[int]]:
    """Lockstep-scan streams ``first .. first+count`` of the staged batch."""
    scanner = _WORKER["scanners"][dfa_idx]
    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        raw = np.frombuffer(shm.buf, dtype=np.uint8, count=count * length,
                            offset=first * length)
        _check_symbols(_WORKER["bounds"][dfa_idx], raw)
        cols = np.ascontiguousarray(raw.reshape(count, length).T)
        ptrs = np.full(count, scanner.pointer(scanner.start),
                       dtype=np.int32)
        counts = np.zeros(count, dtype=np.int64)
        weights = _WORKER["weights"][dfa_idx] if weighted else None
        fin = scanner.scan_cols(cols, ptrs, counts, weights=weights)
        states = scanner.state_of(fin)
        raw = cols = None
        return counts.tolist(), [int(s) for s in states]
    finally:
        shm.close()


# -- producers ---------------------------------------------------------------------


class _ChunkFeed:
    """Packs an iterator of bytes-like chunks into staging buffers.

    Chunk boundaries carry no meaning — a chunk may span two buffers —
    so arbitrary chunkings produce identical counts.
    """

    def __init__(self, chunks: Iterable) -> None:
        self._it = iter(chunks)
        self._pending: Optional[memoryview] = None

    def fill(self, window: memoryview) -> int:
        pos = 0
        cap = len(window)
        while pos < cap:
            if self._pending is None:
                nxt = next(self._it, None)
                if nxt is None:
                    break
                self._pending = memoryview(nxt)
                if self._pending.ndim != 1 or self._pending.itemsize != 1:
                    raise ShardedScanError(
                        "stream chunks must be 1-D bytes-like objects")
                if not len(self._pending):
                    self._pending = None
                    continue
            take = min(cap - pos, len(self._pending))
            window[pos:pos + take] = self._pending[:take]
            pos += take
            self._pending = self._pending[take:] if take < len(
                self._pending) else None
        return pos


class _FileFeed:
    """Stages a binary file with ``readinto`` — no intermediate copies."""

    def __init__(self, fileobj: IO[bytes]) -> None:
        self._f = fileobj

    def fill(self, window: memoryview) -> int:
        pos = 0
        cap = len(window)
        while pos < cap:
            got = self._f.readinto(window[pos:])
            if not got:
                break
            pos += got
        return pos


# -- host side ---------------------------------------------------------------------

class ShardedScanner:
    """Exact multicore scanning of one or more DFAs over streamed input.

    Parameters
    ----------
    dfas:
        One automaton or a sequence (e.g. a partitioned dictionary's
        slices).  All must share one alphabet.
    workers:
        Pool size; defaults to ``os.cpu_count()``.  ``workers=1`` runs
        fully in-process (no pool, no ring, no staging copies) with
        identical semantics.
    fold:
        Optional byte→symbol reduction.  When given, inputs are *raw*
        bytes and the fold is composed into the shared flat table, so
        workers gather on staged bytes directly; without it, inputs must
        be pre-folded symbols.
    chunks:
        Lockstep chunk floor *inside* each worker's shard scan (widened
        automatically on large shards, see ``engine.LANES_TARGET``).
    weighted:
        Count per-state match multiplicities (one per dictionary entry
        recognized, as the event-reporting paths do) instead of one per
        final-state entry (the paper's kernel counting).
    min_shard_bytes:
        Blocks smaller than ``workers × min_shard_bytes`` skip the pool.
    ring_bytes / ring_depth:
        Per-buffer capacity and buffer count of the staging ring.  The
        defaults (two 16 MB buffers) suit bulk scanning; tests shrink
        them to force many buffer boundaries.
    tables:
        Optional per-DFA pre-built ``(flat, weights)`` pairs (one per
        DFA, same order) placed into the shared segments as-is instead
        of re-encoding each DFA — the compiled-artifact fast path.
    fused_table:
        Optional pre-built :class:`~repro.core.engine.FusedTable` (e.g.
        ``compiled.fused_table()``).  When given, *one* stacked-table
        segment replaces the per-DFA segments: pool workers attach it
        once and every shard task advances all DFAs in a single pass
        over the staged bytes (lanes = DFAs × chunks) instead of one
        task per DFA per shard.  ``tables`` is ignored in this mode —
        the per-DFA scanners become slice views into the stacked table.
    hot_cold_table:
        Optional pre-built
        :class:`~repro.core.engine.HotColdFusedTable` (e.g.
        ``compiled.hot_cold_table()``).  When given, ``dfas`` must be
        the single *union* automaton the table encodes: one
        cache-resident shared segment carries the whole dictionary and
        every shard task is one single-chain union scan —
        whole-dictionary totals only (per-slice attribution stays with
        the stacked-table modes).  Mutually exclusive with
        ``fused_table``/``tables``.
    hot_cold2_table:
        Optional pre-built :class:`~repro.core.engine.HotCold2Table`
        (e.g. ``compiled.hot_cold2_table()``): the hot/cold sharing
        mode upgraded to the pair-symbol two-byte-stride scan.  Same
        contract as ``hot_cold_table`` (single union automaton, totals
        only); mutually exclusive with every other table argument.
    """

    def __init__(self, dfas: Union[DFA, Sequence[DFA]],
                 workers: Optional[int] = None,
                 fold: Optional[FoldMap] = None,
                 chunks: int = 256,
                 weighted: bool = False,
                 min_shard_bytes: int = 1 << 16,
                 ring_bytes: int = DEFAULT_RING_BYTES,
                 ring_depth: int = 2,
                 start_method: Optional[str] = None,
                 tables: Optional[Sequence[tuple]] = None,
                 fused_table: Optional[FusedTable] = None,
                 hot_cold_table: Optional[HotColdFusedTable] = None,
                 hot_cold2_table: Optional[HotCold2Table] = None
                 ) -> None:
        if isinstance(dfas, DFA):
            dfas = [dfas]
        if not dfas:
            raise ShardedScanError("at least one DFA required")
        if tables is not None and len(tables) != len(dfas):
            raise ShardedScanError(
                f"{len(tables)} table pairs for {len(dfas)} DFAs")
        if fused_table is not None and fused_table.num_dfas != len(dfas):
            raise ShardedScanError(
                f"fused table stacks {fused_table.num_dfas} DFAs, "
                f"got {len(dfas)}")
        if hot_cold2_table is not None:
            if hot_cold_table is not None:
                raise ShardedScanError(
                    "hot_cold2_table is mutually exclusive with "
                    "hot_cold_table")
            hot_cold_table = hot_cold2_table.base
        if hot_cold_table is not None:
            if fused_table is not None or tables is not None:
                raise ShardedScanError(
                    "hot_cold(2)_table is mutually exclusive with "
                    "fused_table/tables")
            if len(dfas) != 1 or \
                    dfas[0].num_states != hot_cold_table.num_states:
                raise ShardedScanError(
                    "hot_cold(2)_table needs exactly the union "
                    "automaton it encodes")
        alphabet = dfas[0].alphabet_size
        if any(d.alphabet_size != alphabet for d in dfas):
            raise ShardedScanError("DFAs must share one alphabet")
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ShardedScanError("workers must be >= 1")
        if chunks < 1:
            raise ShardedScanError("chunks must be >= 1")
        if ring_bytes < 1:
            raise ShardedScanError("ring_bytes must be >= 1")
        self.workers = int(workers)
        self.fold = fold
        self.chunks = int(chunks)
        self.weighted = bool(weighted)
        self.min_shard_bytes = int(min_shard_bytes)
        self.alphabet_size = alphabet
        #: Bookkeeping of the most recent scan (bytes staged, ring
        #: buffers cycled, tasks dispatched, shards repaired) — used by
        #: the benchmarks and the streaming entry points.
        self.last_scan_stats: Dict[str, int] = {}
        self._num_dfas = len(dfas)
        self._stts: List[SharedSTT] = []
        self._fused_stt: Optional[SharedFusedTable] = None
        self._hc_stt: Optional[SharedHotColdTable] = None
        self._hc2_stt: Optional[SharedHotCold2Table] = None
        self._fused = None
        self._scanners: List = []
        self._weight_tables: List = []
        self._ring: Optional[StagingRing] = None
        self._pool = None
        self._closed = False
        try:
            if hot_cold2_table is not None:
                self._hc2_stt = SharedHotCold2Table(hot_cold2_table)
                scanner = self._hc2_stt.scanner()
                self._scanners = [scanner]
                self._weight_tables = [scanner.weights]
                bundle_metas = [self._hc2_stt.meta()]
            elif hot_cold_table is not None:
                self._hc_stt = SharedHotColdTable(hot_cold_table)
                scanner = self._hc_stt.scanner()
                self._scanners = [scanner]
                self._weight_tables = [scanner.weights]
                bundle_metas = [self._hc_stt.meta()]
            elif fused_table is not None:
                self._fused_stt = SharedFusedTable(fused_table)
                self._fused = self._fused_stt.scanner()
                self._scanners = [self._fused.slice_view(d)
                                  for d in range(self._num_dfas)]
                self._weight_tables = [self._fused.weights] * \
                    self._num_dfas
                bundle_metas = [self._fused_stt.meta()]
            else:
                self._stts = [
                    SharedSTT(d, fold=fold,
                              tables=tables[i] if tables is not None
                              else None)
                    for i, d in enumerate(dfas)]
                self._scanners = [stt.scanner() for stt in self._stts]
                self._weight_tables = [stt.weights for stt in self._stts]
                bundle_metas = [stt.meta() for stt in self._stts]
            if self.workers > 1:
                self._ring = StagingRing(int(ring_bytes), int(ring_depth))
                ctx = mp.get_context(start_method)
                self._pool = ctx.Pool(
                    self.workers, initializer=_init_worker,
                    initargs=(bundle_metas, self._ring.names))
        except BaseException:
            self.close()
            raise

    @classmethod
    def from_compiled(cls, compiled, workers: Optional[int] = None,
                      fuse: bool = True, hot_cold: bool = False,
                      two_byte: bool = False,
                      **kwargs) -> "ShardedScanner":
        """A scanner over a :class:`~repro.core.compiled.CompiledDictionary`.

        Reuses the artifact's fold-composed flat tables and weight
        tables verbatim (no re-encoding) and counts with the
        dictionary's event semantics (``weighted=True``).  Multi-slice
        dictionaries share one stacked-table segment by default
        (``fuse=False`` restores one segment and one task chain per
        slice).  ``hot_cold=True`` (exact dictionaries only) shares the
        cache-resident hot/cold union table instead: one single-chain
        segment for the whole dictionary, whole-dictionary totals only.
        ``two_byte=True`` upgrades that sharing to the pair-symbol
        two-byte-stride table (implies ``hot_cold``).
        """
        kwargs.setdefault("weighted", True)
        if hot_cold or two_byte:
            if not compiled.supports_hot_cold:
                raise ShardedScanError(
                    "hot/cold sharing needs the union automaton; regex "
                    "dictionaries have none")
            if two_byte:
                kwargs.setdefault("hot_cold2_table",
                                  compiled.hot_cold2_table())
            else:
                kwargs.setdefault("hot_cold_table",
                                  compiled.hot_cold_table())
            return cls([compiled.union_dfa()], workers=workers,
                       fold=compiled.fold, **kwargs)
        if fuse and compiled.num_slices > 1 \
                and "fused_table" not in kwargs:
            kwargs["fused_table"] = compiled.fused_table()
        if kwargs.get("fused_table") is None:
            kwargs.setdefault("tables", compiled.tables())
        return cls(list(compiled.dfas), workers=workers,
                   fold=compiled.fold, **kwargs)

    @property
    def num_dfas(self) -> int:
        return self._num_dfas

    @property
    def fused(self) -> bool:
        """Whether this scanner runs on one stacked multi-DFA table."""
        return self._fused is not None

    # -- block scanning -----------------------------------------------------------

    def count_block(self, block: bytes) -> int:
        """Exact total count over one contiguous input.

        Raw bytes when a fold map was given, pre-folded symbols
        otherwise.  Sums over all DFAs.
        """
        return sum(self.count_per_dfa(block))

    def count_per_dfa(self, block) -> List[int]:
        """Per-DFA exact counts over one contiguous input."""
        self._check_open()
        n = len(block)
        if n == 0:
            self.last_scan_stats = {"bytes": 0, "buffers": 0, "tasks": 0,
                                    "repaired_shards": 0}
            return [0] * self.num_dfas
        if self._pool is None or n < self.workers * self.min_shard_bytes:
            return self._count_local([block])
        return self._pipeline(_ChunkFeed([block]))

    # -- streaming ----------------------------------------------------------------

    def count_stream(self, chunks: Iterable) -> int:
        """Exact total count over a stream of bytes-like chunks.

        The concatenation of the chunks is scanned as one contiguous
        input — chunk boundaries are invisible to the DFAs — without
        ever materializing it: chunks are packed into the staging ring
        (or, pool-less, scanned with a carried DFA state).
        """
        return sum(self.count_stream_per_dfa(chunks))

    def count_stream_per_dfa(self, chunks: Iterable) -> List[int]:
        """Per-DFA exact counts over a stream of bytes-like chunks."""
        self._check_open()
        if self._pool is None:
            return self._count_local(chunks)
        return self._pipeline(_ChunkFeed(chunks))

    def scan_file(self, file: Union[str, os.PathLike, IO[bytes]]) -> int:
        """Exact total count over a file's bytes, streamed through the
        ring (``readinto`` straight into shared memory — the input is
        never materialized in one piece)."""
        self._check_open()
        if hasattr(file, "readinto"):
            return self._scan_fileobj(file)
        with open(file, "rb", buffering=0) as f:
            return self._scan_fileobj(f)

    def _scan_fileobj(self, f: IO[bytes]) -> int:
        if self._pool is None:
            cap = DEFAULT_RING_BYTES
            return sum(self._count_local(
                iter(lambda: f.read(cap), b"")))
        return sum(self._pipeline(_FileFeed(f)))

    # -- in-process path ----------------------------------------------------------

    def _as_symbols(self, chunk) -> np.ndarray:
        """A scannable uint8 view of one input chunk (no fold copies:
        folds are composed into the tables)."""
        arr = np.frombuffer(chunk, dtype=np.uint8)
        if self.fold is None and self.alphabet_size < 256 and arr.size \
                and int(arr.max()) >= self.alphabet_size:
            raise ShardedScanError(
                "input contains symbols outside the alphabet and the "
                "scanner was built without a fold map")
        return arr

    def _count_local(self, chunks: Iterable) -> List[int]:
        """Serial scan with carried DFA states — the workers=1 and
        small-input path, streaming-capable.  With a stacked table every
        DFA advances in one pass per chunk."""
        totals = [0] * self.num_dfas
        carry = [sc.start for sc in self._scanners]
        nbytes = 0
        for chunk in chunks:
            arr = self._as_symbols(chunk)
            if arr.size == 0:
                continue
            nbytes += arr.size
            if self._fused is not None:
                weights = self._fused.weights if self.weighted else None
                counts, states = self._fused.count_arr_per_dfa(
                    arr, self.chunks, entry_states=carry,
                    weights=weights)
                for d in range(self.num_dfas):
                    totals[d] += int(counts[d])
                    carry[d] = int(states[d])
            else:
                for d, scanner in enumerate(self._scanners):
                    weights = self._weight_tables[d] if self.weighted \
                        else None
                    cnt, carry[d] = count_arr(scanner, arr, self.chunks,
                                              carry[d], weights=weights)
                    totals[d] += cnt
        self.last_scan_stats = {"bytes": nbytes, "buffers": 0, "tasks": 0,
                                "repaired_shards": 0}
        return totals

    # -- the pipelined pooled path -------------------------------------------------

    def _pipeline(self, feed) -> List[int]:
        """Double-buffered scan: fill ring buffer ``k+1`` while the pool
        scans buffer ``k``; repair speculative entries incrementally at
        collection time, carrying the true DFA states across buffers."""
        ring = self._ring
        totals = [0] * self.num_dfas
        carry = [sc.start for sc in self._scanners]
        pending: deque = deque()
        stats = {"bytes": 0, "buffers": 0, "tasks": 0,
                 "repaired_shards": 0}
        seg = 0
        while True:
            if len(pending) == ring.depth:
                # Oldest buffer must drain before its slot is refilled.
                self._collect(pending.popleft(), carry, totals, stats)
            n = ring.fill(seg, feed.fill)
            if n == 0:
                break
            jobs, bounds = self._dispatch(seg, n, carry)
            pending.append((seg, bounds, jobs))
            stats["bytes"] += n
            stats["buffers"] += 1
            stats["tasks"] += sum(len(row) for row in jobs)
            seg = (seg + 1) % ring.depth
        while pending:
            self._collect(pending.popleft(), carry, totals, stats)
        self.last_scan_stats = stats
        return totals

    def _dispatch(self, seg: int, n: int, carry: List[int]):
        """One task per worker per buffer (fused: all DFAs per task;
        classic: one task chain per DFA).  Shard 0 is entered from the
        latest *known* carry state (exact if this buffer was dispatched
        after its predecessor drained, speculative when the predecessor
        is still in flight); inner shards guess the start state, as
        convergent security DFAs overwhelmingly reach it."""
        shards = min(self.workers, n)
        bounds = np.linspace(0, n, shards + 1).astype(np.int64)
        if self._fused is not None:
            jobs = [[
                self._pool.apply_async(
                    _scan_shard_fused,
                    (seg, int(bounds[i]), int(bounds[i + 1]),
                     tuple(carry) if i == 0 else None, self.chunks,
                     self.weighted))
                for i in range(shards)
            ]]
            return jobs, bounds
        jobs = []
        for d in range(self.num_dfas):
            start = self._scanners[d].start
            jobs.append([
                self._pool.apply_async(
                    _scan_shard,
                    (d, seg, int(bounds[i]), int(bounds[i + 1]),
                     carry[d] if i == 0 else start, self.chunks,
                     self.weighted))
                for i in range(shards)
            ])
        return jobs, bounds

    def _collect(self, staged, carry: List[int], totals: List[int],
                 stats: Dict[str, int]) -> None:
        """Drain one buffer's tasks; chain true states through its
        shards, repairing wrong speculative entries from the ledgers."""
        seg, bounds, jobs = staged
        # Drain every task before touching any shared-table view: a
        # worker exception propagates with this frame in its traceback,
        # and a bound view would then block the segment unmap in close().
        if self._fused is not None:
            per_shard = [job.get() for job in jobs[0]]
            details = [[shard[d] for shard in per_shard]
                       for d in range(self.num_dfas)]
        else:
            details = [[job.get() for job in row] for row in jobs]
        for d in range(self.num_dfas):
            scanner = self._scanners[d]
            weights = self._weight_tables[d] if self.weighted else None
            state = carry[d]
            for i, detail in enumerate(details[d]):
                if state == detail.entry_state:
                    totals[d] += detail.total
                    state = detail.exit_state
                else:
                    lo, hi = int(bounds[i]), int(bounds[i + 1])
                    arr = self._ring.array(seg, hi - lo, offset=lo)
                    try:
                        cnt, state = repair_detail(
                            scanner, arr, detail, state, self.chunks,
                            weights=weights)
                    finally:
                        arr = None
                    totals[d] += cnt
                    stats["repaired_shards"] += 1
            carry[d] = state

    # -- stream batches -----------------------------------------------------------

    def run_streams(self, streams: Sequence[bytes]) -> StreamResult:
        """Scan equal-length independent streams, sharded by stream index.

        Single-DFA scanners only (per-stream counts for several DFAs
        would be ambiguous); semantics match
        :meth:`VectorDFAEngine.run_streams`.
        """
        self._check_open()
        if self.num_dfas != 1:
            raise ShardedScanError(
                "run_streams needs a single-DFA scanner")
        if not len(streams):
            raise ShardedScanError("at least one stream required")
        length = len(streams[0])
        if any(len(s) != length for s in streams):
            raise ShardedScanError("streams must have equal length")
        n = len(streams)
        scanner = self._scanners[0]
        if length == 0:
            return StreamResult(np.zeros(n, dtype=np.int64),
                                np.full(n, scanner.start, dtype=np.int32))
        if self._pool is None or \
                n * length < self.workers * self.min_shard_bytes or n < 2:
            return self._run_streams_local(streams, length)

        shm = shared_memory.SharedMemory(create=True, size=n * length)
        try:
            for i, s in enumerate(streams):
                shm.buf[i * length:(i + 1) * length] = s
            splits = np.linspace(0, n, min(self.workers, n) + 1) \
                .astype(np.int64)
            jobs = []
            for w in range(len(splits) - 1):
                first, last = int(splits[w]), int(splits[w + 1])
                if last > first:
                    jobs.append((first, self._pool.apply_async(
                        _scan_streams_shard,
                        (0, shm.name, first, last - first, length,
                         self.weighted))))
            counts = np.zeros(n, dtype=np.int64)
            states = np.full(n, scanner.start, dtype=np.int32)
            for first, job in jobs:
                part_counts, part_states = job.get()
                counts[first:first + len(part_counts)] = part_counts
                states[first:first + len(part_states)] = part_states
            return StreamResult(counts, states)
        finally:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:
                pass

    def _run_streams_local(self, streams: Sequence[bytes],
                           length: int) -> StreamResult:
        scanner = self._scanners[0]
        n = len(streams)
        cols = np.empty((length, n), dtype=np.uint8)
        for i, s in enumerate(streams):
            cols[:, i] = self._as_symbols(s)
        ptrs = np.full(n, scanner.pointer(scanner.start), dtype=np.int32)
        counts = np.zeros(n, dtype=np.int64)
        weights = self._weight_tables[0] if self.weighted else None
        fin = scanner.scan_cols(cols, ptrs, counts, weights=weights)
        return StreamResult(counts, scanner.state_of(fin).astype(np.int32))

    # -- lifetime -----------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed or not self._scanners:
            raise ShardedScanError("scanner is closed")

    def close(self) -> None:
        """Shut the pool down gracefully and release every shared
        segment.  Idempotent; segments are unlinked even if the pool
        teardown raises, so nothing can leak."""
        self._closed = True
        pool, self._pool = self._pool, None
        try:
            if pool is not None:
                pool.close()
                pool.join()
        finally:
            # Scanners alias the shared segments; drop them before
            # closing, or the memoryview export blocks the unmap.
            self._scanners = []
            self._weight_tables = []
            self._fused = None
            stts, self._stts = self._stts, []
            for stt in stts:
                stt.close()
            fstt, self._fused_stt = self._fused_stt, None
            if fstt is not None:
                fstt.close()
            hstt, self._hc_stt = self._hc_stt, None
            if hstt is not None:
                hstt.close()
            h2stt, self._hc2_stt = self._hc2_stt, None
            if h2stt is not None:
                h2stt.close()
            ring, self._ring = self._ring, None
            if ring is not None:
                ring.close()

    def __enter__(self) -> "ShardedScanner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (f"ShardedScanner(dfas={self.num_dfas}, "
                f"workers={self.workers}, "
                f"fold={'composed' if self.fold else 'no'}, "
                f"weighted={self.weighted})")
