"""Sharded, speculative, exact multicore scanning.

:class:`ShardedScanner` is the paper's Figure 6a made host-parallel: one
compiled artifact, many identical scan units, disjoint slices of the
input.  A persistent worker pool attaches the :class:`SharedSTT` once
(zero-copy, the "load the local store once" moment); each
:meth:`ShardedScanner.count_block` call stages the input in a shared
segment, hands every worker a shard and a *guessed* entry state, and
repairs wrong guesses with a cross-shard fixpoint on the host — the same
speculation-plus-repair that :meth:`VectorDFAEngine.count_block` runs
over chunks within one process, promoted across processes.  Counts are
exact: the fixpoint terminates (each pass finalizes at least the first
still-wrong shard) and on convergence every shard has been scanned from
its true entry state.

Multiple DFAs (e.g. the slices of a partitioned dictionary) ride the
same pool and the same staged input; their shard fixpoints are repaired
independently but their scan tasks share the worker queue, so series
slices and parallel shards both turn into pool-level parallelism.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
from multiprocessing import shared_memory

from ..dfa.alphabet import FoldMap
from ..dfa.automaton import DFA, DFAError
from ..core.engine import StreamResult, count_arr
from .shared_stt import SharedSTT

__all__ = ["ShardedScanner", "ShardedScanError"]


class ShardedScanError(Exception):
    """Raised for invalid inputs or configurations of the sharded path."""


# -- worker side -------------------------------------------------------------------

_WORKER: Dict = {}


def _init_worker(metas: List[Dict]) -> None:
    """Pool initializer: attach every shared artifact, build scanners."""
    stts = [SharedSTT.attach(m) for m in metas]
    _WORKER["stts"] = stts
    _WORKER["scanners"] = [stt.scanner() for stt in stts]


def _shard_symbols(stt: SharedSTT, shm: shared_memory.SharedMemory,
                   lo: int, hi: int) -> np.ndarray:
    """This shard's folded symbols (a fold copy, or a validated view)."""
    raw = np.frombuffer(shm.buf, dtype=np.uint8, count=hi - lo, offset=lo)
    if stt.fold_table is not None:
        arr = stt.fold_table[raw]
        del raw
        return arr
    if raw.size and int(raw.max()) >= stt.alphabet_size:
        del raw
        raise ShardedScanError(
            "input contains symbols outside the alphabet and the scanner "
            "was built without a fold map")
    return raw


def _scan_shard(dfa_idx: int, shm_name: str, lo: int, hi: int,
                entry_state: int, chunks: int,
                weighted: bool) -> Tuple[int, int]:
    """One speculative shard scan; returns ``(count, exit_state)``."""
    stt = _WORKER["stts"][dfa_idx]
    scanner = _WORKER["scanners"][dfa_idx]
    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        arr = _shard_symbols(stt, shm, lo, hi)
        weights = stt.weights if weighted else None
        result = count_arr(scanner, arr, chunks, entry_state,
                           weights=weights)
        arr = None
        return result
    finally:
        shm.close()


def _scan_streams_shard(dfa_idx: int, shm_name: str, first: int, count: int,
                        length: int, weighted: bool
                        ) -> Tuple[List[int], List[int]]:
    """Lockstep-scan streams ``first .. first+count`` of the staged batch."""
    stt = _WORKER["stts"][dfa_idx]
    scanner = _WORKER["scanners"][dfa_idx]
    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        raw = np.frombuffer(shm.buf, dtype=np.uint8, count=count * length,
                            offset=first * length)
        if stt.fold_table is not None:
            slab = stt.fold_table[raw]
        else:
            if raw.size and int(raw.max()) >= stt.alphabet_size:
                raise ShardedScanError(
                    "input contains symbols outside the alphabet and the "
                    "scanner was built without a fold map")
            slab = raw
        cols = np.ascontiguousarray(slab.reshape(count, length).T)
        ptrs = np.full(count, scanner.pointer(scanner.start),
                       dtype=np.int32)
        counts = np.zeros(count, dtype=np.int64)
        weights = stt.weights if weighted else None
        fin = scanner.scan_cols(cols, ptrs, counts, weights=weights)
        states = scanner.state_of(fin)
        raw = slab = None
        return counts.tolist(), [int(s) for s in states]
    finally:
        shm.close()


# -- host side ---------------------------------------------------------------------

class ShardedScanner:
    """Exact multicore scanning of one or more DFAs over shared input.

    Parameters
    ----------
    dfas:
        One automaton or a sequence (e.g. a partitioned dictionary's
        slices).  All must share one alphabet.
    workers:
        Pool size; defaults to ``os.cpu_count()``.  ``workers=1`` runs
        fully in-process (no pool, no staging copies) with identical
        semantics.
    fold:
        Optional byte→symbol reduction.  When given, inputs are *raw*
        bytes and workers fold their own shards (the PPE role,
        parallelized); without it, inputs must be pre-folded symbols.
    chunks:
        Lockstep chunk count *inside* each worker's shard scan.
    weighted:
        Count per-state match multiplicities (one per dictionary entry
        recognized, as the event-reporting paths do) instead of one per
        final-state entry (the paper's kernel counting).
    min_shard_bytes:
        Inputs smaller than ``workers × min_shard_bytes`` skip the pool.
    """

    def __init__(self, dfas: Union[DFA, Sequence[DFA]],
                 workers: Optional[int] = None,
                 fold: Optional[FoldMap] = None,
                 chunks: int = 256,
                 weighted: bool = False,
                 min_shard_bytes: int = 1 << 16,
                 start_method: Optional[str] = None) -> None:
        if isinstance(dfas, DFA):
            dfas = [dfas]
        if not dfas:
            raise ShardedScanError("at least one DFA required")
        alphabet = dfas[0].alphabet_size
        if any(d.alphabet_size != alphabet for d in dfas):
            raise ShardedScanError("DFAs must share one alphabet")
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ShardedScanError("workers must be >= 1")
        if chunks < 1:
            raise ShardedScanError("chunks must be >= 1")
        self.workers = int(workers)
        self.fold = fold
        self.chunks = int(chunks)
        self.weighted = bool(weighted)
        self.min_shard_bytes = int(min_shard_bytes)
        self.alphabet_size = alphabet
        self._stts = [SharedSTT(d, fold=fold) for d in dfas]
        self._scanners = [stt.scanner() for stt in self._stts]
        self._pool = None
        if self.workers > 1:
            ctx = mp.get_context(start_method)
            self._pool = ctx.Pool(
                self.workers, initializer=_init_worker,
                initargs=([stt.meta() for stt in self._stts],))

    @property
    def num_dfas(self) -> int:
        return len(self._stts)

    # -- block scanning -----------------------------------------------------------

    def count_block(self, block: bytes) -> int:
        """Exact total count over one contiguous input.

        Raw bytes when a fold map was given, pre-folded symbols
        otherwise.  Sums over all DFAs.
        """
        self._check_open()
        n = len(block)
        if n == 0:
            return 0
        if self._pool is None or n < self.workers * self.min_shard_bytes:
            return sum(self._count_local(block))
        return sum(self._count_pooled(block))

    def count_per_dfa(self, block: bytes) -> List[int]:
        """Per-DFA exact counts over one contiguous input."""
        self._check_open()
        if len(block) == 0:
            return [0] * self.num_dfas
        if self._pool is None or \
                len(block) < self.workers * self.min_shard_bytes:
            return self._count_local(block)
        return self._count_pooled(block)

    def _fold_or_check(self, block: bytes) -> np.ndarray:
        arr = np.frombuffer(block, dtype=np.uint8)
        if self.fold is not None:
            return self.fold.fold_symbols(block)
        if arr.size and int(arr.max()) >= self.alphabet_size:
            raise ShardedScanError(
                "input contains symbols outside the alphabet and the "
                "scanner was built without a fold map")
        return arr

    def _count_local(self, block: bytes) -> List[int]:
        arr = self._fold_or_check(block)
        out = []
        for stt, scanner in zip(self._stts, self._scanners):
            weights = stt.weights if self.weighted else None
            count, _ = count_arr(scanner, arr, self.chunks, scanner.start,
                                 weights=weights)
            out.append(count)
        return out

    def _count_pooled(self, block: bytes) -> List[int]:
        n = len(block)
        shards = self.workers
        bounds = np.linspace(0, n, shards + 1).astype(np.int64)
        shm = shared_memory.SharedMemory(create=True, size=n)
        try:
            shm.buf[:n] = block
            return self._fixpoint(shm.name, bounds)
        finally:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:
                pass

    def _fixpoint(self, shm_name: str,
                  bounds: np.ndarray) -> List[int]:
        """Speculative shard scans + cross-shard entry-state repair."""
        shards = len(bounds) - 1
        num = self.num_dfas
        entry = [[self._scanners[d].start] * shards for d in range(num)]
        exits = [[0] * shards for _ in range(num)]
        counts = [[0] * shards for _ in range(num)]
        todo = [(d, i) for d in range(num) for i in range(shards)]
        for _ in range(shards + 1):
            jobs = [
                (d, i, self._pool.apply_async(
                    _scan_shard,
                    (d, shm_name, int(bounds[i]), int(bounds[i + 1]),
                     entry[d][i], self.chunks, self.weighted)))
                for d, i in todo
            ]
            for d, i, job in jobs:
                counts[d][i], exits[d][i] = job.get()
            todo = []
            for d in range(num):
                for i in range(1, shards):
                    actual = exits[d][i - 1]
                    if actual != entry[d][i]:
                        entry[d][i] = actual
                        todo.append((d, i))
            if not todo:
                break
        else:
            raise DFAError("shard fixpoint failed to converge; this "
                           "indicates a bug, not an input property")
        return [sum(counts[d]) for d in range(num)]

    # -- stream batches -----------------------------------------------------------

    def run_streams(self, streams: Sequence[bytes]) -> StreamResult:
        """Scan equal-length independent streams, sharded by stream index.

        Single-DFA scanners only (per-stream counts for several DFAs
        would be ambiguous); semantics match
        :meth:`VectorDFAEngine.run_streams`.
        """
        self._check_open()
        if self.num_dfas != 1:
            raise ShardedScanError(
                "run_streams needs a single-DFA scanner")
        if not len(streams):
            raise ShardedScanError("at least one stream required")
        length = len(streams[0])
        if any(len(s) != length for s in streams):
            raise ShardedScanError("streams must have equal length")
        n = len(streams)
        scanner = self._scanners[0]
        if length == 0:
            return StreamResult(np.zeros(n, dtype=np.int64),
                                np.full(n, scanner.start, dtype=np.int32))
        if self._pool is None or \
                n * length < self.workers * self.min_shard_bytes or n < 2:
            return self._run_streams_local(streams, length)

        shm = shared_memory.SharedMemory(create=True, size=n * length)
        try:
            for i, s in enumerate(streams):
                shm.buf[i * length:(i + 1) * length] = s
            splits = np.linspace(0, n, min(self.workers, n) + 1) \
                .astype(np.int64)
            jobs = []
            for w in range(len(splits) - 1):
                first, last = int(splits[w]), int(splits[w + 1])
                if last > first:
                    jobs.append((first, self._pool.apply_async(
                        _scan_streams_shard,
                        (0, shm.name, first, last - first, length,
                         self.weighted))))
            counts = np.zeros(n, dtype=np.int64)
            states = np.full(n, scanner.start, dtype=np.int32)
            for first, job in jobs:
                part_counts, part_states = job.get()
                counts[first:first + len(part_counts)] = part_counts
                states[first:first + len(part_states)] = part_states
            return StreamResult(counts, states)
        finally:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:
                pass

    def _run_streams_local(self, streams: Sequence[bytes],
                           length: int) -> StreamResult:
        stt, scanner = self._stts[0], self._scanners[0]
        n = len(streams)
        cols = np.empty((length, n), dtype=np.uint8)
        for i, s in enumerate(streams):
            arr = self._fold_or_check(s)
            cols[:, i] = arr
        ptrs = np.full(n, scanner.pointer(scanner.start), dtype=np.int32)
        counts = np.zeros(n, dtype=np.int64)
        weights = stt.weights if self.weighted else None
        fin = scanner.scan_cols(cols, ptrs, counts, weights=weights)
        return StreamResult(counts, scanner.state_of(fin).astype(np.int32))

    # -- lifetime -----------------------------------------------------------------

    def _check_open(self) -> None:
        if not self._stts:
            raise ShardedScanError("scanner is closed")

    def close(self) -> None:
        """Shut the pool down and release the shared artifacts."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        # Scanners alias the shared segments; drop them before closing,
        # or the memoryview export blocks the unmap.
        self._scanners = []
        for stt in self._stts:
            stt.close()
        self._stts = []

    def __enter__(self) -> "ShardedScanner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (f"ShardedScanner(dfas={self.num_dfas}, "
                f"workers={self.workers}, "
                f"fold={'yes' if self.fold else 'no'}, "
                f"weighted={self.weighted})")
