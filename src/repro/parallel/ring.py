"""Persistent double-buffered input staging — the paper's Figure 5 on
the host.

The Cell kernel never waits for memory because the MFC stages the *next*
input buffer into the local store while the SPU scans the resident one.
:class:`StagingRing` is that structure for host processes: ``depth``
(default two) pre-allocated POSIX shared-memory segments that worker
processes attach exactly once, at pool start.  The producer (the host
thread, playing the PPE/MFC) fills the idle segment — ``readinto`` from
a file, or packed copies from an iterator — while the workers scan the
other one, and the segments are reused for the whole life of the
scanner: no per-pass ``SharedMemory`` create/attach, no per-scan
allocation, no segment ever leaked (creation is rolled back on partial
failure and :meth:`close` unlinks unconditionally).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
from multiprocessing import shared_memory

__all__ = ["StagingRing"]


class StagingRing:
    """``depth`` fixed-size shared staging buffers, reused forever.

    The ring itself holds no occupancy state — the scan pipeline in
    :mod:`repro.parallel.sharded` tracks which buffers are in flight —
    it owns only the segments and their lifecycle.
    """

    def __init__(self, capacity: int, depth: int = 2) -> None:
        if capacity < 1:
            raise ValueError("ring capacity must be >= 1 byte")
        if depth < 2:
            raise ValueError("ring depth must be >= 2 (double buffering)")
        self.capacity = int(capacity)
        self.depth = int(depth)
        self._segs: List[shared_memory.SharedMemory] = []
        try:
            for _ in range(depth):
                self._segs.append(shared_memory.SharedMemory(
                    create=True, size=self.capacity))
        except BaseException:
            self.close()
            raise

    @property
    def names(self) -> List[str]:
        """Segment names, the workers' attachment recipe."""
        return [seg.name for seg in self._segs]

    def fill(self, index: int, fill_fn) -> int:
        """Run ``fill_fn(memoryview) -> int`` against buffer ``index``.

        The memoryview covers exactly ``capacity`` bytes and is released
        before returning, so the segment can always be unmapped later.
        Returns the byte count reported by ``fill_fn``.
        """
        with memoryview(self._segs[index].buf) as mv, \
                mv[:self.capacity] as window:
            return int(fill_fn(window))

    def array(self, index: int, length: int, offset: int = 0) -> np.ndarray:
        """A numpy view of ``length`` staged bytes in buffer ``index``.

        The view aliases the segment; drop it before :meth:`close`.
        """
        return np.frombuffer(self._segs[index].buf, dtype=np.uint8,
                             count=length, offset=offset)

    # -- lifetime -----------------------------------------------------------------

    def close(self) -> None:
        """Unmap and unlink every segment (idempotent)."""
        segs, self._segs = self._segs, []
        for seg in segs:
            try:
                seg.close()
            finally:
                try:
                    seg.unlink()
                except FileNotFoundError:
                    pass

    def __enter__(self) -> "StagingRing":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (f"StagingRing(capacity={self.capacity}, "
                f"depth={self.depth}, "
                f"live={len(self._segs)})")
