"""Command-line interface.

Six subcommands mirror the library's main entry points::

    python -m repro scan --pattern virus --pattern worm --text "a Virus!"
    python -m repro scan --patterns-file sigs.txt traffic.bin
    python -m repro scan --backend pooled --workers 4 traffic.bin
    python -m repro serve --patterns-file sigs.txt --port 7411
    python -m repro bench-load --connections 4 --requests 200
    python -m repro plan --states 5000 --spes 8
    python -m repro table1 --transitions 4096
    python -m repro info

``scan`` matches (exact strings or, with ``--regex``, regexes) and reports
counts, events and the modelled Cell deployment; ``--backend`` picks a
registered scan backend (default: the execution planner chooses) and file
inputs stream through the staging ring rather than being read whole.
``serve`` runs the live scan daemon: a resident dictionary behind the
length-prefixed TCP protocol, with hot reload (``RELOAD``), flow sessions
(``FLOW``), admission control and a ``STATS`` metrics verb.
``bench-load`` drives a daemon (its own, or ``--connect host:port``) with
the closed-loop load generator and writes ``BENCH_service.json``.
``plan`` sizes a dictionary against the tile budget and prints the
deployment the library would choose, including the replacement-topology
optimum.  ``table1`` re-runs the paper's kernel comparison at a
configurable scale.  ``info`` prints the paper's reference numbers, the
backend registry and the service protocol.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DFA-based string matching on the (simulated) Cell "
                    "processor — IPPS 2007 reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    scan = sub.add_parser("scan", help="match a dictionary against input")
    scan.add_argument("input", nargs="?", help="input file (binary)")
    scan.add_argument("--text", help="inline input text instead of a file")
    scan.add_argument("--pattern", action="append", default=[],
                      help="dictionary entry (repeatable)")
    scan.add_argument("--patterns-file",
                      help="file with one pattern per line")
    scan.add_argument("--regex", action="store_true",
                      help="treat patterns as regular expressions")
    scan.add_argument("--events", action="store_true",
                      help="list individual match events")
    scan.add_argument("--backend", default="auto",
                      choices=["auto", "serial", "chunked", "fused",
                               "hotcold", "hotcold2", "pooled",
                               "streaming", "cellsim"],
                      help="scan backend (default: auto — the execution "
                           "planner chooses)")
    scan.add_argument("--workers", type=int, default=1,
                      help="worker processes for the parallel backends "
                           "(default 1)")
    scan.add_argument("--no-fuse", action="store_true",
                      help="escape hatch: never auto-plan the fused "
                           "multi-slice path (one pass per slice "
                           "instead of one stacked-table pass)")
    scan.add_argument("--hot-cold", dest="hot_cold", default=None,
                      action="store_true",
                      help="escape hatch: demand the cache-resident "
                           "hot/cold union scan when auto-planning "
                           "(exact dictionaries only)")
    scan.add_argument("--no-hot-cold", dest="hot_cold",
                      action="store_false",
                      help="escape hatch: never auto-plan the hot/cold "
                           "union scan")
    scan.add_argument("--two-byte", dest="two_byte", default=None,
                      action="store_true",
                      help="escape hatch: demand the two-byte-stride "
                           "pair-symbol scan when auto-planning picks "
                           "the union path (exact dictionaries only)")
    scan.add_argument("--no-two-byte", dest="two_byte",
                      action="store_false",
                      help="escape hatch: never auto-plan the two-byte-"
                           "stride pair-symbol scan")
    scan.add_argument("--prefilter", dest="prefilter", default=None,
                      action="store_true",
                      help="escape hatch: demand the packed trigram "
                           "prefilter stage in front of the scan "
                           "kernel (screenable exact dictionaries "
                           "only)")
    scan.add_argument("--no-prefilter", dest="prefilter",
                      action="store_false",
                      help="escape hatch: never mount the packed "
                           "prefilter stage")

    plan = sub.add_parser("plan", help="size a dictionary deployment")
    group = plan.add_mutually_exclusive_group(required=True)
    group.add_argument("--states", type=int,
                       help="dictionary size in DFA states")
    group.add_argument("--patterns-file",
                       help="derive the size from a pattern file")
    plan.add_argument("--spes", type=int, default=8,
                      help="SPE budget (default 8)")

    table1 = sub.add_parser("table1",
                            help="run the Table-1 kernel comparison")
    table1.add_argument("--transitions", type=int, default=2048,
                        help="transitions per version (default 2048; the "
                             "paper used 16384)")

    serve = sub.add_parser("serve", help="run the live scan daemon")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7411,
                       help="listen port (0 = let the OS pick; "
                            "default 7411)")
    serve.add_argument("--pattern", action="append", default=[],
                       help="dictionary entry (repeatable)")
    serve.add_argument("--patterns-file",
                       help="file with one pattern per line")
    serve.add_argument("--regex", action="store_true",
                       help="treat patterns as regular expressions")
    serve.add_argument("--backend", default="auto",
                       choices=["auto", "serial", "chunked", "fused",
                                "hotcold", "hotcold2", "pooled",
                                "streaming", "cellsim"],
                       help="default SCAN backend (default: auto)")
    serve.add_argument("--workers", type=int, default=1,
                       help="worker processes for parallel backends")
    serve.add_argument("--pool-workers", type=int, default=0,
                       help="gateway mode: N worker processes attached "
                            "to the compiled dictionary over shared "
                            "memory, flows placed by consistent hash "
                            "(0 = in-process daemon)")
    serve.add_argument("--max-pending", type=int, default=64,
                       help="admission control: concurrent scans in "
                            "flight (default 64)")
    serve.add_argument("--admission", default="reject",
                       choices=["reject", "wait"],
                       help="over-capacity policy: shed with 'busy' or "
                            "queue up to --timeout (default reject)")
    serve.add_argument("--timeout", type=float, default=5.0,
                       help="queue wait bound for --admission wait "
                            "(seconds, default 5)")
    serve.add_argument("--drain-timeout", type=float, default=10.0,
                       help="grace period for in-flight requests at "
                            "shutdown (default 10s)")
    serve.add_argument("--max-flows", type=int, default=65536,
                       help="flow-session table bound (default 65536)")
    serve.add_argument("--session-eviction", default="lru",
                       choices=["lru", "reject"],
                       help="policy when the flow table is full "
                            "(default lru)")
    serve.add_argument("--batch-max", type=int, default=1,
                       help="coalesce up to N concurrent count-only "
                            "scans into one fused pass (1 = off)")
    serve.add_argument("--batch-wait", type=float, default=0.002,
                       help="seconds a partial batch waits before "
                            "flushing (default 0.002)")
    serve.add_argument("--cache", metavar="DIR",
                       help="artifact-cache directory — makes RELOAD of "
                            "a known rule set a warm swap")
    serve.add_argument("--metrics-json", metavar="PATH",
                       help="write the final metrics snapshot here at "
                            "shutdown")
    serve.add_argument("--tenants-json", metavar="PATH",
                       help="bootstrap tenants from a JSON file mapping "
                            'name -> {"patterns": [...], "rules": '
                            '[...], "regex": bool}')

    load = sub.add_parser("bench-load",
                          help="drive a daemon with the closed-loop "
                               "load generator")
    load.add_argument("--connect", metavar="HOST:PORT",
                      help="target an already-running daemon instead of "
                           "hosting one in-process")
    load.add_argument("--pattern", action="append", default=[],
                      help="dictionary entry (repeatable; default: a "
                           "small signature set)")
    load.add_argument("--patterns-file",
                      help="file with one pattern per line")
    load.add_argument("--backend", default="auto",
                      choices=["auto", "serial", "chunked", "fused",
                               "hotcold", "hotcold2", "pooled",
                               "streaming", "cellsim"],
                      help="daemon SCAN backend (in-process daemon only)")
    load.add_argument("--workers", type=int, default=1)
    load.add_argument("--pool-workers", type=int, default=0,
                      help="in-process daemon: run the gateway + "
                           "worker-pool mode with N processes (0 = "
                           "single-process daemon)")
    load.add_argument("--batch-max", type=int, default=1,
                      help="daemon cross-request batching knob "
                           "(in-process daemon only; 1 = off)")
    load.add_argument("--batch-wait", type=float, default=0.002)
    load.add_argument("--connections", type=int, default=4,
                      help="closed-loop client connections (default 4)")
    load.add_argument("--requests", type=int, default=200,
                      help="requests per connection (default 200)")
    load.add_argument("--mode", default="scan",
                      choices=["scan", "flow"],
                      help="one-shot scans or sessioned flow packets")
    load.add_argument("--flows", type=int, default=8,
                      help="session flows per connection in flow mode")
    load.add_argument("--min-size", type=int, default=256)
    load.add_argument("--max-size", type=int, default=1500)
    load.add_argument("--match-fraction", type=float, default=0.2,
                      help="fraction of packets with a planted pattern")
    load.add_argument("--arrival-rate", type=float, default=None,
                      help="open-loop mode: aggregate offered request "
                           "rate (req/s); latency is measured from the "
                           "scheduled send time (default: closed loop)")
    load.add_argument("--reloads", type=int, default=0,
                      help="hot reloads to fire while the load runs")
    load.add_argument("--tenant", metavar="NAME",
                      help="scope the load to one tenant (created on an "
                           "in-process daemon with the load patterns; "
                           "must already exist on a --connect daemon)")
    load.add_argument("--seed", type=int, default=0)
    load.add_argument("--json", metavar="PATH",
                      default="BENCH_service.json",
                      help="result file (default BENCH_service.json; "
                           "'-' to skip)")

    sub.add_parser("info", help="print the paper's reference numbers")
    return parser


def _load_patterns(args) -> List[str]:
    patterns = list(args.pattern)
    if getattr(args, "patterns_file", None):
        with open(args.patterns_file, "r", encoding="utf-8") as fh:
            patterns.extend(line.rstrip("\n") for line in fh
                            if line.strip())
    return patterns


def _cmd_scan(args) -> int:
    from .core.matcher import CellStringMatcher, MatcherError

    patterns = _load_patterns(args)
    if not patterns:
        print("error: no patterns given (use --pattern/--patterns-file)",
              file=sys.stderr)
        return 2
    if args.text is None and not args.input:
        print("error: provide an input file or --text", file=sys.stderr)
        return 2

    backend = None if args.backend == "auto" else args.backend
    matcher = CellStringMatcher(patterns, regex=args.regex)
    fuse = not args.no_fuse
    try:
        if args.text is not None:
            report = matcher.scan(args.text.encode(),
                                  with_events=args.events,
                                  workers=args.workers, backend=backend,
                                  fuse=fuse, hot_cold=args.hot_cold,
                                  two_byte=args.two_byte,
                                  prefilter=args.prefilter)
        elif args.events or backend not in (None, "streaming"):
            # Events and the block-only backends need the bytes in one
            # piece; everything else streams.
            with open(args.input, "rb") as fh:
                report = matcher.scan(fh.read(), with_events=args.events,
                                      workers=args.workers,
                                      backend=backend, fuse=fuse,
                                      hot_cold=args.hot_cold,
                                      two_byte=args.two_byte,
                                      prefilter=args.prefilter)
        else:
            # File input flows through the staging ring — the file is
            # never materialized in memory.
            report = matcher.scan_file(args.input, workers=args.workers)
    except MatcherError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"patterns      : {matcher.num_patterns}"
          f"{' (regex)' if args.regex else ''}")
    print(f"input         : {report.bytes_scanned} bytes")
    print(f"matches       : {report.total_matches}")
    print(f"backend       : {report.backend} "
          f"({report.workers} worker(s))")
    print(f"deployment    : {report.configuration}")
    print(f"modelled rate : {report.modelled_gbps:.2f} Gbps on "
          f"{report.spes_used} SPE(s)")
    if args.events and report.events:
        for event in report.events:
            label = patterns[event.pattern] if event.pattern < \
                len(patterns) else f"#{event.pattern}"
            print(f"  end={event.end:<8d} pattern[{event.pattern}] "
                  f"{label!r}")
    return 0


def _cmd_plan(args) -> int:
    from .core.planner import plan_tile
    from .core.replacement import HALF_TILE_STATES, effective_gbps, \
        plan_topology
    from .dfa.alphabet import case_fold_32
    from .dfa.partition import trie_states

    if args.patterns_file:
        fold = case_fold_32()
        with open(args.patterns_file, "r", encoding="utf-8") as fh:
            patterns = [fold.fold_bytes(line.strip().encode())
                        for line in fh if line.strip()]
        states = trie_states(patterns)
    else:
        states = args.states
    if states < 2:
        print("error: dictionary needs at least 2 states",
              file=sys.stderr)
        return 2

    tile = plan_tile()
    print(f"dictionary    : {states} DFA states")
    print(f"tile budget   : {tile.max_states} states "
          f"({tile.stt_capacity // 1024} KB STT)")
    if states <= tile.max_states:
        ways = args.spes
        print(f"deployment    : resident, up to {ways} parallel tiles = "
              f"{ways * 5.11:.2f} Gbps")
        return 0
    resident_slices = -(-states // tile.max_states)
    if resident_slices <= args.spes:
        print(f"deployment    : {resident_slices} series tiles "
              f"(5.11 Gbps), {args.spes // resident_slices} parallel "
              f"group(s) = "
              f"{(args.spes // resident_slices) * 5.11:.2f} Gbps")
        return 0
    slices = -(-states // HALF_TILE_STATES)
    paper = effective_gbps(slices, num_spes=args.spes)
    best = plan_topology(slices, args.spes)
    print(f"deployment    : dynamic STT replacement, {slices} half-tile "
          f"slices")
    print(f"paper policy  : {paper:.2f} Gbps (every SPE cycles all "
          f"slices)")
    print(f"best topology : {best.describe()}")
    return 0


def _cmd_table1(args) -> int:
    from .analysis import PAPER_TABLE1, ascii_table
    from .core import DFATile, KERNEL_SPECS
    from .dfa import AhoCorasick
    from .workloads import signatures_for_states, streams_for_tile

    transitions = max(192, args.transitions)
    patterns = signatures_for_states(600, seed=7)
    tile = DFATile(AhoCorasick(patterns, 32).to_dfa())
    rows = []
    for version, spec in sorted(KERNEL_SPECS.items()):
        if version == 1:
            streams = streams_for_tile(transitions, patterns,
                                       num_streams=1, seed=1)
        else:
            per = -(-(transitions // 16) // spec.unroll) * spec.unroll
            streams = streams_for_tile(max(per, 12 * spec.unroll),
                                       patterns, seed=2)
        result = tile.run_streams(streams, version=version)
        paper = PAPER_TABLE1[version]
        rows.append([
            f"v{version}",
            spec.label,
            round(result.cycles_per_transition, 2),
            paper.cycles_per_transition,
            round(result.throughput_gbps(), 2),
            paper.throughput_gbps,
        ])
    print(ascii_table(
        ["ver", "kernel", "cyc/tr", "paper", "Gbps", "paper"], rows,
        title=f"Table 1 at {transitions} transitions/version"))
    return 0


def _cmd_serve(args) -> int:
    import asyncio
    import json
    import signal

    from .service import ScanService, ServiceConfig

    patterns = _load_patterns(args)
    if not patterns:
        print("error: no patterns given (use --pattern/--patterns-file)",
              file=sys.stderr)
        return 2
    config = ServiceConfig(
        host=args.host, port=args.port,
        backend=None if args.backend == "auto" else args.backend,
        workers=args.workers, max_pending=args.max_pending,
        admission=args.admission, request_timeout=args.timeout,
        drain_timeout=args.drain_timeout, max_flows=args.max_flows,
        session_policy=args.session_eviction,
        batch_max=args.batch_max, batch_wait=args.batch_wait,
        pool_workers=args.pool_workers)
    tenants = None
    if args.tenants_json:
        with open(args.tenants_json, "r", encoding="utf-8") as fh:
            tenants = json.load(fh)
        if not isinstance(tenants, dict):
            print("error: --tenants-json must hold a JSON object "
                  "mapping tenant name -> config", file=sys.stderr)
            return 2
    service = ScanService(patterns, config=config, regex=args.regex,
                          cache=args.cache, tenants=tenants)

    async def _run() -> None:
        await service.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    sig, lambda: loop.create_task(service.shutdown()))
            except NotImplementedError:  # pragma: no cover
                pass
        info = service.registry.describe()
        print(f"serving {info['patterns']} pattern(s) "
              f"({info['states']} states, {info['slices']} slice(s)) "
              f"on {service.host}:{service.port} — "
              f"generation {info['generation']}", flush=True)
        print(f"admission: {config.admission}, {config.max_pending} in "
              f"flight; backend: {config.backend or 'auto'}; "
              f"Ctrl-C or SHUTDOWN to drain", flush=True)
        if config.pool_workers > 0:
            print(f"pool: {config.pool_workers} worker process(es) "
                  f"attached over shared memory", flush=True)
        if tenants:
            print(f"tenants: {', '.join(sorted(tenants))}", flush=True)
        await service.wait_stopped()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover
        pass
    if args.metrics_json:
        with open(args.metrics_json, "w", encoding="utf-8") as fh:
            json.dump(service.metrics.snapshot(), fh, indent=2,
                      sort_keys=True)
            fh.write("\n")
        print(f"metrics written to {args.metrics_json}")
    return 0


_DEFAULT_LOAD_PATTERNS = ["virus", "worm", "trojan", "backdoor",
                          "exploit", "malware"]


def _cmd_bench_load(args) -> int:
    import json
    import threading

    from .analysis import metrics_table
    from .service import (ScanService, ServiceClient, ServiceConfig,
                          ServiceThread, run_load)

    patterns = _load_patterns(args) or list(_DEFAULT_LOAD_PATTERNS)
    handle = None
    if args.connect:
        host, _, port_text = args.connect.rpartition(":")
        if not host or not port_text.isdigit():
            print("error: --connect needs HOST:PORT", file=sys.stderr)
            return 2
        host, port = host, int(port_text)
    else:
        config = ServiceConfig(
            backend=None if args.backend == "auto" else args.backend,
            workers=args.workers, batch_max=args.batch_max,
            batch_wait=args.batch_wait,
            pool_workers=args.pool_workers)
        handle = ServiceThread(ScanService(patterns,
                                           config=config)).start()
        host, port = handle.host, handle.port
    try:
        if args.tenant and handle is not None:
            # In-process daemon: materialize the tenant with the same
            # dictionary the load generator plants matches from.
            with ServiceClient(host, port) as tc:
                tc.tenant_create(args.tenant, patterns)
        reload_stop = threading.Event()
        reload_thread = None
        if args.reloads > 0:
            # Alternate between two rule sets so every other swap is a
            # genuine dictionary change and the way back is a warm swap
            # when the daemon has an artifact cache.
            def _reloader() -> None:
                with ServiceClient(host, port) as rc:
                    sets = [patterns + ["bench-reload-extra"], patterns]
                    for i in range(args.reloads):
                        rc.reload(sets[i % 2], tenant=args.tenant)
                        if i + 1 < args.reloads \
                                and reload_stop.wait(0.1):
                            break
            reload_thread = threading.Thread(target=_reloader,
                                             daemon=True)
            reload_thread.start()
        result = run_load(
            host, port,
            connections=args.connections,
            requests_per_connection=args.requests,
            mode=args.mode,
            flows_per_connection=args.flows,
            min_size=args.min_size, max_size=args.max_size,
            patterns=[p.encode() for p in patterns],
            match_fraction=args.match_fraction,
            seed=args.seed,
            tenant=args.tenant,
            arrival_rate=args.arrival_rate)
        reload_stop.set()
        if reload_thread is not None:
            reload_thread.join(timeout=30)
        with ServiceClient(host, port) as client:
            stats = client.stats()
    finally:
        if handle is not None:
            handle.stop()
    print(result.summary())
    print()
    print(metrics_table(stats["metrics"]))
    served = stats["metrics"]["requests"].get("total", 0)
    if served < result.requests:
        print(f"warning: STATS saw {served} requests but the load "
              f"generator completed {result.requests}", file=sys.stderr)
        return 1
    if args.json and args.json != "-":
        payload = {
            "bench": "service",
            "run": result.to_payload(),
            "stats": stats["metrics"],
            "registry": stats["registry"],
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"results written to {args.json}")
    return 0 if result.errors == 0 else 1


def _cmd_info(args) -> int:
    from .analysis import (PAPER_BLADE_GBPS, PAPER_CHIP_GBPS,
                           PAPER_TABLE1, PAPER_TILE_GBPS)
    from .core.backends import backend_specs
    print("Scarpazza, Villa & Petrini, IPPS 2007 — reference numbers")
    print(f"  peak tile throughput : {PAPER_TILE_GBPS} Gbps "
          f"(version 4, unroll 3)")
    print(f"  one chip (8 SPEs)    : {PAPER_CHIP_GBPS} Gbps")
    print(f"  dual-Cell blade      : {PAPER_BLADE_GBPS} Gbps")
    print("  Table 1 cycles/transition:",
          ", ".join(f"v{v}={r.cycles_per_transition}"
                    for v, r in sorted(PAPER_TABLE1.items())))
    print("registered scan backends:")
    for name, section, description in backend_specs():
        print(f"  {name:<10s} {description} — {section}")
    print("staged scan pipeline:")
    print("  prefilter  packed trigram screening skips clean regions "
          "before any block kernel (screenable exact dictionaries; "
          "--no-prefilter / ScanRequest(prefilter=False) disables)")
    # protocol.py is stdlib-only by design, so this import is cheap.
    from .service.protocol import RELOAD_STRATEGY, VERB_SPECS
    print("service protocol verbs (repro serve):")
    for verb, description in VERB_SPECS:
        print(f"  {verb:<11s}{description}")
    print(f"reload strategy: {RELOAD_STRATEGY}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "scan": _cmd_scan,
        "plan": _cmd_plan,
        "table1": _cmd_table1,
        "serve": _cmd_serve,
        "bench-load": _cmd_bench_load,
        "info": _cmd_info,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
