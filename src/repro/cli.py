"""Command-line interface.

Four subcommands mirror the library's main entry points::

    python -m repro scan --pattern virus --pattern worm --text "a Virus!"
    python -m repro scan --patterns-file sigs.txt traffic.bin
    python -m repro scan --backend pooled --workers 4 traffic.bin
    python -m repro plan --states 5000 --spes 8
    python -m repro table1 --transitions 4096
    python -m repro info

``scan`` matches (exact strings or, with ``--regex``, regexes) and reports
counts, events and the modelled Cell deployment; ``--backend`` picks a
registered scan backend (default: the execution planner chooses) and file
inputs stream through the staging ring rather than being read whole.
``plan`` sizes a dictionary against the tile budget and prints the
deployment the library would choose, including the replacement-topology
optimum.  ``table1`` re-runs the paper's kernel comparison at a
configurable scale.  ``info`` prints the paper's reference numbers and the
backend registry.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DFA-based string matching on the (simulated) Cell "
                    "processor — IPPS 2007 reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    scan = sub.add_parser("scan", help="match a dictionary against input")
    scan.add_argument("input", nargs="?", help="input file (binary)")
    scan.add_argument("--text", help="inline input text instead of a file")
    scan.add_argument("--pattern", action="append", default=[],
                      help="dictionary entry (repeatable)")
    scan.add_argument("--patterns-file",
                      help="file with one pattern per line")
    scan.add_argument("--regex", action="store_true",
                      help="treat patterns as regular expressions")
    scan.add_argument("--events", action="store_true",
                      help="list individual match events")
    scan.add_argument("--backend", default="auto",
                      choices=["auto", "serial", "chunked", "pooled",
                               "streaming", "cellsim"],
                      help="scan backend (default: auto — the execution "
                           "planner chooses)")
    scan.add_argument("--workers", type=int, default=1,
                      help="worker processes for the parallel backends "
                           "(default 1)")

    plan = sub.add_parser("plan", help="size a dictionary deployment")
    group = plan.add_mutually_exclusive_group(required=True)
    group.add_argument("--states", type=int,
                       help="dictionary size in DFA states")
    group.add_argument("--patterns-file",
                       help="derive the size from a pattern file")
    plan.add_argument("--spes", type=int, default=8,
                      help="SPE budget (default 8)")

    table1 = sub.add_parser("table1",
                            help="run the Table-1 kernel comparison")
    table1.add_argument("--transitions", type=int, default=2048,
                        help="transitions per version (default 2048; the "
                             "paper used 16384)")

    sub.add_parser("info", help="print the paper's reference numbers")
    return parser


def _load_patterns(args) -> List[str]:
    patterns = list(args.pattern)
    if getattr(args, "patterns_file", None):
        with open(args.patterns_file, "r", encoding="utf-8") as fh:
            patterns.extend(line.rstrip("\n") for line in fh
                            if line.strip())
    return patterns


def _cmd_scan(args) -> int:
    from .core.matcher import CellStringMatcher, MatcherError

    patterns = _load_patterns(args)
    if not patterns:
        print("error: no patterns given (use --pattern/--patterns-file)",
              file=sys.stderr)
        return 2
    if args.text is None and not args.input:
        print("error: provide an input file or --text", file=sys.stderr)
        return 2

    backend = None if args.backend == "auto" else args.backend
    matcher = CellStringMatcher(patterns, regex=args.regex)
    try:
        if args.text is not None:
            report = matcher.scan(args.text.encode(),
                                  with_events=args.events,
                                  workers=args.workers, backend=backend)
        elif args.events or backend not in (None, "streaming"):
            # Events and the block-only backends need the bytes in one
            # piece; everything else streams.
            with open(args.input, "rb") as fh:
                report = matcher.scan(fh.read(), with_events=args.events,
                                      workers=args.workers,
                                      backend=backend)
        else:
            # File input flows through the staging ring — the file is
            # never materialized in memory.
            report = matcher.scan_file(args.input, workers=args.workers)
    except MatcherError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"patterns      : {matcher.num_patterns}"
          f"{' (regex)' if args.regex else ''}")
    print(f"input         : {report.bytes_scanned} bytes")
    print(f"matches       : {report.total_matches}")
    print(f"backend       : {report.backend} "
          f"({report.workers} worker(s))")
    print(f"deployment    : {report.configuration}")
    print(f"modelled rate : {report.modelled_gbps:.2f} Gbps on "
          f"{report.spes_used} SPE(s)")
    if args.events and report.events:
        for event in report.events:
            label = patterns[event.pattern] if event.pattern < \
                len(patterns) else f"#{event.pattern}"
            print(f"  end={event.end:<8d} pattern[{event.pattern}] "
                  f"{label!r}")
    return 0


def _cmd_plan(args) -> int:
    from .core.planner import plan_tile
    from .core.replacement import HALF_TILE_STATES, effective_gbps, \
        plan_topology
    from .dfa.alphabet import case_fold_32
    from .dfa.partition import trie_states

    if args.patterns_file:
        fold = case_fold_32()
        with open(args.patterns_file, "r", encoding="utf-8") as fh:
            patterns = [fold.fold_bytes(line.strip().encode())
                        for line in fh if line.strip()]
        states = trie_states(patterns)
    else:
        states = args.states
    if states < 2:
        print("error: dictionary needs at least 2 states",
              file=sys.stderr)
        return 2

    tile = plan_tile()
    print(f"dictionary    : {states} DFA states")
    print(f"tile budget   : {tile.max_states} states "
          f"({tile.stt_capacity // 1024} KB STT)")
    if states <= tile.max_states:
        ways = args.spes
        print(f"deployment    : resident, up to {ways} parallel tiles = "
              f"{ways * 5.11:.2f} Gbps")
        return 0
    resident_slices = -(-states // tile.max_states)
    if resident_slices <= args.spes:
        print(f"deployment    : {resident_slices} series tiles "
              f"(5.11 Gbps), {args.spes // resident_slices} parallel "
              f"group(s) = "
              f"{(args.spes // resident_slices) * 5.11:.2f} Gbps")
        return 0
    slices = -(-states // HALF_TILE_STATES)
    paper = effective_gbps(slices, num_spes=args.spes)
    best = plan_topology(slices, args.spes)
    print(f"deployment    : dynamic STT replacement, {slices} half-tile "
          f"slices")
    print(f"paper policy  : {paper:.2f} Gbps (every SPE cycles all "
          f"slices)")
    print(f"best topology : {best.describe()}")
    return 0


def _cmd_table1(args) -> int:
    from .analysis import PAPER_TABLE1, ascii_table
    from .core import DFATile, KERNEL_SPECS
    from .dfa import AhoCorasick
    from .workloads import signatures_for_states, streams_for_tile

    transitions = max(192, args.transitions)
    patterns = signatures_for_states(600, seed=7)
    tile = DFATile(AhoCorasick(patterns, 32).to_dfa())
    rows = []
    for version, spec in sorted(KERNEL_SPECS.items()):
        if version == 1:
            streams = streams_for_tile(transitions, patterns,
                                       num_streams=1, seed=1)
        else:
            per = -(-(transitions // 16) // spec.unroll) * spec.unroll
            streams = streams_for_tile(max(per, 12 * spec.unroll),
                                       patterns, seed=2)
        result = tile.run_streams(streams, version=version)
        paper = PAPER_TABLE1[version]
        rows.append([
            f"v{version}",
            spec.label,
            round(result.cycles_per_transition, 2),
            paper.cycles_per_transition,
            round(result.throughput_gbps(), 2),
            paper.throughput_gbps,
        ])
    print(ascii_table(
        ["ver", "kernel", "cyc/tr", "paper", "Gbps", "paper"], rows,
        title=f"Table 1 at {transitions} transitions/version"))
    return 0


def _cmd_info(args) -> int:
    from .analysis import (PAPER_BLADE_GBPS, PAPER_CHIP_GBPS,
                           PAPER_TABLE1, PAPER_TILE_GBPS)
    from .core.backends import backend_specs
    print("Scarpazza, Villa & Petrini, IPPS 2007 — reference numbers")
    print(f"  peak tile throughput : {PAPER_TILE_GBPS} Gbps "
          f"(version 4, unroll 3)")
    print(f"  one chip (8 SPEs)    : {PAPER_CHIP_GBPS} Gbps")
    print(f"  dual-Cell blade      : {PAPER_BLADE_GBPS} Gbps")
    print("  Table 1 cycles/transition:",
          ", ".join(f"v{v}={r.cycles_per_transition}"
                    for v, r in sorted(PAPER_TABLE1.items())))
    print("registered scan backends:")
    for name, section, description in backend_specs():
        print(f"  {name:<10s} {description} — {section}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "scan": _cmd_scan,
        "plan": _cmd_plan,
        "table1": _cmd_table1,
        "info": _cmd_info,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
