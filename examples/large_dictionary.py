#!/usr/bin/env python
"""Scaling the dictionary: composition and dynamic STT replacement.

The paper's §5/§6 story: one tile holds ~1500 states; bigger dictionaries
either spread over tiles "in series" (resident, full speed) or cycle
through half-size STT slots streamed from main memory (unlimited size,
throughput decaying as 5.11/(2(n−1))).  This example walks a dictionary up
through all three regimes and prints the modelled deployments, then
verifies functionally that every regime finds exactly the same matches.

Run:  python examples/large_dictionary.py
"""

from repro.analysis import ascii_table
from repro.core import CellStringMatcher
from repro.core.engine import VectorDFAEngine
from repro.core.planner import plan_tile
from repro.dfa import build_dfa, case_fold_32
from repro.workloads import ascii_keywords, plant_matches, random_payload


def main() -> None:
    fold = case_fold_32()
    # A deliberately small tile (≈270 states) so the regime changes are
    # visible with a few hundred signatures instead of tens of thousands.
    plan = plan_tile(buffer_bytes=94 * 1024, num_buffers=2)
    print(f"demo tile budget: {plan.max_states} states "
          f"(a real tile holds {plan_tile().max_states})\n")

    rows = []
    reports = {}
    for count in (20, 120, 400, 1500):
        words = ascii_keywords(count, seed=13)
        matcher = CellStringMatcher(words, plan=plan)
        rows.append([
            count,
            matcher.partition.num_slices,
            matcher.configuration.split(":")[0],
            matcher.spes_used,
            round(matcher.modelled_gbps, 2),
        ])
        reports[count] = matcher
    print(ascii_table(
        ["signatures", "slices", "regime", "SPEs", "modelled Gbps"],
        rows, title="dictionary size vs deployment regime"))

    # Functional check: the replacement-regime matcher agrees with a
    # monolithic DFA over the same (folded) dictionary.
    words = ascii_keywords(1500, seed=13)
    matcher = reports[1500]
    folded = [fold.fold_bytes(w) for w in words]
    payload = plant_matches(random_payload(20_000, seed=3), folded, 60,
                            seed=4)
    mono = VectorDFAEngine(build_dfa(folded, 32))
    # payload is already folded symbols; scan the slice engines directly
    # rather than through the matcher's fold.
    slice_total = matcher.replacement.scan_block(payload)[0] \
        if matcher.replacement else None
    print(f"\nfunctional check (20 KB payload, 60 planted hits):")
    print(f"  monolithic DFA : {mono.count_block(payload)} final entries")
    print(f"  {matcher.partition.num_slices} cycled slices: "
          f"{slice_total} final entries (equal: "
          f"{slice_total == mono.count_block(payload)})")


if __name__ == "__main__":
    main()
