#!/usr/bin/env python
"""Network-intrusion-detection scenario: filter a synthetic packet stream.

This is the workload the paper's introduction motivates: a NIDS inspecting
every payload byte against a signature dictionary at wire speed.  The
example

1. generates a signature dictionary and a burst of packets, a fraction of
   which carry planted malicious content;
2. scans the stream with the DFA matcher (content-independent cost);
3. compares against a heuristic baseline (Wu–Manber) on friendly *and*
   adversarial traffic, demonstrating the overload-attack argument of §1;
4. reports the modelled Cell-BE deployment for a 10 Gbps link — the
   paper's headline: two SPEs suffice.

Run:  python examples/nids_filter.py
"""

import time

from repro import CellStringMatcher, case_fold_32
from repro.analysis import spes_for_line_rate
from repro.baselines import WuManberMatcher
from repro.workloads import (
    adversarial_payload,
    ascii_keywords,
    packet_stream,
)


def main() -> None:
    fold = case_fold_32()
    signatures = ascii_keywords(60, seed=42)

    # -- 1. traffic: raw ASCII payloads with planted signatures ------------
    packets = packet_stream(400, min_size=200, max_size=1500,
                            alphabet_size=256, patterns=signatures,
                            match_fraction=0.15, seed=7)
    total_bytes = sum(len(p) for p in packets)
    print(f"traffic    : {len(packets)} packets, "
          f"{total_bytes / 1024:.1f} KB payload")

    # -- 2. DFA scan --------------------------------------------------------
    matcher = CellStringMatcher(signatures)
    flagged = 0
    matches = 0
    t0 = time.perf_counter()
    for packet in packets:
        count = matcher.scan(packet).total_matches
        if count:
            flagged += 1
            matches += count
    elapsed = time.perf_counter() - t0
    print(f"DFA scan   : {flagged} packets flagged, {matches} signature "
          f"hits, {total_bytes / elapsed / 1e6:.1f} MB/s in-Python")
    print(f"deployment : {matcher.configuration}")
    print(f"modelled   : {matcher.modelled_gbps:.2f} Gbps per config, "
          f"{spes_for_line_rate(10.0)} SPE(s) needed for a 10 Gbps link")

    # -- 3. adversarial robustness (in folded symbol space) ------------------
    target = min((fold.fold_bytes(s) for s in signatures), key=len)
    wm = WuManberMatcher([target])
    n = 200_000
    friendly = bytes([0]) * n     # symbol 0 never occurs in signatures
    hostile = adversarial_payload(target, n, mismatch_at_end=False)
    w_friendly = wm.scan_work(friendly)
    w_hostile = wm.scan_work(hostile)
    print("\nadversarial-input sensitivity (window inspections per "
          f"{n // 1000} kB):")
    print(f"  Wu-Manber  friendly={w_friendly:>8}  hostile={w_hostile:>8} "
          f"({w_hostile / w_friendly:.1f}x more work)")
    print(f"  DFA        friendly={n:>8}  hostile={n:>8} (1.0x — "
          f"content-independent)")


if __name__ == "__main__":
    main()
