#!/usr/bin/env python
"""Quickstart: multi-pattern scanning with the high-level API.

Builds a small case-insensitive signature dictionary, scans a payload, and
prints the matches plus the Cell-BE deployment the library modelled for it
— the 60-second tour of what the paper's system does.

Run:  python examples/quickstart.py
"""

from repro import CellStringMatcher

SIGNATURES = [
    "VIRUS",
    "WORM",
    "TROJAN",
    "EXPLOIT",
    "SHELLCODE",
]

TRAFFIC = (
    "GET /index.html HTTP/1.1\r\n"
    "User-Agent: definitely-not-a-worm\r\n"
    "X-Payload: this packet carries a VIRUS, a trojan, and some "
    "shellcode for dessert\r\n"
)


def main() -> None:
    matcher = CellStringMatcher(SIGNATURES)
    report = matcher.scan(TRAFFIC, with_events=True)

    print(f"dictionary : {matcher.num_patterns} signatures "
          f"(case-insensitive, 32-symbol folded alphabet)")
    print(f"deployment : {report.configuration}")
    print(f"modelled   : {report.modelled_gbps:.2f} Gbps on "
          f"{report.spes_used} SPE(s)")
    print(f"matches    : {report.total_matches}")
    for event in report.events:
        name = SIGNATURES[event.pattern]
        start = event.end - len(name)
        print(f"  [{start:3d}..{event.end:3d})  {name!r}")

    # The same dictionary as a regex set: one DFA recognizes them all.
    regex_matcher = CellStringMatcher(
        ["VIR(US|AL)", "W[OA]RM", "SHELL ?CODE"], regex=True)
    print(f"\nregex mode : {regex_matcher.configuration}")
    print(f"matches    : {regex_matcher.count(TRAFFIC)}")


if __name__ == "__main__":
    main()
