#!/usr/bin/env python
"""Deployment workflow: compile once, ship a filter pack, scan flows.

A realistic operator loop on top of the library:

1. compile the rule set (case-insensitive exact strings) into a DFA and
   serialize it as a checksummed *filter pack*;
2. load the pack on the "appliance" side and verify integrity;
3. scan interleaved per-connection traffic with :class:`FlowMatcher`,
   which keeps DFA state per flow so signatures split across packets of
   the same connection still match — the property the paper's 16 lanes
   (16 flows) rely on.

Run:  python examples/flow_deployment.py
"""

import numpy as np

from repro.core.artifact import pack_filter, unpack_filter
from repro.core.flows import FlowMatcher
from repro.dfa import AhoCorasick, case_fold_32
from repro.workloads import http_requests


RULES = [b"UNION SELECT", b"ETC PASSWD", b"CMD EXE", b"SCRIPT ALERT"]


def main() -> None:
    # -- 1. compile + pack on the control plane -----------------------------
    fold = case_fold_32()
    dfa = AhoCorasick([fold.fold_bytes(r) for r in RULES], 32).to_dfa()
    pack = pack_filter(dfa, fold)
    print(f"rule set   : {len(RULES)} rules -> {dfa.num_states}-state DFA")
    print(f"filter pack: {len(pack)} bytes (versioned, CRC-sealed)")

    # -- 2. load on the data plane --------------------------------------------
    loaded_dfa, loaded_fold = unpack_filter(pack)
    print(f"loaded     : {loaded_dfa.num_states} states, fold width "
          f"{loaded_fold.width} — integrity verified\n")

    # -- 3. interleaved flow traffic -----------------------------------------
    matcher = FlowMatcher(loaded_dfa)
    rng = np.random.default_rng(11)
    requests = http_requests(120, seed=12, inject=[RULES[0], RULES[2]])

    # Fragment each request into small packets; flows arrive interleaved
    # but packets stay ordered within their flow (TCP's guarantee).
    tagged = []
    for flow_id, request in enumerate(requests):
        folded = loaded_fold.fold_bytes(request)
        pos = 0
        seq = 0
        while pos < len(folded):
            size = int(rng.integers(20, 120))
            tagged.append((f"conn-{flow_id}", seq, folded[pos:pos + size],
                           rng.random()))
            pos += size
            seq += 1
    # Interleave across flows (random arrival) but keep per-flow order.
    tagged.sort(key=lambda item: (item[3], item[0]))
    tagged.sort(key=lambda item: item[1])  # stable: seq asc, flows mixed
    packets = [(fid, payload) for fid, _, payload, _ in tagged]

    counts = matcher.scan_batch(packets)
    flagged = {fid for (fid, _), c in zip(packets, counts) if c}
    print(f"traffic    : {len(requests)} connections, "
          f"{len(packets)} packets")
    print(f"alerts     : {matcher.total_matches()} rule hits across "
          f"{len(flagged)} flagged connections")

    # Cross-check: whole-request scanning must agree.
    expected = sum(loaded_dfa.count_matches(loaded_fold.fold_bytes(r))
                   for r in requests)
    print(f"cross-check: whole-request scan finds {expected} "
          f"(equal: {expected == matcher.total_matches()})")


if __name__ == "__main__":
    main()
