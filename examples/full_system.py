#!/usr/bin/env python
"""The whole appliance: PPE folding, DMA streaming, parallel tiles.

Runs the complete paper system on the simulator — raw bytes staged in
main memory, folded and sliced by the PPE, streamed block by block into
double-buffered local stores by the MFC, matched by the version-4 kernel
— and profiles the peak kernel instruction by instruction.

Run:  python examples/full_system.py
"""

import numpy as np

from repro.analysis import ascii_table
from repro.cell.profiler import profile
from repro.core import CellMatchingSystem
from repro.dfa import AhoCorasick, case_fold_32
from repro.workloads import ascii_keywords, plant_matches


def main() -> None:
    fold = case_fold_32()
    words = ascii_keywords(16, seed=21)
    dfa = AhoCorasick([fold.fold_bytes(w) for w in words], 32).to_dfa()

    rng = np.random.default_rng(4)
    raw = bytes(rng.integers(65, 91, 120_000, dtype=np.uint8))
    raw = plant_matches(raw, words, 40, seed=5)
    print(f"traffic: {len(raw) // 1000} KB raw ASCII, "
          f"{len(words)} signatures, {dfa.num_states}-state DFA\n")

    rows = []
    for tiles in (1, 2, 4, 8):
        system = CellMatchingSystem(dfa, num_tiles=tiles)
        result = system.filter_block(raw)
        rows.append([
            tiles,
            result.total_matches,
            round(result.compute_gbps, 2),
            round(result.end_to_end_gbps, 2),
            f"{result.transfer_hidden_fraction() * 100:.0f}%",
            round(result.makespan_seconds * 1e6, 1),
        ])
    print(ascii_table(
        ["tiles", "matches", "kernel Gbps", "end-to-end Gbps",
         "DMA hidden", "makespan us"],
        rows, title="full pipeline on the simulated Cell BE "
                    "(fold + slice + DMA + match)"))

    # Drill into the peak kernel with the profiler.
    system = CellMatchingSystem(dfa, num_tiles=1)
    tile = system.tiles[0]
    kernel = tile.kernel_for(768, version=4)
    kernel.write_start_states(tile.local_store)
    tile.local_store.write(kernel.input_base,
                           fold.fold_bytes(raw[:768 * 16])[:768])
    tile.spu.reset()
    prof = profile(tile.spu, kernel.program)
    print("\npeak-kernel profile (one 768-byte block):")
    print(prof.render(top=5))


if __name__ == "__main__":
    main()
