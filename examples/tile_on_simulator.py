#!/usr/bin/env python
"""Run the paper's DFA tile on the cycle-accounting SPU simulator.

This example goes below the high-level API: it builds a dictionary DFA,
lays it out in a simulated SPE local store (Figure 3 style), executes the
five Table-1 kernel versions on real SPU instruction streams, and prints
the microarchitectural profile of each — the reproduction of the paper's
§4 experiment at example scale.

Run:  python examples/tile_on_simulator.py
"""

from repro.analysis import PAPER_TABLE1, ascii_table
from repro.core import DFATile, KERNEL_SPECS
from repro.dfa import AhoCorasick, case_fold_32
from repro.workloads import streams_for_tile

SIGNATURES = [b"ATTACK", b"VIRUS", b"WORM", b"EXPLOIT", b"ROOTKIT",
              b"SHELLCODE", b"BACKDOOR", b"PAYLOAD"]


def main() -> None:
    fold = case_fold_32()
    patterns = [fold.fold_bytes(s) for s in SIGNATURES]
    dfa = AhoCorasick(patterns, 32).to_dfa()
    tile = DFATile(dfa)

    print(f"tile: {tile.num_states} states, "
          f"{tile.stt_bytes / 1024:.1f} KB STT, "
          f"buffer {tile.plan.buffer_bytes // 1024} KB")
    print(tile.plan.describe())
    print()

    scalar_stream = streams_for_tile(1536, patterns, num_streams=1,
                                     seed=1)
    simd_streams = streams_for_tile(192, patterns, seed=2)

    rows = []
    for version, spec in sorted(KERNEL_SPECS.items()):
        streams = scalar_stream if version == 1 else simd_streams
        result = tile.run_streams(streams, version=version)
        paper = PAPER_TABLE1[version]
        rows.append([
            f"v{version} {spec.label}",
            result.total_matches,
            round(result.cycles_per_transition, 2),
            paper.cycles_per_transition,
            round(result.throughput_gbps(), 2),
            paper.throughput_gbps,
            f"{result.stats.dual_issue_pct:.0f}%",
            f"{result.stats.stall_pct:.0f}%",
        ])
    print(ascii_table(
        ["kernel", "matches", "cyc/tr", "paper", "Gbps", "paper",
         "dual", "stall"],
        rows,
        title="Table-1 kernels on the SPU simulator (matches verified "
              "against the reference DFA)"))

    # Peek at the actual SPU assembly of the peak kernel.
    kernel = tile.kernel_for(48, version=4)
    listing = kernel.program.listing().splitlines()
    print(f"\npeak kernel (version 4): {len(kernel.program)} instructions, "
          f"{kernel.program.registers_used()} registers; first lines:")
    print("\n".join(listing[:12]))


if __name__ == "__main__":
    main()
