"""Analytic models, paper reference data, and report rendering."""

import pytest

from repro.analysis import (
    PAPER_BLADE_GBPS,
    PAPER_CHIP_GBPS,
    PAPER_TABLE1,
    PAPER_TILE_GBPS,
    ascii_chart,
    ascii_table,
    comparison_table,
    cycles_per_transition_from_gbps,
    format_si,
    gbps_from_cycles_per_transition,
    parallel_gbps,
    replacement_gbps,
    spes_for_line_rate,
)


class TestPaperData:
    def test_table1_has_five_versions(self):
        assert sorted(PAPER_TABLE1) == [1, 2, 3, 4, 5]

    def test_table1_internal_consistency(self):
        """cycles/transitions ≈ cycles-per-transition column."""
        for row in PAPER_TABLE1.values():
            assert row.total_cycles / row.transitions == pytest.approx(
                row.cycles_per_transition, rel=0.01)

    def test_table1_throughput_consistency(self):
        """Gbps column == 8 bits × M transitions/s."""
        for row in PAPER_TABLE1.values():
            assert row.throughput_mtps * 8 / 1000 == pytest.approx(
                row.throughput_gbps, abs=0.02)

    def test_version4_is_peak(self):
        best = max(PAPER_TABLE1.values(), key=lambda r: r.throughput_gbps)
        assert best.version == 4
        assert best.throughput_gbps == PAPER_TILE_GBPS

    def test_speedups_relative_to_version1(self):
        base = PAPER_TABLE1[1].cycles_per_transition
        for row in PAPER_TABLE1.values():
            assert base / row.cycles_per_transition == pytest.approx(
                row.speedup, abs=0.02)


class TestModels:
    def test_gbps_cpt_roundtrip(self):
        for cpt in (5.01, 7.57, 19.0):
            gbps = gbps_from_cycles_per_transition(cpt)
            assert cycles_per_transition_from_gbps(gbps) == \
                pytest.approx(cpt)

    def test_paper_anchor(self):
        """5.01 cycles/transition at 3.2 GHz is 5.11 Gbps."""
        assert gbps_from_cycles_per_transition(5.01) == \
            pytest.approx(5.11, abs=0.01)

    def test_parallel_chip_and_blade(self):
        assert parallel_gbps(8) == pytest.approx(PAPER_CHIP_GBPS)
        assert 2 * parallel_gbps(8) == pytest.approx(PAPER_BLADE_GBPS)

    def test_replacement_law_reexport(self):
        assert replacement_gbps(3) == pytest.approx(5.11 / 4)

    def test_spes_for_10gbps_is_two(self):
        """The headline: two SPEs filter a 10 Gbps link."""
        assert spes_for_line_rate(10.0) == 2

    def test_spes_for_other_rates(self):
        assert spes_for_line_rate(5.0) == 1
        assert spes_for_line_rate(40.0) == 8

    def test_invalid(self):
        with pytest.raises(ValueError):
            gbps_from_cycles_per_transition(0)
        with pytest.raises(ValueError):
            parallel_gbps(0)
        with pytest.raises(ValueError):
            spes_for_line_rate(-1)


class TestRendering:
    def test_ascii_table_alignment(self):
        text = ascii_table(["name", "value"],
                           [["a", 1], ["long-name", 2.5]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert set(lines[2]) == {"-"}

    def test_ascii_table_rejects_ragged(self):
        with pytest.raises(ValueError):
            ascii_table(["a", "b"], [[1]])

    def test_ascii_table_none_cells(self):
        text = ascii_table(["x"], [[None]])
        assert "-" in text

    def test_comparison_table_ratio(self):
        text = comparison_table([("cpt", 5.01, 5.55)])
        assert "1.11" in text

    def test_ascii_chart_contains_markers(self):
        text = ascii_chart([
            ("one", [0, 1, 2], [0, 1, 4]),
            ("two", [0, 1, 2], [4, 1, 0]),
        ], title="chart")
        assert "o" in text and "x" in text
        assert "one" in text and "two" in text

    def test_ascii_chart_rejects_ragged_series(self):
        with pytest.raises(ValueError):
            ascii_chart([("s", [1, 2], [1])])

    def test_ascii_chart_empty(self):
        assert "empty" in ascii_chart([])

    def test_format_si(self):
        assert format_si(5.11e9, "bps") == "5.11 Gbps"
        assert format_si(2500, "B") == "2.50 kB"
        assert format_si(3.2, "x") == "3.20 x"

    def test_metrics_table_renders_service_snapshot(self):
        from repro.analysis import metrics_table
        from repro.service.metrics import ServiceMetrics
        metrics = ServiceMetrics()
        metrics.record_request("SCAN")
        metrics.record_scan("serial", 0.002, 1500, 3)
        metrics.record_reload(0.05, warm=True)
        metrics.record_rejected()
        text = metrics_table(metrics.snapshot(), title="latency")
        assert "latency" in text
        assert "serial" in text
        assert "1 (1)" in text          # one reload, one warm
        assert "rejected" in text

    def test_metrics_table_empty_snapshot(self):
        from repro.analysis import metrics_table
        from repro.service.metrics import ServiceMetrics
        text = metrics_table(ServiceMetrics().snapshot())
        assert "requests" in text
