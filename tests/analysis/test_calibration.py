"""Bandwidth-model calibration."""

import pytest

from repro.analysis.calibration import (
    CalibrationError,
    CalibrationSample,
    fit_bandwidth_model,
)
from repro.cell.memory import BandwidthModel


def samples_from(model, spes=(1, 2, 4, 8), blocks=(64, 256, 1024, 16384)):
    return [
        CalibrationSample(p, bs, model.aggregate(p, bs))
        for p in spes for bs in blocks
    ]


class TestRoundTrip:
    def test_recovers_default_model(self):
        truth = BandwidthModel()
        fitted = fit_bandwidth_model(samples_from(truth))
        assert fitted.setup_s == pytest.approx(truth.setup_s, rel=1e-6)
        assert fitted.spe_link == pytest.approx(truth.spe_link, rel=1e-6)
        assert fitted.heavy_traffic_aggregate == pytest.approx(
            truth.heavy_traffic_aggregate, rel=1e-6)

    def test_recovers_custom_model(self):
        truth = BandwidthModel(heavy_traffic_aggregate=12e9,
                               spe_link=4e9, setup_s=120e-9)
        fitted = fit_bandwidth_model(samples_from(truth))
        assert fitted.setup_s == pytest.approx(truth.setup_s, rel=1e-6)
        assert fitted.spe_link == pytest.approx(truth.spe_link, rel=1e-6)
        assert fitted.heavy_traffic_aggregate == pytest.approx(12e9)

    def test_fitted_model_predicts(self):
        truth = BandwidthModel()
        fitted = fit_bandwidth_model(samples_from(truth))
        for p in (1, 3, 8):
            for bs in (128, 512, 8192):
                assert fitted.aggregate(p, bs) == pytest.approx(
                    truth.aggregate(p, bs), rel=1e-6)


class TestValidation:
    def test_sample_bounds(self):
        with pytest.raises(CalibrationError):
            CalibrationSample(0, 64, 1e9)
        with pytest.raises(CalibrationError):
            CalibrationSample(1, 0, 1e9)
        with pytest.raises(CalibrationError):
            CalibrationSample(1, 64, 0)

    def test_too_few_samples(self):
        truth = BandwidthModel()
        with pytest.raises(CalibrationError, match="three"):
            fit_bandwidth_model(samples_from(truth, spes=(1,),
                                             blocks=(64, 128))[:2])

    def test_single_block_size_insufficient(self):
        truth = BandwidthModel()
        samples = samples_from(truth, spes=(1, 2, 8), blocks=(64,))
        # Add one saturated sample so the cap exists.
        samples.append(CalibrationSample(
            8, 16384, truth.aggregate(8, 16384)))
        with pytest.raises(CalibrationError, match="block sizes"):
            fit_bandwidth_model(samples)
