"""Tenants: dictionary + policy double-buffers, verdict continuity
across reloads, eviction interplay, and the manager table."""

import threading

import pytest

from repro.policy import (PolicyError, Rule, RuleSet, Tenant,
                          TenantError, TenantManager)

WORDS = [b"virus", b"worm", b"trojan", b"backdoor"]
DROP_VIRUS = RuleSet((Rule(name="viral", action="drop",
                           patterns=(b"virus",)),))


@pytest.fixture
def tenant():
    t = Tenant("t", WORDS, rules=DROP_VIRUS)
    yield t
    t.close()


class TestPolicySwaps:
    def test_set_rules_bumps_generation(self, tenant):
        assert tenant.policy_generation == 1
        gen = tenant.set_rules(RuleSet((
            Rule(name="wormy", action="alert", patterns=(b"worm",)),)))
        assert gen == 2 and tenant.policy_generation == 2
        v, _, _ = tenant.scan_packet("f", b"a worm")
        assert v.action == "alert"
        # The old rule is gone: a fresh flow's virus only forwards.
        v, _, _ = tenant.scan_packet("g", b"a virus")
        assert v.action == "forward"

    def test_set_rules_validates_against_active_dictionary(self, tenant):
        with pytest.raises(PolicyError, match="not in the dictionary"):
            tenant.set_rules(RuleSet((
                Rule(name="bad", action="drop",
                     patterns=(b"no-such-sig",)),)))
        # Failed swap left the active policy untouched.
        assert tenant.policy_generation == 1
        v, _, _ = tenant.scan_packet("f", b"virus")
        assert v.action == "drop"

    def test_swap_takes_effect_mid_flow_without_losing_state(self, tenant):
        v, _, _ = tenant.scan_packet("f", b"virus")
        assert v.action == "drop"
        tenant.set_rules(RuleSet((
            Rule(name="viral", action="drop", patterns=(b"virus",)),
            Rule(name="wormy", action="alert", patterns=(b"worm",)),)))
        # Latched verdict survives the ruleset shape change.
        v, _, _ = tenant.scan_packet("f", b"clean bytes")
        assert v.action == "drop"


class TestDictionaryReloads:
    def test_reload_revalidates_active_rules(self, tenant):
        # Incoming dictionary drops "virus" while a rule still names
        # it: the reload must surface the conflict.
        with pytest.raises(PolicyError, match="not in the dictionary"):
            tenant.load_dictionary([b"worm", b"trojan"])

    def test_refused_reload_leaves_old_generation_serving(self, tenant):
        gen_before = tenant.registry.generation
        with pytest.raises(PolicyError, match="not in the dictionary"):
            tenant.load_dictionary([b"worm", b"trojan"])
        # The mismatched dictionary was never promoted: the old
        # generation still serves and the data path still judges.
        assert tenant.registry.generation == gen_before
        v, gen, _ = tenant.scan_packet("f", b"a virus")
        assert (v.action, gen) == ("drop", gen_before)
        # A compatible reload afterwards succeeds normally.
        result = tenant.load_dictionary(WORDS + [b"rootkit"])
        assert result.generation == gen_before + 1

    def test_swap_directions_interleave_safely_under_traffic(self):
        """Concurrent set_rules / load_dictionary churn with scans in
        flight: refused swaps surface at the swap call only, the scan
        path never raises, and it always judges a validated pair."""
        tenant = Tenant("race", WORDS, rules=DROP_VIRUS)
        rules_worm = RuleSet((Rule(name="wormy", action="alert",
                                   patterns=(b"worm",)),))
        stop = threading.Event()
        errors = []

        def swapper(op):
            i = 0
            while not stop.is_set():
                try:
                    op(i)
                except PolicyError:
                    pass            # refused swap: the documented outcome
                except Exception as exc:    # pragma: no cover
                    errors.append(exc)
                    return
                i += 1

        threads = [
            threading.Thread(target=swapper, args=(
                lambda i: tenant.set_rules(
                    DROP_VIRUS if i % 2 else rules_worm),)),
            threading.Thread(target=swapper, args=(
                lambda i: tenant.load_dictionary(
                    WORDS if i % 2 else [b"worm", b"trojan"]),)),
        ]
        for t in threads:
            t.start()
        try:
            for i in range(300):
                v, _, _ = tenant.scan_packet(f"f{i}", b"worm virus")
                assert v.action in ("forward", "alert", "drop")
        finally:
            stop.set()
            for t in threads:
                t.join()
            tenant.close()
        assert not errors

    def test_verdicts_survive_dictionary_reloads(self, tenant):
        v, _, _ = tenant.scan_packet("f", b"virus")
        assert v.action == "drop"
        for _ in range(3):
            tenant.load_dictionary(WORDS + [b"extra"])
            tenant.load_dictionary(WORDS)
        # DFA states restarted at each generation, but the sentence
        # and the lifetime totals carried.
        v, _, _ = tenant.scan_packet("f", b"clean")
        assert v.action == "drop"
        nbytes, matches, action = tenant.close_flow("f")
        assert matches == 1 and action == "drop"
        assert nbytes == len(b"virus") + len(b"clean")

    def test_carry_across_reloads_under_concurrent_traffic(self):
        """N back-to-back reloads race live packet traffic: zero
        errors, per-flow totals exact, verdicts latched throughout."""
        tenant = Tenant("churn", WORDS, rules=DROP_VIRUS)
        try:
            flows = [f"f{i}" for i in range(4)]
            for fid in flows:
                v, _, _ = tenant.scan_packet(fid, b"virus")
                assert v.action == "drop"
            stop = threading.Event()
            errors = []
            packets = {fid: 1 for fid in flows}   # the virus packet

            def pump(fid):
                while not stop.is_set():
                    try:
                        v, _, _ = tenant.scan_packet(fid, b"clean ")
                        packets[fid] += 1
                        if v.action != "drop":
                            errors.append((fid, v.action))
                            return
                    except Exception as exc:   # noqa: BLE001
                        errors.append((fid, repr(exc)))
                        return

            pumps = [threading.Thread(target=pump, args=(fid,))
                     for fid in flows]
            for t in pumps:
                t.start()
            sets = [WORDS + [b"extra"], WORDS]
            for i in range(8):
                tenant.load_dictionary(sets[i % 2])
            stop.set()
            for t in pumps:
                t.join(timeout=30)
            assert not errors, errors

            # Lifetime totals are exact across every carry.
            for fid in flows:
                nbytes, matches, action = tenant.close_flow(fid)
                assert action == "drop"
                assert matches == 1
                assert nbytes == len(b"virus") + \
                    (packets[fid] - 1) * len(b"clean ")
            # Eviction counter is cumulative across generations.
            with tenant.registry.lease() as gen:
                assert gen.sessions.stats()["evictions"] == 0
        finally:
            tenant.close()

    def test_eviction_closes_open_verdicts(self):
        """The LRU dropping a sentenced flow clears its verdict: if the
        flow returns it is a new flow, judged from scratch."""
        tenant = Tenant("small", WORDS, rules=DROP_VIRUS, max_flows=2)
        try:
            v, _, _ = tenant.scan_packet("guilty", b"virus")
            assert v.action == "drop"
            assert tenant.verdicts.flow_action("guilty") == "drop"
            tenant.scan_packet("b", b"x")
            _, _, evicted = tenant.scan_packet("c", b"x")
            assert evicted == 1
            assert tenant.verdicts.flow_action("guilty") == "forward"
            assert tenant.verdicts.num_flows <= 2
            # The returning flow starts clean.
            v, _, _ = tenant.scan_packet("guilty", b"no sig here")
            assert v.action == "forward"
        finally:
            tenant.close()

    def test_eviction_survives_reload_boundary(self):
        """carry_from into a smaller-than-needed table evicts at the
        boundary, and the verdict engine follows the session table."""
        tenant = Tenant("small2", WORDS, rules=DROP_VIRUS, max_flows=3)
        try:
            for fid in ("a", "b", "c"):
                tenant.scan_packet(fid, b"virus")
            tenant.load_dictionary(WORDS + [b"extra"])
            # All three carried; a fourth flow now evicts the LRU one.
            _, _, evicted = tenant.scan_packet("d", b"x")
            assert evicted == 1
            with tenant.registry.lease() as gen:
                stats = gen.sessions.stats()
            assert stats["flows"] == 3
            assert stats["evictions"] >= 1
        finally:
            tenant.close()


class TestTenantManager:
    def test_create_get_drop(self):
        mgr = TenantManager()
        try:
            mgr.create("a", WORDS)
            mgr.create("b", [b"other"], rules=DROP_VIRUS.rules and None)
            assert mgr.names() == ["a", "b"]
            assert "a" in mgr and len(mgr) == 2
            assert mgr.get("a").name == "a"
            mgr.drop("a")
            assert "a" not in mgr
            with pytest.raises(TenantError, match="unknown"):
                mgr.get("a")
            with pytest.raises(TenantError, match="unknown"):
                mgr.drop("a")
        finally:
            mgr.close()

    def test_duplicate_names_rejected(self):
        mgr = TenantManager()
        try:
            mgr.create("a", WORDS)
            with pytest.raises(TenantError, match="already exists"):
                mgr.create("a", WORDS)
        finally:
            mgr.close()

    def test_tenants_are_isolated(self):
        mgr = TenantManager()
        try:
            acme = mgr.create("acme", WORDS, rules=DROP_VIRUS)
            beta = mgr.create("beta", WORDS)
            va, _, _ = acme.scan_packet("f", b"virus")
            vb, _, _ = beta.scan_packet("f", b"virus")
            assert va.action == "drop"
            assert vb.action == "forward"
            # Same flow id, two tenants: independent session state.
            assert acme.verdicts.flow_action("f") == "drop"
            assert beta.verdicts.flow_action("f") == "forward"
        finally:
            mgr.close()

    def test_describe_reports_per_tenant_state(self):
        mgr = TenantManager()
        try:
            mgr.create("acme", WORDS, rules=DROP_VIRUS)
            desc = mgr.describe()
            assert desc["acme"]["policy"]["rules"] == 1
            assert desc["acme"]["registry"]["generation"] == 1
            assert desc["acme"]["verdicts"]["flows"] == 0
        finally:
            mgr.close()
