"""Verdict engine: latching, accumulation, windows, token buckets and
the flow lifecycle — all on an injected clock."""

import pytest

from repro.core.compiled import compile_dictionary
from repro.policy.rules import Rule, RuleSet
from repro.policy.verdicts import VerdictEngine
from repro.service.sessions import SessionScanner

WORDS = [b"virus", b"worm", b"trojan", b"backdoor"]


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture(scope="module")
def compiled():
    return compile_dictionary(WORDS)


def judge(engine, sessions, binding, fid, payload):
    detail = sessions.scan_packet_detail(fid, payload)
    return engine.apply(fid, detail, binding)


class TestFirstMatch:
    def test_first_triggered_rule_latches_forever(self, compiled):
        binding = RuleSet((
            Rule(name="viral", action="alert", patterns=(b"virus",)),
            Rule(name="doors", action="drop", patterns=(b"backdoor",)),
        )).compile(compiled)
        engine = VerdictEngine()
        sessions = SessionScanner(compiled)
        v = judge(engine, sessions, binding, "f", b"clean")
        assert (v.action, v.rule) == ("forward", None)
        v = judge(engine, sessions, binding, "f", b"a virus!")
        assert (v.action, v.rule) == ("alert", "viral")
        assert v.triggered == ["viral"]
        # A later, more severe rule cannot displace the latch.
        v = judge(engine, sessions, binding, "f", b"a backdoor!")
        assert (v.action, v.rule) == ("alert", "viral")
        assert engine.flow_action("f") == "alert"

    def test_flows_judged_independently(self, compiled):
        binding = RuleSet((
            Rule(name="viral", action="drop", patterns=(b"virus",)),
        )).compile(compiled)
        engine = VerdictEngine()
        sessions = SessionScanner(compiled)
        assert judge(engine, sessions, binding, "a",
                     b"virus").action == "drop"
        assert judge(engine, sessions, binding, "b",
                     b"clean").action == "forward"

    def test_threshold_counts_across_packets(self, compiled):
        binding = RuleSet((
            Rule(name="three", action="drop", patterns=(b"worm",),
                 threshold=3),
        )).compile(compiled)
        engine = VerdictEngine()
        sessions = SessionScanner(compiled)
        assert judge(engine, sessions, binding, "f",
                     b"worm worm").action == "forward"
        v = judge(engine, sessions, binding, "f", b"worm")
        assert v.action == "drop"
        assert v.triggered == ["three"]


class TestAccumulate:
    def test_verdict_escalates_to_most_severe(self, compiled):
        binding = RuleSet((
            Rule(name="loud", action="drop", patterns=(b"backdoor",)),
            Rule(name="soft", action="alert", patterns=(b"virus",)),
        ), mode="accumulate").compile(compiled)
        engine = VerdictEngine()
        sessions = SessionScanner(compiled)
        v = judge(engine, sessions, binding, "f", b"virus")
        assert (v.action, v.rule) == ("alert", "soft")
        v = judge(engine, sessions, binding, "f", b"backdoor")
        assert (v.action, v.rule) == ("drop", "loud")
        # Severity never de-escalates.
        v = judge(engine, sessions, binding, "f", b"virus again")
        assert v.action == "drop"


class TestWindows:
    def test_window_forgets_stale_matches(self, compiled):
        binding = RuleSet((
            Rule(name="burst", action="drop", patterns=(b"virus",),
                 threshold=2, window_bytes=32),
        )).compile(compiled)
        engine = VerdictEngine()
        sessions = SessionScanner(compiled)
        assert judge(engine, sessions, binding, "f",
                     b"virus").action == "forward"
        # 100 clean bytes push the first match out of the window.
        judge(engine, sessions, binding, "f", b"x" * 100)
        assert judge(engine, sessions, binding, "f",
                     b"virus").action == "forward"
        # Two matches inside one window trigger.
        v = judge(engine, sessions, binding, "f", b"virus virus")
        assert v.action == "drop"


class TestRateLimit:
    def _binding(self, compiled, rate=1.0, burst=2):
        return RuleSet((
            Rule(name="meter", action="rate-limit",
                 patterns=(b"virus",), rate=rate, burst=burst),
        )).compile(compiled)

    def test_bucket_meters_then_drops(self, compiled):
        clock = FakeClock()
        engine = VerdictEngine(clock=clock)
        sessions = SessionScanner(compiled)
        binding = self._binding(compiled, burst=2)
        # burst=2: two triggered packets ride, the third drops dry.
        assert judge(engine, sessions, binding, "f",
                     b"virus").action == "rate-limit"
        assert judge(engine, sessions, binding, "f",
                     b"virus").action == "rate-limit"
        assert judge(engine, sessions, binding, "f",
                     b"virus").action == "drop"

    def test_bucket_refills_on_the_clock(self, compiled):
        clock = FakeClock()
        engine = VerdictEngine(clock=clock)
        sessions = SessionScanner(compiled)
        binding = self._binding(compiled, rate=1.0, burst=1)
        assert judge(engine, sessions, binding, "f",
                     b"virus").action == "rate-limit"
        assert judge(engine, sessions, binding, "f",
                     b"virus").action == "drop"
        clock.now += 2.0
        assert judge(engine, sessions, binding, "f",
                     b"virus").action == "rate-limit"

    def test_retired_latched_rule_keeps_its_verdict(self, compiled):
        """A hot-swap that removes the latched rate-limit rule leaves
        the flow's verdict standing — and must not crash the judge."""
        clock = FakeClock()
        engine = VerdictEngine(clock=clock)
        sessions = SessionScanner(compiled)
        binding = self._binding(compiled)
        assert judge(engine, sessions, binding, "f",
                     b"virus").action == "rate-limit"
        swapped = RuleSet((
            Rule(name="other", action="alert", patterns=(b"worm",)),
        )).compile(compiled)
        v = judge(engine, sessions, swapped, "f", b"clean")
        assert (v.action, v.rule) == ("rate-limit", "meter")


class TestLifecycle:
    def test_close_flow_returns_final_action(self, compiled):
        binding = RuleSet((
            Rule(name="viral", action="drop", patterns=(b"virus",)),
        )).compile(compiled)
        engine = VerdictEngine()
        sessions = SessionScanner(compiled)
        judge(engine, sessions, binding, "f", b"virus")
        assert engine.close_flow("f") == "drop"
        assert engine.close_flow("f") is None
        assert engine.flow_action("f") == "forward"

    def test_evicted_flows_forget_their_verdicts(self, compiled):
        binding = RuleSet((
            Rule(name="viral", action="drop", patterns=(b"virus",)),
        )).compile(compiled)
        engine = VerdictEngine()
        sessions = SessionScanner(compiled, max_flows=2)
        judge(engine, sessions, binding, "a", b"virus")
        assert engine.flow_action("a") == "drop"
        # Two newer flows evict "a"; its verdict dies with the session.
        judge(engine, sessions, binding, "b", b"x")
        v = judge(engine, sessions, binding, "c", b"x")
        assert engine.flow_action("a") == "forward"
        assert engine.num_flows <= 2

    def test_ruleset_shape_change_preserves_latched_action(self, compiled):
        binding = RuleSet((
            Rule(name="viral", action="drop", patterns=(b"virus",)),
        )).compile(compiled)
        engine = VerdictEngine()
        sessions = SessionScanner(compiled)
        judge(engine, sessions, binding, "f", b"virus")
        bigger = RuleSet((
            Rule(name="viral", action="drop", patterns=(b"virus",)),
            Rule(name="wormy", action="alert", patterns=(b"worm",)),
        )).compile(compiled)
        # Counters restart (shape changed) but the sentence stands.
        v = judge(engine, sessions, bigger, "f", b"clean")
        assert (v.action, v.rule) == ("drop", "viral")

    def test_same_shape_ruleset_swap_restarts_counters(self, compiled):
        """A hot-swap to a different ruleset with the *same* rule count
        must not let the new rules inherit the old rules' counters."""
        old = RuleSet((Rule(name="viral", action="alert",
                            patterns=(b"virus",), threshold=2),))
        new = RuleSet((Rule(name="wormy", action="drop",
                            patterns=(b"worm",), threshold=2),))
        engine = VerdictEngine()
        sessions = SessionScanner(compiled)
        # One match accrued under the old rule (1/2: no trigger).
        v = judge(engine, sessions, old.compile(compiled), "f", b"virus")
        assert v.action == "forward"
        # Swap: the new rule starts from zero, so one worm is 1/2 ...
        new_binding = new.compile(compiled)
        v = judge(engine, sessions, new_binding, "f", b"worm")
        assert (v.action, v.triggered) == ("forward", [])
        # ... and the second worm is the one that triggers it.
        v = judge(engine, sessions, new_binding, "f", b"worm")
        assert (v.action, v.rule) == ("drop", "wormy")

    def test_dictionary_rebind_preserves_counters(self, compiled):
        """The same RuleSet recompiled (a dictionary reload's rebind)
        keeps accrued per-rule counters — only policy swaps reset."""
        ruleset = RuleSet((Rule(name="viral", action="drop",
                                patterns=(b"virus",), threshold=2),))
        engine = VerdictEngine()
        sessions = SessionScanner(compiled)
        v = judge(engine, sessions, ruleset.compile(compiled), "f",
                  b"virus")
        assert v.action == "forward"       # 1/2
        # A fresh binding of the *same* ruleset: the count carries.
        v = judge(engine, sessions, ruleset.compile(compiled), "f",
                  b"virus")
        assert (v.action, v.rule) == ("drop", "viral")

    def test_rule_free_binding_creates_no_flow_state(self, compiled):
        engine = VerdictEngine()
        sessions = SessionScanner(compiled)
        detail = sessions.scan_packet_detail("f", b"virus")
        v = engine.apply("f", detail, None)
        assert v.action == "forward"
        assert v.new_matches == 1
        assert engine.num_flows == 0

    def test_action_totals_accumulate(self, compiled):
        binding = RuleSet((
            Rule(name="viral", action="drop", patterns=(b"virus",)),
        )).compile(compiled)
        engine = VerdictEngine()
        sessions = SessionScanner(compiled)
        judge(engine, sessions, binding, "f", b"clean")
        judge(engine, sessions, binding, "f", b"virus")
        judge(engine, sessions, binding, "f", b"more")
        assert engine.action_totals == {"forward": 1, "drop": 2}
        assert engine.describe()["actions"]["drop"] == 2
