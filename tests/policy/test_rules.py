"""Rule model and ruleset compilation: spec round-trips, validation,
pure-vs-mixed slice binding, and exact per-rule attribution."""

import pytest

from repro.core.compiled import compile_dictionary
from repro.policy.rules import (ACTIONS, MODES, SEVERITY, PolicyError,
                                Rule, RuleSet)
from repro.service.sessions import SessionScanner

WORDS = [b"virus", b"worm", b"trojan", b"backdoor"]


class TestRuleValidation:
    def test_valid_actions_only(self):
        for action in ACTIONS:
            Rule(name="r", action=action)
        with pytest.raises(PolicyError, match="action"):
            Rule(name="r", action="explode")

    def test_needs_a_name(self):
        with pytest.raises(PolicyError, match="name"):
            Rule(name="", action="drop")

    def test_threshold_window_rate_burst_bounds(self):
        with pytest.raises(PolicyError, match="threshold"):
            Rule(name="r", action="drop", threshold=0)
        with pytest.raises(PolicyError, match="window_bytes"):
            Rule(name="r", action="drop", window_bytes=-1)
        with pytest.raises(PolicyError, match="rate"):
            Rule(name="r", action="rate-limit", rate=0.0)
        with pytest.raises(PolicyError, match="burst"):
            Rule(name="r", action="rate-limit", burst=0)

    def test_patterns_coerced_to_bytes(self):
        rule = Rule(name="r", action="alert", patterns=("virus", b"worm"))
        assert rule.patterns == (b"virus", b"worm")

    def test_severity_covers_every_action(self):
        assert set(SEVERITY) == set(ACTIONS) | {"forward"}
        assert SEVERITY["forward"] < min(SEVERITY[a] for a in ACTIONS)


class TestSpecRoundTrip:
    def test_rule_spec_round_trip(self):
        rule = Rule(name="throttle", action="rate-limit",
                    patterns=(b"virus",), threshold=3,
                    window_bytes=4096, rate=2.5, burst=8)
        assert Rule.from_spec(rule.to_spec()) == rule

    def test_non_ascii_pattern_spec_round_trip(self):
        # Spec strings are latin-1 byte images both ways: any byte
        # pattern (signatures are bytes, not text) survives the wire.
        rule = Rule(name="bin", action="drop",
                    patterns=(b"\xff", bytes(range(256))))
        assert Rule.from_spec(rule.to_spec()) == rule

    def test_spec_pattern_above_byte_range_rejected(self):
        with pytest.raises(PolicyError, match="malformed"):
            Rule.from_spec({"name": "r", "action": "drop",
                            "patterns": ["€"]})

    def test_unknown_spec_keys_rejected(self):
        with pytest.raises(PolicyError, match="unknown keys"):
            Rule.from_spec({"name": "r", "action": "drop",
                            "priority": 9})

    def test_malformed_spec_values_rejected(self):
        with pytest.raises(PolicyError, match="malformed"):
            Rule.from_spec({"name": "r", "action": "drop",
                            "threshold": "lots"})

    def test_ruleset_spec_round_trip(self):
        rs = RuleSet((Rule(name="a", action="drop"),
                      Rule(name="b", action="alert",
                           patterns=(b"worm",))), mode="accumulate")
        again = RuleSet.from_specs(rs.to_specs(), mode="accumulate")
        assert again == rs

    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(PolicyError, match="duplicate"):
            RuleSet((Rule(name="a", action="drop"),
                     Rule(name="a", action="alert")))

    def test_bad_mode_rejected(self):
        assert MODES == ("first-match", "accumulate")
        with pytest.raises(PolicyError, match="mode"):
            RuleSet(mode="psychic")


class TestCompilation:
    def test_unknown_pattern_rejected_at_compile(self):
        compiled = compile_dictionary(WORDS)
        rs = RuleSet((Rule(name="r", action="drop",
                           patterns=(b"not-in-dict",)),))
        with pytest.raises(PolicyError, match="not in the dictionary"):
            rs.compile(compiled)

    def test_rule_patterns_resolve_through_the_fold(self):
        compiled = compile_dictionary(WORDS)
        rs = RuleSet((Rule(name="r", action="drop",
                           patterns=(b"VIRUS",)),))
        binding = rs.compile(compiled)   # case variant resolves
        assert binding.rules[0].name == "r"

    def test_wildcard_rule_covers_every_pattern(self):
        compiled = compile_dictionary(WORDS)
        binding = RuleSet((Rule(name="any", action="alert"),)) \
            .compile(compiled)
        # Every slice is pure: all patterns map to the same rule.
        assert binding.pure_slices == compiled.num_slices

    def _sliced(self):
        """A dictionary forced across >1 slice so rules can mix."""
        for max_states in range(40, 8, -1):
            try:
                c = compile_dictionary(WORDS, max_states=max_states)
            except Exception:
                continue
            if c.num_slices > 1:
                return c
        pytest.skip("no budget yields multiple slices")

    def test_mixed_slice_attribution_is_exact(self):
        compiled = compile_dictionary(WORDS)
        assert compiled.num_slices == 1
        # Two rules splitting one slice's patterns -> the slice is
        # mixed and attribution must resolve exactly.
        rs = RuleSet((Rule(name="viral", action="drop",
                           patterns=(b"virus", b"worm")),
                      Rule(name="doors", action="alert",
                           patterns=(b"backdoor",))))
        binding = rs.compile(compiled)
        assert binding.pure_slices == 0

        sessions = SessionScanner(compiled)
        detail = sessions.scan_packet_detail(
            "f", b"a virus, a worm, a backdoor, a virus")
        assert detail.new == 4
        counts = binding.attribute(detail)
        assert counts == {0: 3, 1: 1}

    def test_pure_slice_attribution_uses_delta(self):
        compiled = self._sliced()
        # One wildcard rule: every slice pure, counts equal the delta.
        binding = RuleSet((Rule(name="any", action="mirror"),)) \
            .compile(compiled)
        assert binding.pure_slices == compiled.num_slices
        sessions = SessionScanner(compiled)
        detail = sessions.scan_packet_detail(
            "f", b"virus worm trojan backdoor")
        assert detail.new == 4
        assert binding.attribute(detail) == {0: 4}

    def test_attribution_spans_packet_boundaries(self):
        compiled = compile_dictionary(WORDS)
        rs = RuleSet((Rule(name="viral", action="drop",
                           patterns=(b"virus",)),
                      Rule(name="wormy", action="alert",
                           patterns=(b"worm",))))
        binding = rs.compile(compiled)
        sessions = SessionScanner(compiled)
        first = sessions.scan_packet_detail("f", b"zz vir")
        assert binding.attribute(first) == {}
        second = sessions.scan_packet_detail("f", b"us zz")
        # The straddling match resolves from the flow's pre-packet
        # state, so the walk sees the continuation correctly.
        assert binding.attribute(second) == {0: 1}

    def test_no_match_packets_attribute_for_free(self):
        compiled = compile_dictionary(WORDS)
        rs = RuleSet((Rule(name="viral", action="drop",
                           patterns=(b"virus",)),
                      Rule(name="wormy", action="alert",
                           patterns=(b"worm",))))
        binding = rs.compile(compiled)
        sessions = SessionScanner(compiled)
        detail = sessions.scan_packet_detail("f", b"nothing to see")
        assert detail.new == 0
        assert binding.attribute(detail) == {}
