"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestScan:
    def test_inline_text(self, capsys):
        rc = main(["scan", "--pattern", "virus", "--pattern", "worm",
                   "--text", "a Virus and a WoRm"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "matches       : 2" in out
        assert "Gbps" in out

    def test_events_listed(self, capsys):
        rc = main(["scan", "--pattern", "AB", "--text", "xABx",
                   "--events"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "end=3" in out and "'AB'" in out

    def test_file_input(self, tmp_path, capsys):
        data = tmp_path / "traffic.bin"
        data.write_bytes(b"zzATTACKzz")
        rc = main(["scan", "--pattern", "attack", str(data)])
        assert rc == 0
        assert "matches       : 1" in capsys.readouterr().out

    def test_patterns_file(self, tmp_path, capsys):
        pf = tmp_path / "sigs.txt"
        pf.write_text("virus\nworm\n")
        rc = main(["scan", "--patterns-file", str(pf), "--text",
                   "wormy virus"])
        assert rc == 0
        assert "matches       : 2" in capsys.readouterr().out

    def test_regex_mode(self, capsys):
        rc = main(["scan", "--regex", "--pattern", "W[OA]RM", "--text",
                   "warm worm"])
        assert rc == 0
        assert "matches       : 2" in capsys.readouterr().out

    def test_no_patterns_errors(self, capsys):
        rc = main(["scan", "--text", "x"])
        assert rc == 2
        assert "no patterns" in capsys.readouterr().err

    def test_no_input_errors(self, capsys):
        rc = main(["scan", "--pattern", "a"])
        assert rc == 2
        assert "input" in capsys.readouterr().err

    @pytest.mark.parametrize("backend", ["serial", "chunked", "cellsim"])
    def test_explicit_backend(self, backend, capsys):
        rc = main(["scan", "--pattern", "virus", "--backend", backend,
                   "--text", "a Virus, a VIRUS"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "matches       : 2" in out
        assert f"backend       : {backend}" in out

    def test_file_input_streams_by_default(self, tmp_path, capsys):
        data = tmp_path / "traffic.bin"
        data.write_bytes(b"zzATTACKzz" * 50)
        rc = main(["scan", "--pattern", "attack", str(data)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "matches       : 50" in out
        assert "backend       : streaming" in out

    def test_file_input_with_pooled_backend(self, tmp_path, capsys):
        data = tmp_path / "traffic.bin"
        data.write_bytes(b"wormy " * 100)
        rc = main(["scan", "--pattern", "worm", "--backend", "pooled",
                   "--workers", "2", str(data)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "matches       : 100" in out
        assert "backend       : pooled (2 worker(s))" in out

    def test_events_force_block_read_of_file(self, tmp_path, capsys):
        data = tmp_path / "traffic.bin"
        data.write_bytes(b"xABx")
        rc = main(["scan", "--pattern", "AB", "--events", str(data)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "end=3" in out and "backend       : serial" in out

    def test_events_with_workers_errors(self, capsys):
        rc = main(["scan", "--pattern", "a", "--events", "--workers", "2",
                   "--text", "aa"])
        assert rc == 2
        assert "serial" in capsys.readouterr().err

    def test_unknown_backend_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scan", "--pattern", "a",
                                       "--backend", "gpu", "--text", "x"])


class TestPlan:
    def test_resident_plan(self, capsys):
        rc = main(["plan", "--states", "800"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "resident" in out

    def test_series_plan(self, capsys):
        rc = main(["plan", "--states", "5000", "--spes", "8"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "series" in out

    def test_replacement_plan(self, capsys):
        rc = main(["plan", "--states", "60000", "--spes", "8"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "replacement" in out
        assert "best topology" in out

    def test_plan_from_patterns_file(self, tmp_path, capsys):
        pf = tmp_path / "sigs.txt"
        pf.write_text("\n".join(f"SIG{i:04d}XYZ" for i in range(40)))
        rc = main(["plan", "--patterns-file", str(pf)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "DFA states" in out

    def test_degenerate_dictionary(self, capsys):
        rc = main(["plan", "--states", "1"])
        assert rc == 2


class TestServe:
    def test_no_patterns_errors(self, capsys):
        rc = main(["serve"])
        assert rc == 2
        assert "no patterns" in capsys.readouterr().err

    def test_parser_accepts_service_tunables(self):
        args = build_parser().parse_args(
            ["serve", "--pattern", "virus", "--port", "0",
             "--admission", "wait", "--max-pending", "8",
             "--session-eviction", "reject",
             "--metrics-json", "m.json"])
        assert args.admission == "wait"
        assert args.max_pending == 8
        assert args.session_eviction == "reject"

    def test_invalid_admission_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--pattern", "a",
                                       "--admission", "drop"])


class TestBenchLoad:
    def test_self_hosted_run_writes_results(self, tmp_path, capsys):
        out_file = tmp_path / "BENCH_service.json"
        rc = main(["bench-load", "--pattern", "virus",
                   "--connections", "2", "--requests", "10",
                   "--max-size", "300", "--json", str(out_file)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "20 requests" in out
        assert "service latency by backend" in out
        import json
        body = json.loads(out_file.read_text())
        assert body["run"]["requests"] == 20
        assert body["run"]["errors"] == 0
        assert "p95" in body["run"]["latency_ms"]
        assert body["stats"]["requests"]["SCAN"] == 20
        assert body["registry"]["generation"] == 1

    def test_flow_mode_with_reloads(self, capsys):
        rc = main(["bench-load", "--pattern", "virus", "--mode", "flow",
                   "--connections", "1", "--requests", "10",
                   "--reloads", "1", "--json", "-"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "10 requests" in out

    def test_bad_connect_spec(self, capsys):
        rc = main(["bench-load", "--connect", "nowhere"])
        assert rc == 2
        assert "HOST:PORT" in capsys.readouterr().err


class TestOthers:
    def test_info(self, capsys):
        rc = main(["info"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "5.11" in out and "40.88" in out

    def test_info_lists_backends(self, capsys):
        rc = main(["info"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "registered scan backends" in out
        for name in ("serial", "chunked", "pooled", "streaming",
                     "cellsim"):
            assert name in out

    def test_info_lists_service_protocol(self, capsys):
        rc = main(["info"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "service protocol verbs" in out
        for verb in ("PING", "SCAN", "FLOW", "CLOSE_FLOW", "RELOAD",
                     "STATS", "SHUTDOWN"):
            assert verb in out
        assert "reload strategy: double-buffered generations" in out

    def test_table1_small(self, capsys):
        rc = main(["table1", "--transitions", "192"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "v4" in out and "cyc/tr" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
