"""Fault injection: the verification machinery must actually catch bugs.

Every tile run is verified against the reference DFA.  These tests
deliberately corrupt the system — the STT image in the local store, the
saved states, the filter pack — and assert the corruption is *detected*,
not silently absorbed.  A verifier that never fires is worthless; this is
its test."""

import numpy as np
import pytest

from repro.core.artifact import ArtifactError, pack_filter, unpack_filter
from repro.core.planner import plan_tile
from repro.core.tile import DFATile, TileError
from repro.dfa import build_dfa, case_fold_32
from repro.workloads import plant_matches, random_payload, \
    random_signatures

PATTERNS = random_signatures(6, 3, 6, seed=70)


def fresh_tile():
    return DFATile(build_dfa(PATTERNS, 32),
                   plan=plan_tile(buffer_bytes=1024))


def planted_streams(seed):
    rng = np.random.default_rng(seed)
    return [plant_matches(random_payload(96, seed=int(rng.integers(2**31))),
                          PATTERNS, 2, seed=int(rng.integers(2**31)))
            for _ in range(16)]


class TestSTTCorruption:
    def test_corrupted_stt_detected_by_verification(self):
        tile = fresh_tile()
        streams = planted_streams(1)
        # Sanity: clean run verifies.
        tile.run_streams(streams)
        # Corrupt one STT cell that the planted patterns traverse: redirect
        # the start state's transition for the first pattern symbol.
        sym = PATTERNS[0][0]
        addr = tile.plan.stt_base + sym * 4
        cell = int.from_bytes(tile.local_store.read(addr, 4), "big")
        # Point it back at the start row without the final flag.
        tile.local_store.write(addr, tile.stt.start_pointer.to_bytes(
            4, "big"))
        with pytest.raises(TileError, match="mismatch"):
            tile.run_streams(streams)
        # Restore and verify recovery.
        tile.local_store.write(addr, cell.to_bytes(4, "big"))
        tile.run_streams(streams)

    def test_flag_bit_corruption_detected(self):
        """Setting a stray final flag inflates counts -> caught."""
        tile = fresh_tile()
        streams = planted_streams(2)
        sym = 0  # symbol 0 never appears in patterns, so stray flag fires
        addr = tile.plan.stt_base + sym * 4
        cell = int.from_bytes(tile.local_store.read(addr, 4), "big")
        tile.local_store.write(addr, (cell | 1).to_bytes(4, "big"))
        with pytest.raises(TileError, match="mismatch"):
            tile.run_streams(streams)


class TestStateAreaCorruption:
    def test_poisoned_saved_state_detected(self):
        """A bogus saved state pointer changes counts -> caught.

        Lane 0 carries pattern[0] minus its first symbol: from the true
        start state that is no match, but from the poisoned state (the
        start state after consuming the first symbol) it completes one —
        a deterministic off-by-one the verifier must flag."""
        tile = fresh_tile()
        p0 = PATTERNS[0]
        lane0 = (bytes(p0[1:]) + bytes(126))[:126]
        streams = [lane0] + [bytes(126) for _ in range(15)]
        # The kernel used for the first chunk: min(2016, 1008) = 1008
        # transition bytes; run_streams calls its write_start_states.
        kernel = tile.kernel_for(1008, version=4)
        tile.run_streams(streams)  # clean run verifies

        after_first = tile.dfa.step(tile.dfa.start, p0[0])
        poison_ptr = tile.stt.state_to_pointer(after_first)
        original = kernel.write_start_states

        def poisoned(ls):
            original(ls)
            ls.write(kernel.states_base, poison_ptr.to_bytes(4, "big")
                     + bytes(12))

        kernel.write_start_states = poisoned
        try:
            with pytest.raises(TileError, match="mismatch"):
                tile.run_streams(streams)
        finally:
            kernel.write_start_states = original


class TestArtifactCorruption:
    def test_every_section_protected(self):
        fold = case_fold_32()
        dfa = build_dfa(PATTERNS, 32)
        blob = pack_filter(dfa, fold)
        # Hit header, fold table, transitions, finals, outputs, crc.
        probe_points = [5, 100, 400, len(blob) - 30, len(blob) - 2]
        for pos in probe_points:
            corrupted = bytearray(blob)
            corrupted[pos] ^= 0x08
            with pytest.raises(ArtifactError):
                unpack_filter(bytes(corrupted))
