"""The paper's headline claims, pinned end to end."""

import pytest

from repro.analysis import (
    PAPER_CHIP_GBPS,
    PAPER_TILE_GBPS,
    gbps_from_cycles_per_transition,
    spes_for_line_rate,
)
from repro.core.composition import parallel
from repro.core.planner import FIGURE3_CASES
from repro.core.schedule import double_buffer_schedule
from repro.core.tile import DFATile
from repro.dfa import build_dfa
from repro.workloads import random_signatures, streams_for_tile


class TestHeadlineClaims:
    def test_two_spes_filter_10gbps_with_paper_numbers(self):
        """Abstract: 'two processing elements alone ... provide sufficient
        computational power to filter a network link with bit rates in
        excess of 10 Gbps'."""
        assert 2 * PAPER_TILE_GBPS > 10.0
        assert spes_for_line_rate(10.0) == 2

    def test_two_spes_exceed_10gbps_with_measured_numbers(self):
        """Same claim against OUR simulator's peak kernel."""
        patterns = random_signatures(8, 3, 7, seed=200)
        tile = DFATile(build_dfa(patterns, 32))
        streams = streams_for_tile(192, patterns, seed=201)
        result = tile.run_streams(streams, version=4)
        measured = result.throughput_gbps()
        assert 2 * measured > 8.0  # shape holds with margin

    def test_chip_level_aggregate(self):
        comp = parallel(build_dfa(random_signatures(4, 3, 5, seed=202),
                                  32), ways=8)
        assert comp.throughput_gbps(PAPER_TILE_GBPS) == \
            pytest.approx(PAPER_CHIP_GBPS)

    def test_tile_state_budget_around_1500(self):
        """'a state space comprising approximately 1500 states'."""
        assert 1500 <= FIGURE3_CASES[0].max_states <= 1750

    def test_transfers_hidden_at_every_figure3_block_size(self):
        """'The same considerations hold even when smaller block sizes are
        chosen, down to 512 bytes.'"""
        from repro.cell.memory import BandwidthModel
        bw = BandwidthModel()
        for size in (512, 4096, 8192, 16384):
            compute = size * 8 / (PAPER_TILE_GBPS * 1e9)
            transfer = bw.transfer_seconds(size, block_size=size)
            sched = double_buffer_schedule(6, compute, transfer)
            # all transfers except the first hidden
            assert sched.exposed_transfer_time() == \
                pytest.approx(transfer, rel=0.01)

    def test_hiding_headroom_shrinks_below_512_bytes(self):
        """Below ~512 B the DMA setup overhead eats the hiding headroom:
        the transfer/compute ratio at 64 B is several times worse than at
        16 KB — the reason the paper stops at 512 B."""
        from repro.cell.memory import BandwidthModel
        bw = BandwidthModel()

        def ratio(size):
            compute = size * 8 / (PAPER_TILE_GBPS * 1e9)
            return bw.transfer_seconds(size, block_size=size) / compute

        assert ratio(64) > 2 * ratio(16 * 1024)
