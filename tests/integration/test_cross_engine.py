"""Cross-engine validation: every matching path in the repository must
agree on the same workload — the reproduction's master invariant."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import NaiveMatcher, WuManberMatcher
from repro.core.composition import parallel, series
from repro.core.engine import VectorDFAEngine
from repro.core.matcher import CellStringMatcher
from repro.core.planner import plan_tile
from repro.core.replacement import ReplacementMatcher
from repro.core.tile import DFATile
from repro.dfa import AhoCorasick, build_dfa, case_fold_32, \
    partition_patterns
from repro.workloads import plant_matches, random_payload, \
    random_signatures, streams_for_tile


@pytest.fixture(scope="module")
def workload():
    patterns = random_signatures(10, 3, 7, seed=100)
    block = plant_matches(random_payload(4096, seed=101), patterns, 30,
                          seed=102)
    return patterns, block


class TestEventEquivalence:
    def test_ac_naive_wm_same_events(self, workload):
        patterns, block = workload
        ref = NaiveMatcher(patterns).find_all(block)
        assert AhoCorasick(patterns, 32).find_all(block) == ref
        assert WuManberMatcher(patterns).find_all(block) == ref


class TestCountEquivalence:
    def test_engine_equals_reference(self, workload):
        patterns, block = workload
        dfa = build_dfa(patterns, 32)
        assert VectorDFAEngine(dfa).count_block(block) == \
            dfa.count_matches(block)

    def test_composition_equals_engine(self, workload):
        patterns, block = workload
        dfa = build_dfa(patterns, 32)
        engine_count = VectorDFAEngine(dfa).count_block(block)
        assert parallel(dfa, 4).scan_block(block).total_matches == \
            engine_count
        slices = partition_patterns(patterns, 20).dfas
        assert series(slices).scan_block(block).total_matches == \
            engine_count

    def test_replacement_equals_engine(self, workload):
        patterns, block = workload
        dfa = build_dfa(patterns, 32)
        engine_count = VectorDFAEngine(dfa).count_block(block)
        rm = ReplacementMatcher.from_patterns(patterns,
                                              states_per_slice=25)
        assert rm.scan_block(block)[0] == engine_count


class TestSimulatorEquivalence:
    """The SPU-simulated kernels against the numpy engine and reference —
    the strongest end-to-end check in the repository."""

    def test_tile_simulation_matches_engine(self):
        patterns = random_signatures(6, 3, 6, seed=103)
        dfa = build_dfa(patterns, 32)
        tile = DFATile(dfa, plan=plan_tile(buffer_bytes=1024))
        engine = VectorDFAEngine(dfa)
        streams = streams_for_tile(96, patterns, seed=104)
        tile_result = tile.run_streams(streams)  # verify=True built in
        engine_result = engine.run_streams(streams)
        assert tile_result.counts == engine_result.counts.tolist()

    @pytest.mark.parametrize("version", [1, 2, 3, 4, 5])
    def test_all_kernel_versions_agree(self, version):
        patterns = random_signatures(5, 3, 5, seed=105)
        dfa = build_dfa(patterns, 32)
        tile = DFATile(dfa, plan=plan_tile(buffer_bytes=1024))
        if version == 1:
            streams = streams_for_tile(480, patterns, num_streams=1,
                                       seed=106)
        else:
            streams = streams_for_tile(96, patterns, seed=106)
        result = tile.run_streams(streams, version=version)
        assert result.counts == tile.reference_counts(streams)


class TestMatcherEndToEnd:
    def test_matcher_equals_naive_in_folded_space(self):
        fold = case_fold_32()
        words = [b"VIRUS", b"WORM", b"EXPLOIT", b"RUS"]
        matcher = CellStringMatcher(words)
        raw = (b"a Virus carrying a worm exploited the VIRUSWORM "
               b"and the wOrM laughed")
        folded = fold.fold_bytes(raw)
        naive = NaiveMatcher([fold.fold_bytes(w) for w in words])
        assert matcher.scan(raw).total_matches == naive.count(folded)

    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=0, max_size=400))
    def test_matcher_arbitrary_bytes_property(self, raw):
        fold = case_fold_32()
        words = [b"ABC", b"XYZ", b"AA"]
        matcher = CellStringMatcher(words)
        naive = NaiveMatcher([fold.fold_bytes(w) for w in words])
        assert matcher.scan(raw).total_matches == \
            naive.count(fold.fold_bytes(raw))
