"""The paper's quoted claims, as an executable checklist.

Each test quotes a sentence from Scarpazza, Villa & Petrini (IPPS 2007)
and asserts its reproduced counterpart in this repository — the reading
guide for a reviewer checking reproduction coverage claim by claim.
"""

import pytest

from repro.analysis import (
    PAPER_TABLE1,
    PAPER_TILE_GBPS,
    gbps_from_cycles_per_transition,
    spes_for_line_rate,
)
from repro.cell.local_store import LS_SIZE
from repro.cell.memory import BandwidthModel
from repro.cell.spu import CLOCK_HZ
from repro.core.planner import FIGURE3_CASES
from repro.core.replacement import effective_gbps
from repro.core.stt import STTImage, row_stride
from repro.dfa import AhoCorasick, build_dfa
from repro.workloads import adversarial_payload, random_signatures


class TestSection1Claims:
    def test_two_spes_filter_10gbps(self):
        """'two processing elements alone, out of the eight available on
        one Cell processor provide sufficient computational power to
        filter a network link with bit rates in excess of 10 Gbps'"""
        assert 2 * PAPER_TILE_GBPS > 10.0
        assert spes_for_line_rate(10.0) == 2

    def test_dfa_workload_is_content_independent(self):
        """'their workload is content-independent, which makes them
        immune from overload attacks based on malicious contents'"""
        patterns = random_signatures(5, 4, 8, seed=120)
        dfa = build_dfa(patterns, 32)
        benign = bytes(5000)
        hostile = adversarial_payload(patterns[0], 5000)
        assert len(dfa.state_trace(benign)) == len(dfa.state_trace(hostile))


class TestSection2Claims:
    def test_spu_clock_is_3_2_ghz(self):
        """'running at 3.2 GHz'"""
        assert CLOCK_HZ == 3.2e9

    def test_local_store_is_256_kb(self):
        """'they access a 256 kbyte local store (LS) memory'"""
        assert LS_SIZE == 256 * 1024

    def test_memory_peak_25_6(self):
        """'For transfers involving main memory, the peak bandwidth is
        25.6 Gbyte/s'"""
        assert BandwidthModel().mic_peak == 25.6e9

    def test_blocks_of_256_bytes_reach_near_peak(self):
        """'bandwidth values close to the peak can be reached only when
        transferred blocks are at least 256 bytes or larger'"""
        bw = BandwidthModel()
        assert bw.aggregate(8, 256) > 0.85 * bw.heavy_traffic_aggregate
        assert bw.aggregate(8, 64) < 0.6 * bw.heavy_traffic_aggregate


class TestSection4Claims:
    def test_stt_row_per_state_column_per_input(self):
        """'a complete table of words, having a row for each state and a
        column for each of the possible inputs'"""
        dfa = build_dfa([bytes([1, 2])], 32)
        img = STTImage.from_dfa(dfa, 0)
        assert img.size_bytes == dfa.num_states * 32 * 4

    def test_pointer_low_bits_encode_finality(self):
        """'the last bits in these pointers are zero. Therefore, these
        last bits can be used to encode whether the next state is final'"""
        dfa = build_dfa([bytes([7])], 32)
        img = STTImage.from_dfa(dfa, 0x8000)
        cell = img.cell(dfa.start, 7)
        assert cell & 1 == 1                      # flag set
        state, final = img.pointer_to_state(cell)
        assert final and state in dfa.finals

    def test_tile_state_bounds_1520_to_1712(self):
        """'a realistic upper bound for the number of states of a tile is
        between 1520 and 1712'"""
        states = [plan.max_states for plan in FIGURE3_CASES]
        assert min(states) == 1520
        assert max(states) == 1712

    def test_peak_throughput_5_11_gbps(self):
        """'the highest possible throughput attainable by a single DFA
        tile, which is 5.11 Gbps' (= 5.01 cycles/transition @ 3.2 GHz)"""
        row = PAPER_TABLE1[4]
        assert gbps_from_cycles_per_transition(
            row.cycles_per_transition) == pytest.approx(5.11, abs=0.01)

    def test_simd_runs_16_streams(self):
        """'A SIMD-ized implementation which processes 16 streams in
        parallel'"""
        from repro.core.kernels import KERNEL_SPECS, SIMD_LANES
        assert SIMD_LANES == 16
        assert KERNEL_SPECS[2].streams == 16

    def test_transfer_hidden_16kb(self):
        """'the time required to transfer a block of 16 kbyte is 5.94 us,
        while the time required to process it is 25.64 us'"""
        bw = BandwidthModel()
        transfer = bw.transfer_seconds(16 * 1024)
        compute = 16 * 1024 * 8 / (PAPER_TILE_GBPS * 1e9)
        assert transfer * 1e6 == pytest.approx(5.94, abs=0.05)
        assert compute * 1e6 == pytest.approx(25.64, abs=0.05)
        assert compute > transfer


class TestSection5Claims:
    def test_parallel_tiles_double_throughput(self):
        """'the combined throughput is effectively doubled'"""
        from repro.core.composition import parallel
        dfa = build_dfa([bytes([1, 2])], 32)
        assert parallel(dfa, 2).throughput_gbps(PAPER_TILE_GBPS) == \
            pytest.approx(2 * PAPER_TILE_GBPS)

    def test_chip_limit_40_88(self):
        """'Mapping a DFA tile to each of the 8 SPEs in a Cell BE leads to
        a performance limit of 5.11 x 8 = 40.88 Gbps'"""
        assert 8 * PAPER_TILE_GBPS == pytest.approx(40.88)

    def test_blade_81_76(self):
        """'a Cell Blade hosting two processors can reach 81.76 Gbps'"""
        from repro.cell.blade import CellBlade
        assert CellBlade(1 << 20).aggregate_gbps() == pytest.approx(81.76)

    def test_series_roughly_quadruple_dictionary(self):
        """Figure 7: 'a dictionary size which is roughly four times larger
        than the one which fits in a single tile'"""
        from repro.core.composition import mixed
        slices = [build_dfa([bytes([i, i, i])], 32) for i in range(1, 5)]
        comp = mixed(slices, ways=2)
        assert comp.total_states > 3 * max(d.num_states for d in slices)


class TestSection6Claims:
    def test_half_size_stt_roughly_800_states(self):
        """'approximately 100 kbytes, which roughly correspond to 800
        states'"""
        from repro.core.replacement import HALF_TILE_STATES, \
            HALF_TILE_STT_BYTES
        assert HALF_TILE_STATES == 800
        assert HALF_TILE_STT_BYTES / row_stride(32) >= 700

    def test_effective_bandwidth_law(self):
        """'each SPE can now provide an effective bandwidth of
        5.11/(2(n-1)) Gbps'"""
        for n in range(2, 8):
            assert effective_gbps(n) == pytest.approx(
                5.11 / (2 * (n - 1)))

    def test_smooth_degradation(self):
        """'virtually unlimited dictionary sizes, at the price of a smooth
        degradation in performance'"""
        values = [effective_gbps(n) for n in range(2, 30)]
        drops = [a - b for a, b in zip(values, values[1:])]
        assert all(d > 0 for d in drops)          # monotone decay
        assert all(a >= b for a, b in zip(drops, drops[1:]))  # flattening
