"""Additional end-to-end slices: profiler on every kernel version, the
module CLI entry point, and report-format consistency."""

import subprocess
import sys

import pytest

from repro.cell.isa import EVEN, ODD
from repro.cell.profiler import profile
from repro.core.planner import plan_tile
from repro.core.tile import DFATile
from repro.dfa import build_dfa
from repro.workloads import random_signatures, streams_for_tile

PATTERNS = random_signatures(5, 3, 6, seed=110)


@pytest.fixture(scope="module")
def tile():
    return DFATile(build_dfa(PATTERNS, 32),
                   plan=plan_tile(buffer_bytes=2048))


class TestProfilerAcrossVersions:
    @pytest.mark.parametrize("version", [1, 2, 3, 4, 5])
    def test_profile_consistency(self, tile, version):
        transitions = 480 if version == 1 else 96 * 16
        per_stream = 480 if version == 1 else 96
        kernel = tile.kernel_for(transitions, version)
        kernel.write_start_states(tile.local_store)
        tile.local_store.write(kernel.input_base,
                               bytes(kernel.transitions))
        tile.spu.reset()
        prof = profile(tile.spu, kernel.program)
        # One STT load per transition; the scalar kernel also reloads
        # the input quadword every byte (plus the one-ahead preamble).
        expected = 2 * kernel.transitions + 1 if version == 1 \
            else kernel.transitions
        assert prof.opcode_counts["lqx"] == expected
        assert prof.dynamic_instructions == prof.stats.instructions
        assert prof.issue_bound_cycles <= prof.stats.cycles

    def test_spilled_version_has_heavier_odd_pipe(self, tile):
        def odd_fraction(version):
            kernel = tile.kernel_for(96 * 16, version)
            kernel.write_start_states(tile.local_store)
            tile.local_store.write(kernel.input_base,
                                   bytes(kernel.transitions))
            tile.spu.reset()
            prof = profile(tile.spu, kernel.program)
            return 1.0 - prof.even_fraction

        assert odd_fraction(5) > odd_fraction(4)


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "info"],
            capture_output=True, text=True, timeout=120)
        assert result.returncode == 0
        assert "5.11" in result.stdout

    def test_scan_via_subprocess(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "scan", "--pattern", "worm",
             "--text", "a WORM!"],
            capture_output=True, text=True, timeout=120)
        assert result.returncode == 0
        assert "matches       : 1" in result.stdout


class TestTileThroughputConsistency:
    def test_tile_result_matches_spu_stats(self, tile):
        streams = streams_for_tile(96, PATTERNS, seed=111)
        result = tile.run_streams(streams, version=4)
        # Gbps derived two ways must agree.
        via_cpt = 8 * 3.2e9 / result.cycles_per_transition / 1e9
        assert result.throughput_gbps() == pytest.approx(via_cpt)

    def test_versions_share_reference(self, tile):
        """Different kernel versions on the same streams: all verified,
        all equal (same stream lengths)."""
        streams = streams_for_tile(96, PATTERNS, seed=112)
        totals = {v: tile.run_streams(streams, version=v).total_matches
                  for v in (2, 3, 5)}
        assert len(set(totals.values())) == 1
