"""The staging-ring scan pipeline: serial parity across buffer
boundaries, fold-composed raw-byte tables, streaming entry points
(``count_stream`` / ``scan_file`` / matcher ``scan_iter``), and
lifecycle hygiene (graceful close, no leaked segments).

Ring capacities here are tiny on purpose: every scan cycles many staged
buffers, so cross-buffer carry and incremental repair are exercised on
every assertion, not just on multi-GB inputs.
"""

import pathlib
import subprocess
import sys

import numpy as np
import pytest

from repro.core.engine import VectorDFAEngine
from repro.core.matcher import CellStringMatcher
from repro.dfa import build_dfa
from repro.dfa.alphabet import case_fold_32
from repro.parallel import ShardedScanner, StagingRing
from repro.workloads import plant_matches, random_payload, \
    random_signatures

PATTERNS = random_signatures(10, 3, 9, seed=17)
DFA = build_dfa(PATTERNS, 32)
ENGINE = VectorDFAEngine(DFA)


def planted(nbytes, seed):
    return plant_matches(random_payload(nbytes, seed=seed), PATTERNS,
                         max(1, nbytes // 300), seed=seed + 1)


def tiny_ring(workers, ring_bytes=4096, **kw):
    """A pooled scanner forced through many small staged buffers."""
    kw.setdefault("min_shard_bytes", 0)
    return ShardedScanner(DFA, workers=workers, ring_bytes=ring_bytes,
                          **kw)


# -- pipelined block parity --------------------------------------------------------


@pytest.mark.parametrize("workers", [2, 3])
def test_pipelined_counts_match_serial_across_many_buffers(workers):
    block = planted(100_000, 91)
    expected = ENGINE.count_block_reference(block)
    with tiny_ring(workers) as scanner:
        assert scanner.count_block(block) == expected
        assert scanner.last_scan_stats["buffers"] >= 20
        assert scanner.last_scan_stats["bytes"] == len(block)


def test_matches_straddling_staged_buffer_boundaries():
    """A block that is one long pattern run, staged through a buffer
    whose size is coprime to the pattern length: every single buffer
    boundary (and shard boundary) falls inside a match, so the
    cross-buffer carry and the incremental repair must both be exact."""
    pattern = bytes([1, 2, 3, 4, 5, 6, 7])
    dfa = build_dfa([pattern], 32)
    block = pattern * 3000 + pattern[:4]
    expected = VectorDFAEngine(dfa).count_block_reference(block)
    assert expected == 3000
    for workers in (2, 4):
        with ShardedScanner(dfa, workers=workers, min_shard_bytes=0,
                            ring_bytes=1000, chunks=8) as scanner:
            assert scanner.count_block(block) == expected
            assert scanner.last_scan_stats["buffers"] == 22
            # Entry guesses cannot survive a pattern run; the repair
            # path must actually have fired.
            assert scanner.last_scan_stats["repaired_shards"] > 0


def test_multi_dfa_pipeline_counts_are_per_slice():
    a = build_dfa([bytes([1, 2, 3])], 32)
    b = build_dfa([bytes([4, 5])], 32)
    block = (bytes([1, 2, 3]) * 5 + bytes([4, 5]) * 7) * 700
    ea = VectorDFAEngine(a).count_block_reference(block)
    eb = VectorDFAEngine(b).count_block_reference(block)
    with ShardedScanner([a, b], workers=2, min_shard_bytes=0,
                        ring_bytes=2048) as scanner:
        assert scanner.count_per_dfa(block) == [ea, eb]


# -- streaming entry points --------------------------------------------------------


@pytest.mark.parametrize("workers", [1, 2])
def test_count_stream_chunk_boundaries_are_invisible(workers):
    block = planted(50_000, 23)
    expected = ENGINE.count_block_reference(block)
    rng = np.random.default_rng(5)
    cuts = np.sort(rng.integers(0, len(block), 40))
    chunks = [block[lo:hi] for lo, hi in
              zip(np.r_[0, cuts], np.r_[cuts, len(block)])]
    assert b"".join(chunks) == block
    with tiny_ring(workers) as scanner:
        assert scanner.count_stream(iter(chunks)) == expected


def test_count_stream_handles_empty_and_tiny_chunks():
    block = planted(5_000, 29)
    expected = ENGINE.count_block_reference(block)
    chunks = [b"", block[:1], b"", block[1:7], block[7:]]
    for workers in (1, 2):
        with tiny_ring(workers, ring_bytes=512) as scanner:
            assert scanner.count_stream(chunks) == expected
    with tiny_ring(2) as scanner:
        assert scanner.count_stream([]) == 0


@pytest.mark.parametrize("workers", [1, 2])
def test_scan_file_larger_than_the_ring(tmp_path, workers):
    block = planted(60_000, 41)
    expected = ENGINE.count_block_reference(block)
    path = tmp_path / "traffic.bin"
    path.write_bytes(block)
    with tiny_ring(workers) as scanner:
        assert scanner.scan_file(path) == expected           # by path
        with open(path, "rb") as f:
            assert scanner.scan_file(f) == expected          # by object
        assert scanner.last_scan_stats["bytes"] == len(block)


# -- fold-composed raw-byte tables -------------------------------------------------


def test_fold_composed_table_matches_folded_reference():
    fold = case_fold_32()
    raw = (b"The Quick Brown Fox SELECTs a PASSWD file \xff\x80\x00. "
           * 400)
    patterns = [fold.fold_bytes(p) for p in (b"select", b"passwd")]
    dfa = build_dfa(patterns, 32)
    expected = VectorDFAEngine(dfa).count_block_reference(
        fold.fold_bytes(raw))
    assert expected > 0
    for workers in (1, 2):
        with ShardedScanner(dfa, workers=workers, fold=fold,
                            min_shard_bytes=0,
                            ring_bytes=2048) as scanner:
            assert scanner.count_block(raw) == expected
            assert scanner.count_stream([raw[:5000], raw[5000:]]) \
                == expected


def test_fold_composed_weighted_counts_match_event_semantics():
    fold = case_fold_32()
    patterns = [fold.fold_bytes(p) for p in (b"select", b"elect")]
    dfa = build_dfa(patterns, 32)
    raw = b" SELECT " * 900
    for workers in (1, 2):
        with ShardedScanner(dfa, workers=workers, fold=fold,
                            weighted=True, min_shard_bytes=0,
                            ring_bytes=1536) as scanner:
            assert scanner.count_block(raw) == 1800   # 2 entries x 900


# -- matcher streaming API ---------------------------------------------------------


def test_matcher_scan_iter_matches_block_scan():
    raw = plant_matches(random_payload(40_000, 256, seed=61),
                        [b"select", b"passwd", b"elect"], 90, seed=62)
    with CellStringMatcher([b"select", b"passwd", b"elect"]) as matcher:
        serial = matcher.scan(raw).total_matches
        chunks = [raw[i:i + 1234] for i in range(0, len(raw), 1234)]
        for workers in (1, 2):
            rep = matcher.scan_iter(iter(chunks), workers=workers)
            assert rep.total_matches == serial
            assert rep.bytes_scanned == len(raw)
            assert rep.workers == workers


def test_matcher_scan_file_matches_block_scan(tmp_path):
    raw = plant_matches(random_payload(30_000, 256, seed=71),
                        [b"union", b"select"], 70, seed=72)
    path = tmp_path / "stream.bin"
    path.write_bytes(raw)
    with CellStringMatcher([b"union", b"select"]) as matcher:
        serial = matcher.scan(raw).total_matches
        for workers in (1, 2):
            rep = matcher.scan_file(path, workers=workers)
            assert rep.total_matches == serial
            assert rep.bytes_scanned == len(raw)


def test_matcher_scan_iter_accepts_str_chunks():
    with CellStringMatcher([b"select"]) as matcher:
        rep = matcher.scan_iter(["no hits here ", "SELECT one"])
        assert rep.total_matches == 1


# -- lifecycle ---------------------------------------------------------------------


def test_ring_validation_and_idempotent_close():
    with pytest.raises(ValueError):
        StagingRing(0)
    with pytest.raises(ValueError):
        StagingRing(1024, depth=1)
    ring = StagingRing(1024, depth=3)
    assert len(ring.names) == 3
    ring.close()
    ring.close()


def test_close_is_graceful_and_idempotent():
    scanner = tiny_ring(2)
    block = planted(20_000, 81)
    assert scanner.count_block(block) == \
        ENGINE.count_block_reference(block)
    workers = scanner._pool._pool        # the live worker processes
    scanner.close()
    assert scanner._pool is None and scanner._ring is None
    for p in workers:
        p.join(timeout=10)
        assert p.exitcode == 0           # graceful exit, not SIGTERM
    scanner.close()


def test_no_shared_memory_segments_leak(tmp_path):
    """A full pooled scan in a fresh interpreter must exit without any
    resource_tracker complaints — leaked segments are impossible."""
    src = pathlib.Path(__file__).resolve().parents[2] / "src"
    code = (
        "from repro.dfa import build_dfa\n"
        "from repro.parallel import ShardedScanner\n"
        "dfa = build_dfa([bytes([1, 2, 3])], 32)\n"
        "with ShardedScanner(dfa, workers=2, min_shard_bytes=0,\n"
        "                    ring_bytes=4096) as s:\n"
        "    print(s.count_block(bytes([1, 2, 3]) * 2000))\n"
    )
    proc = subprocess.run([sys.executable, "-c", code],
                          capture_output=True, text=True, timeout=120,
                          env={"PYTHONPATH": str(src), "PATH": "/usr/bin"})
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "2000"
    assert "leaked" not in proc.stderr
    assert "resource_tracker" not in proc.stderr
