"""SharedSTT: artifact placement, attachment, and lifetime."""

import numpy as np
import pytest

from repro.core.engine import build_flat_table, build_weight_table
from repro.dfa import build_dfa
from repro.dfa.alphabet import case_fold_32, identity_fold
from repro.parallel import SharedSTT, SharedSTTError

PATTERNS = [b"\x01\x02\x03", b"\x02\x03", b"\x1f" * 4]


@pytest.fixture
def dfa():
    return build_dfa(PATTERNS, 32)


def test_segment_holds_the_exact_artifacts(dfa):
    flat, stride = build_flat_table(dfa.transitions, dfa.final_mask)
    weights = build_weight_table(dfa)
    with SharedSTT(dfa) as stt:
        assert np.array_equal(stt.flat, flat)
        assert np.array_equal(stt.weights, weights)
        assert np.array_equal(stt.final, dfa.final_mask)
        assert stt.fold_table is None
        assert stt.num_states == dfa.num_states
        assert stt.alphabet_size == dfa.alphabet_size
        assert stt.start == dfa.start
        assert stt.size_bytes >= flat.nbytes + weights.nbytes


def test_attach_sees_the_creators_bytes(dfa):
    with SharedSTT(dfa) as stt:
        peer = SharedSTT.attach(stt.meta())
        try:
            assert np.array_equal(peer.flat, stt.flat)
            assert peer.start == stt.start
            # Same physical memory: a write on one side is visible on the
            # other (we restore it immediately).
            original = int(stt.flat[0])
            stt.flat[0] = original ^ 1
            assert int(peer.flat[0]) == original ^ 1
            stt.flat[0] = original
        finally:
            peer.close()


def test_attached_scanner_matches_local_scan(dfa):
    data = bytes([1, 2, 3, 4, 2, 3, 31, 31, 31, 31, 0]) * 40
    from repro.core.engine import VectorDFAEngine
    expected = VectorDFAEngine(dfa).count_block_reference(data)
    with SharedSTT(dfa) as stt:
        peer = SharedSTT.attach(stt.meta())
        try:
            scanner = peer.scanner()
            ptr = scanner.pointer(scanner.start)
            count = 0
            for sym in data:
                ptr = scanner.step_scalar(ptr, sym)
                count += ptr & 1
            assert count == expected
        finally:
            # The scanner's table is a view into the segment; drop it
            # before closing or the mapping cannot be released.
            scanner = None
            peer.close()


def test_meta_is_a_picklable_copy(dfa):
    import pickle
    with SharedSTT(dfa) as stt:
        meta = stt.meta()
        assert pickle.loads(pickle.dumps(meta)) == meta
        meta["start"] = 999     # mutating the copy must not leak back
        assert stt.meta()["start"] == dfa.start


def test_owner_close_unlinks_the_segment(dfa):
    stt = SharedSTT(dfa)
    meta = stt.meta()
    stt.close()
    with pytest.raises(FileNotFoundError):
        SharedSTT.attach(meta)
    stt.close()     # idempotent


def test_fold_table_roundtrip(dfa):
    fold = case_fold_32()
    with SharedSTT(dfa, fold=fold) as stt:
        assert np.array_equal(stt.fold_table, fold.np_table)
        peer = SharedSTT.attach(stt.meta())
        try:
            assert np.array_equal(peer.fold_table, fold.np_table)
        finally:
            peer.close()


def test_fold_width_mismatch_rejected(dfa):
    with pytest.raises(SharedSTTError):
        SharedSTT(dfa, fold=identity_fold(256))
