"""ShardedScanner: exactness against the reference scan, edge shapes,
weighted semantics, stream batches, and the matcher's workers= path.

Blocks are kept small — the point here is bit-identical counts across
every sharding configuration, not throughput (see
benchmarks/bench_parallel_scaling.py for that).
"""

import numpy as np
import pytest

from repro.core.engine import VectorDFAEngine
from repro.core.matcher import CellStringMatcher, MatcherError
from repro.dfa import build_dfa
from repro.dfa.alphabet import case_fold_32
from repro.parallel import ShardedScanner, ShardedScanError
from repro.workloads import plant_matches, random_payload, \
    random_signatures

PATTERNS = random_signatures(12, 3, 8, seed=7)
DFA = build_dfa(PATTERNS, 32)
ENGINE = VectorDFAEngine(DFA)


def planted(nbytes, seed):
    return plant_matches(random_payload(nbytes, seed=seed), PATTERNS,
                         max(1, nbytes // 400), seed=seed + 1)


def pooled(workers, **kw):
    """A scanner whose pool path is always taken (no small-input bypass)."""
    kw.setdefault("min_shard_bytes", 0)
    return ShardedScanner(DFA, workers=workers, **kw)


# -- exactness ---------------------------------------------------------------------


@pytest.mark.parametrize("workers", [1, 2, 3])
@pytest.mark.parametrize("seed", [11, 12, 13])
def test_counts_match_reference_on_random_corpora(workers, seed):
    block = planted(20_000 + 37 * seed, seed)
    expected = ENGINE.count_block_reference(block)
    with pooled(workers, chunks=17) as scanner:
        assert scanner.count_block(block) == expected


def test_matches_straddling_every_shard_boundary():
    """A block that is one long pattern run: any shard boundary falls
    inside a match, so every entry-state guess is wrong and the fixpoint
    must repair all of them."""
    pattern = bytes([1, 2, 3, 4, 5, 6, 7])
    dfa = build_dfa([pattern], 32)
    engine = VectorDFAEngine(dfa)
    block = pattern * 1000 + pattern[:3]     # 7003 bytes, 1000 matches
    expected = engine.count_block_reference(block)
    assert expected == 1000
    for workers in (2, 3, 4, 5):
        with ShardedScanner(dfa, workers=workers, chunks=7,
                            min_shard_bytes=0) as scanner:
            assert scanner.count_block(block) == expected


@pytest.mark.parametrize("block", [b"", bytes([3])], ids=["empty", "1byte"])
def test_degenerate_blocks(block):
    expected = ENGINE.count_block_reference(block)
    with pooled(2) as scanner:
        assert scanner.count_block(block) == expected


def test_more_shards_than_bytes():
    block = bytes([1, 2, 3])
    with pooled(4) as scanner:
        assert scanner.count_block(block) == \
            ENGINE.count_block_reference(block)


def test_workers_1_is_the_in_process_path():
    block = planted(8_000, 21)
    with ShardedScanner(DFA, workers=1) as scanner:
        assert scanner._pool is None
        assert scanner.count_block(block) == \
            ENGINE.count_block_reference(block)


def test_small_input_bypasses_the_pool():
    block = planted(1_000, 22)
    with ShardedScanner(DFA, workers=2,
                        min_shard_bytes=1 << 16) as scanner:
        assert scanner._pool is not None
        assert scanner.count_block(block) == \
            ENGINE.count_block_reference(block)


# -- fold and validation -----------------------------------------------------------


def test_workers_fold_raw_traffic():
    fold = case_fold_32()
    raw = b"The Quick Brown Fox SELECTs a PASSWD file. " * 300
    patterns = [fold.fold_bytes(p) for p in (b"select", b"passwd")]
    dfa = build_dfa(patterns, 32)
    expected = VectorDFAEngine(dfa).count_block_reference(
        fold.fold_bytes(raw))
    assert expected > 0
    for workers in (1, 3):
        with ShardedScanner(dfa, workers=workers, fold=fold,
                            min_shard_bytes=0) as scanner:
            assert scanner.count_block(raw) == expected


@pytest.mark.parametrize("workers", [1, 2])
def test_out_of_alphabet_symbols_rejected_without_fold(workers):
    with pooled(workers) as scanner:
        with pytest.raises(ShardedScanError):
            scanner.count_block(bytes([1, 200, 3]) * 100)


def test_scan_after_close_raises():
    scanner = ShardedScanner(DFA, workers=1)
    scanner.close()
    with pytest.raises(ShardedScanError):
        scanner.count_block(bytes([1, 2, 3]))
    with pytest.raises(ShardedScanError):
        scanner.count_per_dfa(bytes([1]))
    with pytest.raises(ShardedScanError):
        scanner.run_streams([bytes([1])])
    scanner.close()     # close stays idempotent


def test_constructor_validation():
    with pytest.raises(ShardedScanError):
        ShardedScanner([])
    with pytest.raises(ShardedScanError):
        ShardedScanner(DFA, workers=0)
    with pytest.raises(ShardedScanError):
        ShardedScanner(DFA, chunks=0)
    with pytest.raises(ShardedScanError):
        ShardedScanner([DFA, build_dfa([b"\x01"], 16)])


# -- weighted counting and multi-DFA ------------------------------------------------


def test_weighted_counts_suffix_patterns_per_entry():
    """'elect' inside 'select': the weighted mode counts both dictionary
    entries at the shared final position, matching event semantics."""
    fold = case_fold_32()
    patterns = [fold.fold_bytes(p) for p in (b"select", b"elect")]
    dfa = build_dfa(patterns, 32)
    block = fold.fold_bytes(b" select " * 500)
    plain = VectorDFAEngine(dfa).count_block_reference(block)
    for workers in (1, 2):
        with ShardedScanner(dfa, workers=workers, weighted=True,
                            min_shard_bytes=0) as scanner:
            assert scanner.count_block(block) == 1000    # 2 entries x 500
        with ShardedScanner(dfa, workers=workers,
                            min_shard_bytes=0) as scanner:
            assert scanner.count_block(block) == plain == 500


def test_multi_dfa_counts_are_per_slice():
    a = build_dfa([bytes([1, 2, 3])], 32)
    b = build_dfa([bytes([4, 5])], 32)
    block = (bytes([1, 2, 3]) * 5 + bytes([4, 5]) * 7) * 40
    ea = VectorDFAEngine(a).count_block_reference(block)
    eb = VectorDFAEngine(b).count_block_reference(block)
    with ShardedScanner([a, b], workers=2, min_shard_bytes=0) as scanner:
        assert scanner.count_per_dfa(block) == [ea, eb]
        assert scanner.count_block(block) == ea + eb


# -- stream batches ----------------------------------------------------------------


def test_run_streams_matches_engine():
    streams = [planted(801, 30 + i) for i in range(7)]
    expected = ENGINE.run_streams(streams)
    for workers in (1, 2, 3):
        with pooled(workers) as scanner:
            got = scanner.run_streams(streams)
            assert np.array_equal(got.counts, expected.counts)
            assert np.array_equal(got.final_states, expected.final_states)


def test_run_streams_validation():
    with pooled(2) as scanner:
        with pytest.raises(ShardedScanError):
            scanner.run_streams([])
        with pytest.raises(ShardedScanError):
            scanner.run_streams([b"\x01\x02", b"\x01"])
    a = build_dfa([bytes([1])], 32)
    b = build_dfa([bytes([2])], 32)
    with ShardedScanner([a, b], workers=1) as scanner:
        with pytest.raises(ShardedScanError):
            scanner.run_streams([bytes([1, 2])])


# -- matcher integration ------------------------------------------------------------


def test_matcher_parallel_scan_equals_serial():
    raw = plant_matches(random_payload(60_000, 256, seed=40),
                        [b"select", b"passwd", b"union"], 120, seed=41)
    with CellStringMatcher([b"select", b"passwd", b"union"]) as matcher:
        serial = matcher.scan(raw)
        par = matcher.scan(raw, workers=2)
        assert par.total_matches == serial.total_matches
        assert par.workers == 2 and serial.workers == 1
        assert par.host_seconds > 0
        assert "host:" in par.summary()
        assert matcher.count(raw, workers=2) == serial.total_matches


def test_matcher_parallel_refuses_events():
    with CellStringMatcher([b"abc"]) as matcher:
        with pytest.raises(MatcherError):
            matcher.scan(b"zabcz", with_events=True, workers=2)


def test_matcher_parallel_streams():
    streams = [plant_matches(random_payload(2_000, 256, seed=50 + i),
                             [b"select"], 4, seed=60 + i)
               for i in range(5)]
    with CellStringMatcher([b"select", b"elect"]) as matcher:
        serial = matcher.scan_streams(streams)
        par = matcher.scan_streams(streams, workers=2)
        assert par.total_matches == serial.total_matches
