"""The hot/cold fused scan path: union-automaton hot/cold split,
cold-row compression, the slow-path escape, planner/backend selection,
shared-memory transport and the v4 artifact roundtrip — every count
AND exit state differentially locked against the per-DFA serial path
and the naive reference."""

import random

import numpy as np
import pytest

from repro.baselines.naive import NaiveMatcher
from repro.core.backends import (BackendError, ScanContext, ScanRequest,
                                 execute)
from repro.core.compiled import (ArtifactCache, COUNTERS,
                                 TABLE_FORMAT_VERSION,
                                 compile_dictionary)
from repro.core.engine import (DFAError, FlatScanner, HotColdFusedScanner,
                               count_arr)
from repro.core.planner import CACHE_BUDGET_BYTES, plan_backend
from repro.parallel import ShardedScanner, SharedHotColdTable

# Same dictionary shape as test_fused: wide enough for max_states to
# partition into 1/2/4/8 slices, with self-overlap and substring
# nesting to keep speculation repair honest.
PATTERNS = [b"abab", b"ABABAB", b"BABA", b"@[", b"`{", b"attack",
            b"tac", b"backdoor", b"virus", b"worm", b"trojan",
            b"exploit", b"malware", b"rootkit", b"phish", b"botnet"]

#: A budget this small forces num_hot == 1 (one hot row costs
#: stride × 4 = 256 bytes): the adversarial everything-cold layout.
ALL_COLD_BUDGET = 16

_COMPILED = {}


def compiled_with_slices(target: int):
    if target not in _COMPILED:
        found = None
        if target == 1:
            found = compile_dictionary(PATTERNS)
        else:
            for max_states in range(120, 4, -1):
                try:
                    c = compile_dictionary(PATTERNS,
                                           max_states=max_states)
                except Exception:
                    continue
                if c.num_slices == target:
                    found = c
                    break
        if found is None:
            pytest.skip(f"no max_states budget yields {target} slices")
        _COMPILED[target] = found
    return _COMPILED[target]


def _corpus(rng, length):
    """Fold-boundary-biased corpus (0x40–0x5F aliases letters under the
    32-symbol fold) mixed with pattern fragments."""
    pool = [bytes([rng.randrange(0x40, 0x60)]) for _ in range(8)]
    pool += [b"aba", b"bab", b"AbAb", b"virus", b"tac", b" ", b"\x00"]
    out = b"".join(rng.choice(pool) for _ in range(length // 3 + 1))
    return out[:length]


def per_dfa_reference(compiled, raw, chunks, weighted=False):
    """(counts, exit_states) from D independent serial-path scans."""
    arr = np.frombuffer(raw, dtype=np.uint8)
    totals = np.zeros(compiled.num_slices, dtype=np.int64)
    exits = np.zeros(compiled.num_slices, dtype=np.int64)
    for d, (dfa, (flat, w)) in enumerate(zip(compiled.dfas,
                                             compiled.tables())):
        scanner = FlatScanner(flat, 256, dfa.start, dfa.num_states)
        totals[d], exits[d] = count_arr(
            scanner, arr, chunks, dfa.start,
            weights=w if weighted else None)
    return totals, exits


class TestHotColdTable:
    def test_partition_covers_every_state_once(self):
        compiled = compiled_with_slices(4)
        t = compiled.hot_cold_table()
        both = np.concatenate([t.hot_states, t.cold_states])
        assert sorted(both.tolist()) == list(range(t.num_states))
        assert t.num_hot + t.num_cold == t.num_states

    def test_start_state_is_always_hot(self):
        for budget in (ALL_COLD_BUDGET, 4096, 1 << 20):
            t = compiled_with_slices(4).hot_cold_table(
                budget_bytes=budget)
            assert int(t.hot_states[0]) == int(t.start)

    def test_budget_caps_hot_partition(self):
        compiled = compiled_with_slices(2)
        t = compiled.hot_cold_table(budget_bytes=4096)
        assert 1 <= t.num_hot <= max(1, 4096 // (t.stride * 4))
        # the budget caps the hot *rows*; the parking zone rides on top
        assert t.num_hot * t.stride * 4 <= max(4096, t.stride * 4)

    def test_all_cold_budget_leaves_one_hot_row(self):
        t = compiled_with_slices(4).hot_cold_table(
            budget_bytes=ALL_COLD_BUDGET)
        assert t.num_hot == 1
        assert t.num_cold == t.num_states - 1

    def test_generous_budget_holds_everything_hot(self):
        t = compiled_with_slices(4).hot_cold_table(budget_bytes=1 << 26)
        assert t.num_cold == 0
        assert t.cold.stored_transitions == 0

    def test_pointer_state_roundtrip_every_state(self):
        compiled = compiled_with_slices(4)
        for budget in (ALL_COLD_BUDGET, 2048, 1 << 26):
            hc = HotColdFusedScanner(
                compiled.hot_cold_table(budget_bytes=budget))
            states = np.arange(hc.num_states, dtype=np.int64)
            ptrs = np.asarray([hc.pointer(s) for s in states])
            assert np.array_equal(hc.state_of(ptrs), states)

    def test_footprint_accounting_shrinks_with_split(self):
        compiled = compiled_with_slices(4)
        t = compiled.hot_cold_table(budget_bytes=2048)
        assert t.table_bytes < compiled.fused_table_bytes


class TestHotColdDifferential:
    """Hot/cold union pass == D serial passes, bit-exact, D in
    {1,2,4,8}, including the adversarial everything-cold layout."""

    @pytest.mark.parametrize("slices", [1, 2, 4, 8])
    @pytest.mark.parametrize("weighted", [False, True],
                             ids=["flag", "weighted"])
    def test_counts_and_exits_match_serial(self, slices, weighted):
        compiled = compiled_with_slices(slices)
        hc = compiled.hot_cold_scanner()
        rng = random.Random(slices * 2000 + weighted)
        for length in (0, 1, 7, 311, 1024, 5000):
            raw = _corpus(rng, length)
            arr = np.frombuffer(raw, dtype=np.uint8)
            for chunks in (1, 3, 64):
                want_c, want_x = per_dfa_reference(
                    compiled, raw, chunks, weighted=weighted)
                got_c, got_x = hc.count_arr_per_dfa(
                    arr, chunks,
                    weights=hc.weights if weighted else None)
                assert np.array_equal(got_c, want_c), \
                    (slices, length, chunks)
                assert np.array_equal(got_x, want_x), \
                    (slices, length, chunks)

    @pytest.mark.parametrize("slices", [1, 4])
    def test_all_cold_table_still_exact(self, slices):
        compiled = compiled_with_slices(slices)
        hc = HotColdFusedScanner(
            compiled.hot_cold_table(budget_bytes=ALL_COLD_BUDGET))
        rng = random.Random(31 + slices)
        raw = _corpus(rng, 3000)
        arr = np.frombuffer(raw, dtype=np.uint8)
        want_c, want_x = per_dfa_reference(compiled, raw, 16,
                                           weighted=True)
        got_c, got_x = hc.count_arr_per_dfa(arr, 16,
                                            weights=hc.weights)
        assert np.array_equal(got_c, want_c)
        assert np.array_equal(got_x, want_x)
        assert hc.stats["escapes"] > 0, \
            "an all-cold scan must exercise the slow path"

    def test_whole_dictionary_totals_match_naive(self):
        compiled = compiled_with_slices(4)
        hc = compiled.hot_cold_scanner()
        fold = compiled.fold
        naive = NaiveMatcher([fold.fold_bytes(p) for p in PATTERNS])
        rng = random.Random(41)
        raw = _corpus(rng, 4000)
        arr = np.frombuffer(raw, dtype=np.uint8)
        total, _ = count_arr(hc, arr, 32, hc.start, weights=hc.weights)
        assert int(total) == naive.count(fold.fold_bytes(raw))
        assert int(total) == len(compiled.match_events(raw))

    def test_hot_hit_rate_bounds_and_escape_accounting(self):
        compiled = compiled_with_slices(4)
        hc = compiled.hot_cold_scanner()
        hc.reset_stats()
        raw = _corpus(random.Random(43), 2000)
        count_arr(hc, np.frombuffer(raw, dtype=np.uint8), 8, hc.start)
        assert 0.0 <= hc.hot_hit_rate <= 1.0
        assert hc.stats["cold_steps"] <= hc.stats["steps"]

    def test_run_streams_matches_fused_reduction(self):
        compiled = compiled_with_slices(4)
        hc = compiled.hot_cold_scanner()
        fs = compiled.fused_scanner()
        rng = random.Random(47)
        streams = [_corpus(rng, n) for n in (0, 5, 313, 1201, 64)]
        got_c, got_x = hc.run_streams(streams, weights=hc.weights)
        want = fs.run_streams(streams, weights=fs.weights)[0]
        assert np.array_equal(got_c, np.asarray(want).sum(axis=0))
        assert got_c.shape == (len(streams),)
        # final union states replay correctly as resume points
        tails = [_corpus(rng, 97) for _ in streams]
        res_c, _ = hc.run_streams(tails, start_states=got_x,
                                  weights=hc.weights)
        full_c, _ = hc.run_streams(
            [s + t for s, t in zip(streams, tails)],
            weights=hc.weights)
        assert np.array_equal(got_c + res_c, full_c)

    def test_arbitrary_per_dfa_entries_rejected(self):
        compiled = compiled_with_slices(2)
        hc = compiled.hot_cold_scanner()
        arr = np.frombuffer(b"abcd", dtype=np.uint8)
        with pytest.raises(DFAError, match="union start"):
            hc.count_arr_per_dfa(arr, 4, entry_states=[1, 1])


class TestPlannerSelection:
    NB = 1 << 22        # past the serial ceiling

    def test_multi_slice_exact_dictionary_selects_hotcold(self):
        plan = plan_backend(nbytes=self.NB, num_slices=4, exact=True)
        assert plan.backend == "hotcold"

    def test_oversized_single_slice_selects_hotcold(self):
        plan = plan_backend(nbytes=self.NB, num_slices=1, exact=True,
                            fused_bytes=CACHE_BUDGET_BYTES * 4)
        assert plan.backend == "hotcold"

    def test_cache_resident_single_slice_keeps_chunked(self):
        plan = plan_backend(nbytes=self.NB, num_slices=1, exact=True,
                            fused_bytes=CACHE_BUDGET_BYTES // 2)
        assert plan.backend != "hotcold"

    def test_regex_dictionaries_never_select_hotcold(self):
        plan = plan_backend(nbytes=self.NB, num_slices=4, exact=False)
        assert plan.backend != "hotcold"

    def test_explicit_override_wins_both_ways(self):
        assert plan_backend(nbytes=self.NB, num_slices=1, exact=True,
                            hot_cold=True).backend == "hotcold"
        assert plan_backend(nbytes=self.NB, num_slices=4, exact=True,
                            hot_cold=False).backend != "hotcold"


class TestBackendExecution:
    # Long enough to clear the serial byte ceiling so auto-planning
    # reaches the block-backend decision.
    RAW = (b"a virus, a WORM, abab attack `{ " * 40_000)

    def test_auto_selects_hotcold_and_counts_match(self):
        compiled = compiled_with_slices(4)
        ctx = ScanContext(compiled)
        # With no override the planner may upgrade to the two-byte
        # pair path when its full-coverage table fits the budget;
        # two_byte=False pins the one-byte union scan under test here.
        auto = execute(ctx, ScanRequest(self.RAW, two_byte=False))
        forced = execute(ctx, ScanRequest(self.RAW), backend="fused")
        assert auto.backend == "hotcold"
        assert auto.total_matches == forced.total_matches
        assert auto.stats["hot_states"] >= 1
        assert 0.0 <= auto.stats["hot_hit_rate"] <= 1.0
        free = execute(ctx, ScanRequest(self.RAW))
        assert free.backend == ("hotcold2" if compiled.pair_table_fits()
                                else "hotcold")
        assert free.total_matches == forced.total_matches

    def test_escape_hatch_disables_hotcold(self):
        compiled = compiled_with_slices(4)
        out = execute(ScanContext(compiled),
                      ScanRequest(self.RAW, hot_cold=False))
        assert out.backend != "hotcold"

    def test_regex_context_refuses_hotcold(self):
        compiled = compile_dictionary(["vi.us", "wo?rm"], regex=True)
        with pytest.raises(BackendError, match="union automaton"):
            ScanContext(compiled).hot_cold()
        out = execute(ScanContext(compiled), ScanRequest(self.RAW))
        assert out.backend != "hotcold"

    def test_batch_totals_equals_fused_reduction(self):
        compiled = compiled_with_slices(4)
        ctx = ScanContext(compiled)
        payloads = [self.RAW[:977], b"", b"virus" * 30, self.RAW[7:400]]
        got = ctx.batch_totals(payloads)
        fs = ctx.fused()
        want = fs.run_streams(payloads, weights=fs.weights)[0]
        assert np.array_equal(got, np.asarray(want).sum(axis=0))


class TestSharedHotCold:
    def test_segment_roundtrip_and_attach(self):
        compiled = compiled_with_slices(4)
        table = compiled.hot_cold_table()
        raw = _corpus(random.Random(53), 3000)
        arr = np.frombuffer(raw, dtype=np.uint8)
        ref, _ = count_arr(compiled.hot_cold_scanner(), arr, 16,
                           table.start,
                           weights=compiled.hot_cold_scanner().weights)
        shared = SharedHotColdTable(table)
        attached = SharedHotColdTable.attach(shared.meta())
        try:
            sc = attached.scanner()
            got, _ = count_arr(sc, arr, 16, sc.start,
                               weights=sc.weights)
            assert int(got) == int(ref)
            assert attached.table.num_hot == table.num_hot
            assert attached.input_bound is None
        finally:
            sc = None
            attached.close()
            shared.close()

    @pytest.mark.parametrize("workers", [1, 2])
    def test_sharded_scanner_hot_cold_mode(self, workers):
        compiled = compiled_with_slices(4)
        raw = bytes(_corpus(random.Random(59), 200_000))
        arr = np.frombuffer(raw, dtype=np.uint8)
        hc = compiled.hot_cold_scanner()
        ref, _ = count_arr(hc, arr, 64, hc.start, weights=hc.weights)
        with ShardedScanner.from_compiled(compiled, workers=workers,
                                          hot_cold=True) as s:
            assert s.count_block(raw) == int(ref)

    def test_sharded_hot_cold_rejects_regex(self):
        from repro.parallel import ShardedScanError
        compiled = compile_dictionary(["vi.us"], regex=True)
        with pytest.raises(ShardedScanError, match="union automaton"):
            ShardedScanner.from_compiled(compiled, workers=1,
                                         hot_cold=True)


class TestArtifactMigration:
    PATTERNS = [b"virus", b"worm", b"trojan horse"]

    def test_v3_named_artifact_is_a_miss_not_a_crash(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        built = compile_dictionary(self.PATTERNS, cache=cache)
        cur = cache.path_for(built.fingerprint)
        v3 = cur.with_name(cur.name.replace(
            f"-v{TABLE_FORMAT_VERSION}", "-v3"))
        cur.rename(v3)          # what a pre-upgrade cache dir contains
        before = dict(COUNTERS)
        cd = compile_dictionary(self.PATTERNS, cache=cache)
        assert COUNTERS["cache_misses"] == before["cache_misses"] + 1
        assert cd.hot_cold_scanner() is not None
        assert cur.exists() and v3.exists()     # old file left alone

    def test_stale_meta_version_is_a_miss_not_a_crash(self, tmp_path):
        import io
        import json

        cache = ArtifactCache(tmp_path)
        built = compile_dictionary(self.PATTERNS, cache=cache)
        path = cache.path_for(built.fingerprint)
        with np.load(path, allow_pickle=False) as z:
            arrays = {k: z[k] for k in z.files}
        meta = json.loads(bytes(arrays["meta"]).decode())
        meta["version"] = 3     # a v3 payload smuggled under a v4 name
        arrays["meta"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8).copy()
        buf = io.BytesIO()
        np.savez_compressed(buf, **arrays)
        path.write_bytes(buf.getvalue())
        before = dict(COUNTERS)
        assert cache.load(built.fingerprint) is None
        assert COUNTERS["cache_rejects"] == before["cache_rejects"] + 1

    def test_warm_v4_load_scans_hot_cold_without_rebuilds(self, tmp_path):
        pats = [(chr(65 + i % 26) + chr(65 + i // 26) + "SIG").encode()
                for i in range(40)]
        cache = ArtifactCache(tmp_path)
        built = compile_dictionary(pats, max_states=60, cache=cache)
        assert built.num_slices > 1
        builds = COUNTERS["automaton_builds"]
        loaded = compile_dictionary(pats, max_states=60, cache=cache)
        hc = loaded.hot_cold_scanner()
        assert COUNTERS["automaton_builds"] == builds, \
            "warm start rebuilt the union automaton"
        raw = b"zzAASIGzz BBSIG ccsig " * 50
        arr = np.frombuffer(raw, dtype=np.uint8)
        got, _ = count_arr(hc, arr, 8, hc.start, weights=hc.weights)
        assert int(got) == len(built.match_events(raw))
