"""The fused multi-DFA scan path: stacked-table construction, the
D × chunks lane grid, ragged lockstep streams, shared-memory transport
and the cache roundtrip — every count differentially locked against the
per-DFA serial path (bit-identical totals AND exit states)."""

import random

import numpy as np
import pytest

from repro.baselines.naive import NaiveMatcher
from repro.core.backends import ScanContext, ScanRequest, execute
from repro.core.compiled import ArtifactCache, compile_dictionary
from repro.core.engine import (DFAError, FlatScanner, FusedScanner,
                               count_arr, fuse_tables)
from repro.core.planner import plan_backend
from repro.dfa.alphabet import case_fold_32
from repro.parallel import ShardedScanner, SharedFusedTable

# A dictionary wide enough that max_states budgets can partition it
# into 1, 2, 4 or 8 slices.  Self-overlapping and substring-nested
# entries keep the speculative fixpoint honest.
PATTERNS = [b"abab", b"ABABAB", b"BABA", b"@[", b"`{", b"attack",
            b"tac", b"backdoor", b"virus", b"worm", b"trojan",
            b"exploit", b"malware", b"rootkit", b"phish", b"botnet"]

_COMPILED = {}


def compiled_with_slices(target: int):
    """Compile ``PATTERNS`` into exactly ``target`` slices by searching
    the ``max_states`` budget (slice count is monotone non-increasing
    in the budget)."""
    if target not in _COMPILED:
        found = None
        if target == 1:
            found = compile_dictionary(PATTERNS)
        else:
            for max_states in range(120, 4, -1):
                try:
                    c = compile_dictionary(PATTERNS,
                                           max_states=max_states)
                except Exception:
                    continue
                if c.num_slices == target:
                    found = c
                    break
        if found is None:
            pytest.skip(f"no max_states budget yields {target} slices")
        assert found.num_slices == target
        _COMPILED[target] = found
    return _COMPILED[target]


def _corpus(rng, length):
    """Fold-boundary-biased corpus (0x40–0x5F aliases letters under the
    32-symbol fold) mixed with pattern fragments."""
    pool = [bytes([rng.randrange(0x40, 0x60)]) for _ in range(8)]
    pool += [b"aba", b"bab", b"AbAb", b"virus", b"tac", b" ", b"\x00"]
    out = b"".join(rng.choice(pool) for _ in range(length // 3 + 1))
    return out[:length]


def per_dfa_reference(compiled, raw, chunks, weighted=False,
                      entry_states=None):
    """(counts, exit_states) from D independent serial-path scans —
    the ground truth the fused pass must match bit-for-bit."""
    arr = np.frombuffer(raw, dtype=np.uint8)
    totals = np.zeros(compiled.num_slices, dtype=np.int64)
    exits = np.zeros(compiled.num_slices, dtype=np.int64)
    for d, (dfa, (flat, w)) in enumerate(zip(compiled.dfas,
                                             compiled.tables())):
        scanner = FlatScanner(flat, 256, dfa.start, dfa.num_states)
        entry = dfa.start if entry_states is None else entry_states[d]
        totals[d], exits[d] = count_arr(
            scanner, arr, chunks, entry,
            weights=w if weighted else None)
    return totals, exits


class TestFuseTables:
    def test_single_table_passthrough(self):
        compiled = compiled_with_slices(1)
        fused = compiled.fused_table()
        flat, weights = compiled.tables()[0]
        assert fused.num_dfas == 1
        assert fused.cell_base[0] == 0
        assert np.array_equal(fused.flat, flat)
        assert np.array_equal(fused.weights, weights)

    def test_bases_even_and_slices_recoverable(self):
        compiled = compiled_with_slices(4)
        fused = compiled.fused_table()
        tables = compiled.tables()
        stride = fused.stride
        assert stride == 512
        lo = 0
        for d, (flat, _) in enumerate(tables):
            base = int(fused.cell_base[d])
            assert base == lo
            assert base % stride == 0          # flag bit survives rebase
            seg = fused.flat[lo:lo + flat.size]
            # subtracting the base recovers the original table exactly
            assert np.array_equal(seg - np.int32(base), flat)
            lo += flat.size

    def test_stacked_weights_absolute_indexing(self):
        compiled = compiled_with_slices(4)
        fused = compiled.fused_table()
        for d, (dfa, (_, w)) in enumerate(zip(compiled.dfas,
                                              compiled.tables())):
            base_half = int(fused.cell_base[d]) >> 1
            for state in range(dfa.num_states):
                ptr_half = base_half + state * 256
                assert fused.weights[ptr_half] == w[state * 256]

    def test_misaligned_table_rejected(self):
        compiled = compiled_with_slices(2)
        tables = compiled.tables()
        with pytest.raises(DFAError, match="cells"):
            fuse_tables(tables,
                        [d.start for d in compiled.dfas],
                        [d.num_states + 1 for d in compiled.dfas], 256)

    def test_entry_state_validation(self):
        fs = compiled_with_slices(2).fused_scanner()
        with pytest.raises(DFAError, match="per DFA"):
            fs.entry_ptrs([0])
        with pytest.raises(DFAError, match="range"):
            fs.entry_ptrs([0, 10 ** 9])


class TestFusedDifferential:
    """Fused pass == D serial passes, bit-exact, for D in {1,2,4,8}."""

    @pytest.mark.parametrize("slices", [1, 2, 4, 8])
    @pytest.mark.parametrize("weighted", [False, True],
                             ids=["flag", "weighted"])
    def test_counts_and_exits_match_serial(self, slices, weighted):
        compiled = compiled_with_slices(slices)
        fs = compiled.fused_scanner()
        rng = random.Random(slices * 1000 + weighted)
        for length in (0, 1, 7, 311, 1024, 5000):
            raw = _corpus(rng, length)
            arr = np.frombuffer(raw, dtype=np.uint8)
            for chunks in (1, 3, 64):
                want_c, want_x = per_dfa_reference(
                    compiled, raw, chunks, weighted=weighted)
                got_c, got_x = fs.count_arr_per_dfa(
                    arr, chunks,
                    weights=fs.weights if weighted else None)
                assert np.array_equal(got_c, want_c), \
                    (slices, length, chunks)
                assert np.array_equal(got_x, want_x), \
                    (slices, length, chunks)

    def test_entry_states_respected(self):
        compiled = compiled_with_slices(4)
        fs = compiled.fused_scanner()
        rng = random.Random(7)
        raw = _corpus(rng, 900)
        arr = np.frombuffer(raw, dtype=np.uint8)
        entry = [d.num_states // 2 for d in compiled.dfas]
        want_c, want_x = per_dfa_reference(compiled, raw, 16,
                                           entry_states=entry)
        got_c, got_x = fs.count_arr_per_dfa(arr, 16, entry_states=entry)
        assert np.array_equal(got_c, want_c)
        assert np.array_equal(got_x, want_x)

    def test_weighted_totals_match_event_count(self):
        compiled = compiled_with_slices(4)
        fs = compiled.fused_scanner()
        raw = b"xyzvirus worm attack tac BABA abab " * 40
        arr = np.frombuffer(raw, dtype=np.uint8)
        counts, _ = fs.count_arr_per_dfa(arr, 32, weights=fs.weights)
        assert int(counts.sum()) == len(compiled.match_events(raw))

    def test_details_repairable_via_slice_views(self):
        from repro.core.engine import repair_detail
        compiled = compiled_with_slices(4)
        fs = compiled.fused_scanner()
        rng = random.Random(11)
        raw = _corpus(rng, 2000)
        arr = np.frombuffer(raw, dtype=np.uint8)
        details = fs.count_arr_detail_per_dfa(arr, 16)
        want_c, want_x = per_dfa_reference(compiled, raw, 16)
        for d, detail in enumerate(details):
            total, exit_state = repair_detail(
                fs.slice_view(d), arr, detail,
                compiled.dfas[d].start, 16)
            assert total == want_c[d]
            assert exit_state == want_x[d]


class TestFusedStreams:
    def test_ragged_streams_match_per_stream_scans(self):
        compiled = compiled_with_slices(4)
        fs = compiled.fused_scanner()
        rng = random.Random(23)
        streams = [_corpus(rng, n)
                   for n in (0, 1, 17, 400, 400, 1999, 0, 64)]
        counts, finals = fs.run_streams(streams, weights=fs.weights)
        assert counts.shape == (4, len(streams))
        for j, s in enumerate(streams):
            arr = np.frombuffer(s, dtype=np.uint8)
            want_c, want_x = fs.count_arr_per_dfa(arr, 1,
                                                  weights=fs.weights)
            assert np.array_equal(counts[:, j], want_c), j
            assert np.array_equal(finals[:, j], want_x), j
        total = sum(len(compiled.match_events(s)) for s in streams)
        assert int(counts.sum()) == total

    def test_empty_stream_list_rejected(self):
        fs = compiled_with_slices(2).fused_scanner()
        with pytest.raises(DFAError, match="at least one"):
            fs.run_streams([])

    def test_all_empty_streams_keep_entry_states(self):
        fs = compiled_with_slices(2).fused_scanner()
        counts, finals = fs.run_streams([b"", b""])
        assert not counts.any()
        for d in range(2):
            assert (finals[d] == fs.table.starts[d]).all()


class TestFusedBackend:
    def test_backend_matches_naive(self):
        fold = case_fold_32()
        compiled = compile_dictionary(PATTERNS, fold=fold, max_states=24)
        assert compiled.num_slices > 1
        naive = NaiveMatcher([fold.fold_bytes(p) for p in PATTERNS])
        rng = random.Random(99)
        raw = _corpus(rng, 3000)
        with ScanContext(compiled) as ctx:
            out = execute(ctx, ScanRequest(data=raw), backend="fused")
        assert out.backend == "fused"
        assert out.total_matches == naive.count(fold.fold_bytes(raw))
        assert out.stats["slices"] == compiled.num_slices

    def test_planner_prefers_fused_for_multi_slice(self):
        big = 4 << 20
        assert plan_backend(big, num_slices=4).backend == "fused"
        assert plan_backend(big, num_slices=1).backend == "chunked"
        assert plan_backend(big, num_slices=4,
                            fuse=False).backend == "chunked"

    def test_request_no_fuse_escape_hatch(self):
        compiled = compiled_with_slices(4)
        raw = b"virus tac abab " * 200000       # past the serial ceiling
        with ScanContext(compiled) as ctx:
            auto = execute(ctx, ScanRequest(data=raw))
            fused = execute(ctx, ScanRequest(data=raw, hot_cold=False))
            classic = execute(ctx, ScanRequest(data=raw, fuse=False))
        # union table, one pass — at pair stride when the squared
        # table reaches full coverage
        assert auto.backend == ("hotcold2" if compiled.pair_table_fits()
                                else "hotcold")
        assert fused.backend == "fused"
        assert classic.backend == "chunked"
        assert auto.total_matches == fused.total_matches \
            == classic.total_matches


class TestSharedFusedTable:
    def test_attach_scans_identically(self):
        compiled = compiled_with_slices(4)
        table = compiled.fused_table()
        raw = b"attack virus BABA abab worm " * 50
        arr = np.frombuffer(raw, dtype=np.uint8)
        want_c, want_x = compiled.fused_scanner().count_arr_per_dfa(
            arr, 8)
        with SharedFusedTable(table) as owner:
            attached = SharedFusedTable.attach(owner.meta())
            try:
                got_c, got_x = attached.scanner().count_arr_per_dfa(
                    arr, 8)
                assert np.array_equal(got_c, want_c)
                assert np.array_equal(got_x, want_x)
            finally:
                attached.close()

    def test_sharded_scanner_fused_matches_events(self):
        compiled = compiled_with_slices(4)
        raw = (b"attack virus BABA abab worm exploit " * 400)
        expected = len(compiled.match_events(raw))
        with ShardedScanner.from_compiled(compiled,
                                          workers=2) as scanner:
            assert scanner.fused
            assert scanner.count_block(raw) == expected
        with ShardedScanner.from_compiled(compiled, workers=2,
                                          fuse=False) as scanner:
            assert not scanner.fused
            assert scanner.count_block(raw) == expected


class TestCacheRoundtrip:
    def test_fused_arrays_survive_store_load(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        compiled = compiled_with_slices(4)
        original = compiled.fused_table()
        cache.store(compiled)
        loaded = cache.load(compiled.fingerprint)
        assert loaded is not None
        # arrives prebuilt from the artifact, not re-derived
        assert loaded._fused is not None
        restored = loaded.fused_table()
        assert np.array_equal(restored.flat, original.flat)
        assert np.array_equal(restored.weights, original.weights)
        assert np.array_equal(restored.cell_base, original.cell_base)
