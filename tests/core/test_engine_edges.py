"""Speculative-scan edge lengths: empty input, single bytes, and the
lane-floor boundary (len in {0, 1, chunk-1, chunk, chunk+1}) across the
in-process engine, the chunked fixpoint, incremental repair, and the
sharded/streaming paths."""

import numpy as np
import pytest

from repro.core.engine import (LANES_TARGET, MIN_PIECE, VectorDFAEngine,
                               build_weight_table, count_arr,
                               count_arr_detail, repair_detail)
from repro.dfa.aho_corasick import AhoCorasick
from repro.dfa.alphabet import case_fold_32
from repro.dfa.automaton import DFAError
from repro.parallel import ShardedScanner

FOLD = case_fold_32()
PATTERNS = [b"abab", b"ba"]


def _dfa():
    return AhoCorasick([FOLD.fold_bytes(p) for p in PATTERNS], 32).to_dfa()


def _corpus(n: int) -> bytes:
    return (b"abAB" * (n // 4 + 1))[:n]


EDGE_LENGTHS = sorted({
    0, 1,
    MIN_PIECE - 1, MIN_PIECE, MIN_PIECE + 1,
    LANES_TARGET - 1, LANES_TARGET, LANES_TARGET + 1,
})


class TestEngineEdges:
    @pytest.mark.parametrize("n", EDGE_LENGTHS)
    def test_count_block_edge_lengths(self, n):
        eng = VectorDFAEngine(_dfa())
        data = FOLD.fold_bytes(_corpus(n))
        assert eng.count_block(data) == eng.count_block_reference(data)

    @pytest.mark.parametrize("chunks", [1, 2, 64, 256])
    def test_count_block_below_lane_floor(self, chunks):
        # Inputs shorter than MIN_PIECE used to divide by a zero lane
        # count for some chunk settings; every (len, chunks) pair must
        # now agree with the reference scan.
        eng = VectorDFAEngine(_dfa())
        for n in (0, 1, 2, 5, 63):
            data = FOLD.fold_bytes(_corpus(n))
            assert eng.count_block(data, chunks=chunks) == \
                eng.count_block_reference(data), (n, chunks)

    def test_count_arr_rejects_zero_chunks(self):
        eng = VectorDFAEngine(_dfa())
        arr = np.frombuffer(FOLD.fold_bytes(_corpus(10)), dtype=np.uint8)
        with pytest.raises(DFAError, match="chunks"):
            count_arr(eng.scanner, arr, 0, eng.dfa.start)
        with pytest.raises(DFAError, match="chunks"):
            count_arr(eng.scanner, arr, -3, eng.dfa.start)

    @pytest.mark.parametrize("n", [0, 1, MIN_PIECE - 1, MIN_PIECE + 1])
    def test_repair_detail_edge_lengths(self, n):
        # A deliberately wrong entry state forces the incremental repair
        # path; it must agree with a reference scan from that state.
        eng = VectorDFAEngine(_dfa())
        if n == 0:
            return
        arr = np.frombuffer(FOLD.fold_bytes(_corpus(n)), dtype=np.uint8)
        detail = count_arr_detail(eng.scanner, arr, 16, eng.dfa.start)
        wrong_entry = eng.dfa.num_states - 1
        cnt, exit_state = repair_detail(eng.scanner, arr, detail,
                                        wrong_entry, 16)
        ref_cnt, ref_exit = count_arr(eng.scanner, arr, 1, wrong_entry)
        assert (cnt, exit_state) == (ref_cnt, ref_exit)


class TestRunStreamsEdges:
    """Ragged multi-stream lockstep, locked against one-stream-at-a-
    time serial scans."""

    def _reference(self, eng, streams, start_states=None, weights=None):
        counts, finals = [], []
        for j, s in enumerate(streams):
            arr = np.frombuffer(s, dtype=np.uint8)
            entry = eng.start if start_states is None \
                else int(start_states[j])
            if arr.size == 0:
                counts.append(0)
                finals.append(entry)
                continue
            c, x = count_arr(eng.scanner, arr, 1, entry,
                             weights=weights)
            counts.append(c)
            finals.append(x)
        return counts, finals

    def test_empty_stream_list_rejected(self):
        eng = VectorDFAEngine(_dfa())
        with pytest.raises(DFAError, match="at least one"):
            eng.run_streams([])

    def test_zero_length_streams_mixed_with_long(self):
        eng = VectorDFAEngine(_dfa())
        streams = [b"", FOLD.fold_bytes(_corpus(997)), b"",
                   FOLD.fold_bytes(_corpus(3)), b"",
                   FOLD.fold_bytes(_corpus(4096))]
        result = eng.run_streams(streams)
        want_c, want_x = self._reference(eng, streams)
        assert list(result.counts) == want_c
        assert list(result.final_states) == want_x

    def test_all_zero_length_streams(self):
        eng = VectorDFAEngine(_dfa())
        result = eng.run_streams([b"", b"", b""])
        assert not result.counts.any()
        assert (result.final_states == eng.start).all()

    def test_weights_and_start_states_combined(self):
        eng = VectorDFAEngine(_dfa())
        weights = build_weight_table(eng.dfa)
        streams = [FOLD.fold_bytes(_corpus(n))
                   for n in (0, 5, 129, 64, 1023, 1)]
        starts = np.arange(len(streams)) % eng.dfa.num_states
        result = eng.run_streams(streams, start_states=starts,
                                 weights=weights)
        want_c, want_x = self._reference(eng, streams,
                                         start_states=starts,
                                         weights=weights)
        assert list(result.counts) == want_c
        assert list(result.final_states) == want_x

    def test_start_state_out_of_range_rejected(self):
        eng = VectorDFAEngine(_dfa())
        bad = np.array([0, eng.dfa.num_states])
        with pytest.raises(DFAError, match="range"):
            eng.run_streams([b"", b""], start_states=bad)


class TestShardedEdges:
    @pytest.mark.parametrize("n", [0, 1, MIN_PIECE - 1, MIN_PIECE,
                                   MIN_PIECE + 1])
    def test_tiny_blocks(self, n):
        eng = VectorDFAEngine(_dfa())
        raw = _corpus(n)
        expected = eng.count_block_reference(FOLD.fold_bytes(raw))
        with ShardedScanner(_dfa(), workers=1, fold=FOLD) as scanner:
            assert scanner.count_block(raw) == expected

    def test_pooled_tiny_shards(self):
        # min_shard_bytes=1 forces the pool + ring even for inputs so
        # small every worker gets a near-empty shard.
        eng = VectorDFAEngine(_dfa())
        with ShardedScanner(_dfa(), workers=2, fold=FOLD,
                            min_shard_bytes=1, ring_bytes=64) as scanner:
            for n in (1, 2, 63, 64, 65, 200):
                raw = _corpus(n)
                expected = eng.count_block_reference(FOLD.fold_bytes(raw))
                assert scanner.count_block(raw) == expected, n

    def test_stream_of_empty_and_single_byte_chunks(self):
        eng = VectorDFAEngine(_dfa())
        raw = _corpus(301)
        expected = eng.count_block_reference(FOLD.fold_bytes(raw))
        chunks = [b""] + [raw[i:i + 1] for i in range(150)] + [b""] \
            + [raw[150:]]
        with ShardedScanner(_dfa(), workers=1, fold=FOLD) as scanner:
            assert scanner.count_stream(iter(chunks)) == expected
        with ShardedScanner(_dfa(), workers=2, fold=FOLD,
                            min_shard_bytes=1, ring_bytes=32) as scanner:
            assert scanner.count_stream(iter(chunks)) == expected

    def test_empty_stream(self):
        with ShardedScanner(_dfa(), workers=1, fold=FOLD) as scanner:
            assert scanner.count_stream(iter([])) == 0
            assert scanner.count_stream(iter([b"", b""])) == 0
