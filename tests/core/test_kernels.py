"""Kernel builder: the five Table-1 implementations, executed functionally
on the SPU simulator and checked against the reference DFA."""

import numpy as np
import pytest

from repro.cell.local_store import LocalStore
from repro.cell.spu import SPU
from repro.core.interleave import interleave_streams
from repro.core.kernels import (
    KERNEL_SPECS,
    SIMD_LANES,
    KernelBuilder,
    KernelError,
)
from repro.core.stt import STTImage
from repro.dfa import build_dfa
from repro.workloads import plant_matches

PATTERNS = [bytes([1, 2, 3]), bytes([4, 5]), bytes([6, 7, 8, 9])]


def make_setup(alphabet=32, input_base=0x20000, counters=0x8000,
               stt_base=0x1000, capacity=None):
    dfa = build_dfa(PATTERNS, alphabet)
    stt = STTImage.from_dfa(dfa, stt_base)
    ls = LocalStore()
    ls.write(stt_base, stt.payload)
    builder = KernelBuilder(stt, input_base, counters,
                            input_capacity=capacity)
    return dfa, stt, ls, builder


def run_kernel(ls, kernel, payload):
    ls.write(kernel.input_base, payload)
    spu = SPU(ls)
    stats = spu.run(kernel.program)
    return stats, kernel.read_counts(ls)


def make_streams(n, length, seed, alphabet=32):
    rng = np.random.default_rng(seed)
    streams = []
    for _ in range(n):
        s = rng.integers(0, alphabet, length, dtype=np.uint8).tobytes()
        s = plant_matches(s, PATTERNS, 2, seed=int(rng.integers(2 ** 31)))
        streams.append(s)
    return streams


class TestSpecs:
    def test_five_versions(self):
        assert sorted(KERNEL_SPECS) == [1, 2, 3, 4, 5]

    def test_version_shapes(self):
        assert not KERNEL_SPECS[1].simd
        assert KERNEL_SPECS[2].unroll == 1
        assert KERNEL_SPECS[4].unroll == 3
        assert KERNEL_SPECS[5].spill

    def test_transitions_per_iteration(self):
        assert KERNEL_SPECS[1].transitions_per_iteration == 1
        assert KERNEL_SPECS[2].transitions_per_iteration == 16
        assert KERNEL_SPECS[4].transitions_per_iteration == 48


class TestBuild:
    def test_unknown_version(self):
        *_, builder = make_setup()
        with pytest.raises(KernelError, match="unknown"):
            builder.build(9, 128)

    def test_nonpositive_transitions(self):
        *_, builder = make_setup()
        with pytest.raises(KernelError):
            builder.build(1, 0)

    def test_table1_padding_rule(self):
        """16384 requested transitions pad to 16416 for unroll 3 — the
        exact quirk visible in the paper's Table 1."""
        *_, builder = make_setup()
        kernel = builder.build(4, 16384)
        assert kernel.transitions == 16416
        assert kernel.iterations == 342

    def test_capacity_check(self):
        *_, builder = make_setup(capacity=256)
        with pytest.raises(KernelError, match="exceed"):
            builder.build(2, 512)

    def test_alignment_check(self):
        dfa = build_dfa(PATTERNS, 32)
        stt = STTImage.from_dfa(dfa, 0x1000)
        with pytest.raises(KernelError, match="aligned"):
            KernelBuilder(stt, 0x20001, 0x8000)

    def test_register_budget_respected(self):
        *_, builder = make_setup()
        for v in range(1, 6):
            prog = builder.build(v, 96).program
            assert prog.registers_used() <= 128


class TestScalarKernel:
    def test_counts_match_reference(self):
        dfa, stt, ls, builder = make_setup()
        stream = make_streams(1, 512, seed=3)[0]
        kernel = builder.build(1, len(stream))
        _, counts = run_kernel(ls, kernel, stream)
        assert counts == [dfa.count_matches(stream)]

    def test_zero_matches(self):
        dfa, stt, ls, builder = make_setup()
        stream = bytes(256)  # all symbol 0: no pattern uses 0
        kernel = builder.build(1, len(stream))
        _, counts = run_kernel(ls, kernel, stream)
        assert counts == [0]

    def test_every_byte_processed(self):
        """A match planted at the very last position must be seen."""
        dfa, stt, ls, builder = make_setup()
        stream = bytearray(128)
        stream[-3:] = PATTERNS[0]
        kernel = builder.build(1, len(stream))
        _, counts = run_kernel(ls, kernel, bytes(stream))
        assert counts == [1]


class TestSimdKernels:
    @pytest.mark.parametrize("version", [2, 3, 4, 5])
    def test_counts_match_reference_per_stream(self, version):
        dfa, stt, ls, builder = make_setup()
        length = 96  # multiple of every unroll granularity (1..4)
        streams = make_streams(SIMD_LANES, length, seed=version)
        payload = interleave_streams(streams)
        kernel = builder.build(version, len(payload))
        _, counts = run_kernel(ls, kernel, payload)
        assert counts == [dfa.count_matches(s) for s in streams]

    @pytest.mark.parametrize("version", [2, 3, 4, 5])
    def test_streams_are_independent(self, version):
        """A pattern split across two lanes must NOT match."""
        dfa, stt, ls, builder = make_setup()
        streams = [bytes(96) for _ in range(SIMD_LANES)]
        # Put half of pattern 0 at the end of lane 3 and the other half
        # at the start of lane 4: lanes are separate streams.
        s3 = bytearray(96)
        s3[-2:] = PATTERNS[0][:2]
        s4 = bytearray(96)
        s4[0] = PATTERNS[0][2]
        streams[3] = bytes(s3)
        streams[4] = bytes(s4)
        payload = interleave_streams(streams)
        kernel = builder.build(version, len(payload))
        _, counts = run_kernel(ls, kernel, payload)
        assert sum(counts) == 0

    def test_match_in_every_lane(self):
        dfa, stt, ls, builder = make_setup()
        streams = []
        for i in range(SIMD_LANES):
            s = bytearray(48)
            s[i:i + 2] = PATTERNS[1]
            streams.append(bytes(s))
        payload = interleave_streams(streams)
        kernel = builder.build(2, len(payload))
        _, counts = run_kernel(ls, kernel, payload)
        assert counts == [1] * SIMD_LANES

    def test_spilled_counters_live_in_ls(self):
        """Version 5 keeps counters in the local store, not registers."""
        dfa, stt, ls, builder = make_setup()
        streams = make_streams(SIMD_LANES, 64, seed=11)
        payload = interleave_streams(streams)
        kernel = builder.build(5, len(payload))
        _, counts = run_kernel(ls, kernel, payload)
        assert counts == [dfa.count_matches(s) for s in streams]


class TestWideAlphabet:
    def test_unpacked_offset_path(self):
        """Alphabet width 128 disables the single-SIMD-shift trick; the
        per-stream shli path must still match correctly."""
        dfa, stt, ls, builder = make_setup(alphabet=128, stt_base=0x1000)
        assert not builder.packed_offsets
        rng = np.random.default_rng(5)
        streams = []
        for _ in range(SIMD_LANES):
            s = bytearray(rng.integers(0, 128, 64, dtype=np.uint8).tobytes())
            s[10:13] = PATTERNS[0]
            streams.append(bytes(s))
        payload = interleave_streams(streams)
        kernel = builder.build(2, len(payload))
        _, counts = run_kernel(ls, kernel, payload)
        assert counts == [dfa.count_matches(s) for s in streams]

    def test_scalar_wide(self):
        dfa, stt, ls, builder = make_setup(alphabet=64, stt_base=0x1000)
        rng = np.random.default_rng(6)
        stream = bytearray(rng.integers(0, 64, 128, dtype=np.uint8).tobytes())
        stream[50:52] = PATTERNS[1]
        kernel = builder.build(1, len(stream))
        _, counts = run_kernel(ls, kernel, bytes(stream))
        assert counts == [dfa.count_matches(bytes(stream))]


class TestPerformanceShape:
    """The qualitative Table 1 story, pinned with generous margins."""

    @pytest.fixture(scope="class")
    def results(self):
        dfa, stt, ls, builder = make_setup()
        out = {}
        streams = make_streams(SIMD_LANES, 192, seed=1)
        payload = interleave_streams(streams)
        scalar = make_streams(1, 1024, seed=2)[0]
        for v in range(1, 6):
            if v == 1:
                kernel = builder.build(1, len(scalar))
                stats, _ = run_kernel(ls, kernel, scalar)
            else:
                kernel = builder.build(v, len(payload))
                stats, _ = run_kernel(ls, kernel, payload)
            out[v] = stats.cycles / kernel.transitions
        return out

    def test_simd_beats_scalar(self, results):
        assert results[2] < results[1] / 2

    def test_unrolling_helps(self, results):
        assert results[4] < results[3] < results[2]

    def test_spills_regress(self, results):
        assert results[5] > results[4]

    def test_version4_is_peak(self, results):
        assert min(results, key=results.get) == 4

    def test_scalar_near_paper_19_cycles(self, results):
        assert 15 <= results[1] <= 24
