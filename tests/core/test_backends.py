"""The execute phase: backend registry, execution planner, and the
cross-backend differential suite (every registered backend must be
bit-identical to the naive baseline)."""

import random

import pytest

from repro.baselines.naive import NaiveMatcher
from repro.core.backends import (BackendError, ScanContext, ScanRequest,
                                 backend_names, backend_specs, execute,
                                 get_backend)
from repro.core.compiled import compile_dictionary
from repro.core.planner import SERIAL_BYTE_CEILING, plan_backend
from repro.dfa.alphabet import case_fold_32


HOST_BACKENDS = ["serial", "chunked", "fused", "pooled", "streaming"]


@pytest.fixture(scope="module")
def ctx():
    compiled = compile_dictionary([b"attack", b"tac", b"ck no"])
    with ScanContext(compiled) as c:
        yield c


class TestRegistry:
    def test_all_five_backends_registered(self):
        names = backend_names()
        for name in HOST_BACKENDS + ["cellsim"]:
            assert name in names

    def test_unknown_backend_errors(self):
        with pytest.raises(BackendError, match="unknown backend"):
            get_backend("gpu")

    def test_specs_carry_paper_sections(self):
        specs = dict((n, s) for n, s, _ in backend_specs())
        assert "§4" in specs["chunked"]
        assert "Figure 5" in specs["streaming"]

    def test_events_on_non_reporting_backend_rejected(self, ctx):
        with pytest.raises(BackendError, match="events"):
            execute(ctx, ScanRequest(data=b"attack", with_events=True),
                    backend="chunked")

    def test_block_backend_rejects_streams(self, ctx):
        with pytest.raises(BackendError, match="accepts"):
            execute(ctx, ScanRequest(chunks=[b"ab"]), backend="serial")

    def test_request_needs_exactly_one_input(self):
        with pytest.raises(BackendError):
            ScanRequest()
        with pytest.raises(BackendError):
            ScanRequest(data=b"x", chunks=[b"y"])


class TestPlanner:
    def test_events_force_serial(self):
        assert plan_backend(nbytes=1 << 30, workers=8,
                            with_events=True).backend == "serial"

    def test_streams_force_streaming(self):
        assert plan_backend(streaming=True, workers=4).backend == \
            "streaming"

    def test_workers_pick_pooled(self):
        assert plan_backend(nbytes=100, workers=2).backend == "pooled"

    def test_size_splits_serial_vs_chunked(self):
        assert plan_backend(nbytes=1000).backend == "serial"
        assert plan_backend(
            nbytes=SERIAL_BYTE_CEILING + 1).backend == "chunked"

    def test_plan_explains_itself(self):
        plan = plan_backend(streaming=True)
        assert plan.backend in plan.describe()


class TestOutcomeShape:
    def test_outcome_fields(self, ctx):
        out = execute(ctx, ScanRequest(data=b"an attack"),
                      backend="serial")
        assert out.total_matches == 2
        assert out.bytes_scanned == 9
        assert out.backend == "serial"
        assert out.pattern_counts == {0: 1, 1: 1}
        assert out.seconds > 0 and out.gbps > 0

    def test_events_only_when_asked(self, ctx):
        assert execute(ctx, ScanRequest(data=b"attack"),
                       backend="serial").events is None
        out = execute(ctx, ScanRequest(data=b"attack", with_events=True),
                      backend="serial")
        # "tac" ends inside "attack" at 5; "attack" itself at 6.
        assert [(e.end, e.pattern) for e in out.events] == [(5, 1), (6, 0)]

    def test_cellsim_attaches_cycle_model(self, ctx):
        out = execute(ctx, ScanRequest(data=b"attack" * 100),
                      backend="cellsim")
        assert out.total_matches == 200
        assert out.stats["cycles_per_transition"] == 5.01
        assert out.stats["modelled_seconds"] > 0
        assert out.stats["modelled_gbps"] == pytest.approx(5.11, abs=0.01)

    def test_streaming_reports_bytes_from_ring(self, ctx):
        out = execute(ctx, ScanRequest(chunks=iter([b"att", b"ack"])),
                      backend="streaming")
        # "attack" spans the chunk boundary; "tac" hides inside it.
        assert out.total_matches == 2
        assert out.bytes_scanned == 6


def _random_corpus(rng, length):
    """Corpora biased toward fold-boundary bytes (0x40-0x5F, where the
    32-symbol case fold aliases '@'..'_' onto letters) and pattern
    fragments, so speculative entries land mid-pattern often."""
    pool = [bytes([rng.randrange(0x40, 0x60)]) for _ in range(8)]
    pool += [b"aba", b"bab", b"AbAb", b" ", b"\x00", b"\xff"]
    out = b"".join(rng.choice(pool) for _ in range(length // 3 + 1))
    return out[:length]


class TestDifferential:
    """Every registered block backend == naive baseline, bit-exact."""

    DICTIONARIES = [
        [b"abab"],                          # self-overlapping
        [b"ABABAB", b"BABA"],               # long self-overlap, nested
        [b"@[", b"`{"],                     # 0x40/0x5B vs 0x60/0x7B alias
        [b"attack", b"tac", b"a"],          # substring-of-substring
    ]

    @pytest.mark.parametrize("patterns", DICTIONARIES,
                             ids=lambda p: b"_".join(p).decode("latin-1"))
    def test_backends_match_naive(self, patterns):
        fold = case_fold_32()
        compiled = compile_dictionary(patterns, fold=fold)
        naive = NaiveMatcher([fold.fold_bytes(p) for p in patterns])
        rng = random.Random(hash(tuple(patterns)) & 0xFFFF)
        with ScanContext(compiled) as ctx:
            for length in (0, 1, 7, 1024, 5000):
                data = _random_corpus(rng, length)
                expected = naive.count(fold.fold_bytes(data))
                assert len(compiled.match_events(data)) == expected
                for name in backend_names():
                    backend = get_backend(name)
                    if "block" not in backend.kinds:
                        continue
                    out = execute(ctx, ScanRequest(data=data),
                                  backend=name)
                    assert out.total_matches == expected, \
                        f"{name} diverged on {patterns} len={length}"

    def test_random_dictionaries_random_corpora(self):
        fold = case_fold_32()
        rng = random.Random(1234)
        alphabet = b"abAB@_` "
        for trial in range(6):
            patterns = []
            for _ in range(rng.randrange(1, 5)):
                n = rng.randrange(1, 7)
                patterns.append(bytes(rng.choice(alphabet)
                                      for _ in range(n)))
            compiled = compile_dictionary(patterns, fold=fold)
            naive = NaiveMatcher(
                [fold.fold_bytes(p) for p in patterns])
            data = _random_corpus(rng, rng.randrange(0, 4000))
            expected = naive.count(fold.fold_bytes(data))
            with ScanContext(compiled) as ctx:
                for name in HOST_BACKENDS:
                    req = ScanRequest(data=data) \
                        if "block" in get_backend(name).kinds \
                        else ScanRequest(chunks=[data])
                    out = execute(ctx, req, backend=name)
                    assert out.total_matches == expected, \
                        f"trial {trial}: {name} diverged on {patterns}"

    def test_pooled_workers_match(self):
        compiled = compile_dictionary([b"abab", b"BA"])
        naive_events = len(compiled.match_events(b"aBAbab" * 300))
        with ScanContext(compiled) as ctx:
            out = execute(ctx, ScanRequest(data=b"aBAbab" * 300,
                                           workers=2), backend="pooled")
            assert out.total_matches == naive_events
            assert out.workers == 2
