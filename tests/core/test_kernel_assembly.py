"""Assembly-level invariants of the generated kernels.

These inspect the *programs* the builder emits — structure an SPE engineer
would check in the listing: hint coverage, register discipline, pipe
balance, instruction budget, and the exact per-transition instruction
counts the cycle analysis rests on.
"""

import pytest

from repro.cell.isa import EVEN, ODD
from repro.core.kernels import KERNEL_SPECS, KernelBuilder, SIMD_LANES
from repro.core.planner import plan_tile
from repro.core.stt import STTImage
from repro.dfa import build_dfa

PATTERNS = [bytes([1, 2, 3]), bytes([4, 5])]


@pytest.fixture(scope="module")
def builder():
    plan = plan_tile(buffer_bytes=1024)
    dfa = build_dfa(PATTERNS, 32)
    stt = STTImage.from_dfa(dfa, plan.stt_base)
    return KernelBuilder(stt, plan.buffer_bases[0], plan.counters_base,
                         states_base=plan.states_base,
                         input_capacity=plan.buffer_bytes)


def loop_body(program):
    """Instructions between the 'loop' label and the closing branch."""
    start = program.labels["loop"]
    for i in range(start, len(program.instructions)):
        if program.instructions[i].spec.is_branch:
            return program.instructions[start:i + 1]
    raise AssertionError("no loop-closing branch found")


class TestStructure:
    @pytest.mark.parametrize("version", [1, 2, 3, 4, 5])
    def test_every_branch_is_hinted(self, builder, version):
        program = builder.build(version, 96).program
        for inst in program.instructions:
            if inst.spec.is_branch:
                assert inst.hinted, f"unhinted branch in v{version}"

    @pytest.mark.parametrize("version", [1, 2, 3, 4, 5])
    def test_single_stop_at_end(self, builder, version):
        program = builder.build(version, 96).program
        stops = [i for i, inst in enumerate(program.instructions)
                 if inst.op == "stop"]
        assert stops == [len(program.instructions) - 1]

    @pytest.mark.parametrize("version", [1, 2, 3, 4, 5])
    def test_register_zero_never_written(self, builder, version):
        """r0 is the kernels' zero register (lqx base)."""
        program = builder.build(version, 96).program
        for inst in program.instructions:
            assert inst.destination() != 0

    @pytest.mark.parametrize("version", [1, 2, 3, 4, 5])
    def test_register_budget(self, builder, version):
        program = builder.build(version, 96).program
        assert program.registers_used() <= 128


class TestLoopBody:
    @pytest.mark.parametrize("version,unroll", [(2, 1), (3, 2), (4, 3),
                                                (5, 4)])
    def test_core_ops_per_transition(self, builder, version, unroll):
        """Exactly one STT load (lqx), one extraction pair and two flag
        masks per transition in the loop body."""
        program = builder.build(version, 16 * unroll).program
        body = loop_body(program)
        per_iter = SIMD_LANES * unroll
        ops = {}
        for inst in body:
            ops[inst.op] = ops.get(inst.op, 0) + 1
        assert ops["lqx"] == per_iter
        assert ops["rotqbyi"] == per_iter
        assert ops["rotmi"] == per_iter
        assert ops["rotqby"] == per_iter
        assert ops["andi"] == 2 * per_iter
        assert ops["lqd"] == unroll + (per_iter if version == 5 else 0)

    def test_even_odd_balance_of_peak_kernel(self, builder):
        program = builder.build(4, 48).program
        body = loop_body(program)
        evens = sum(1 for i in body if i.spec.pipe == EVEN)
        odds = sum(1 for i in body if i.spec.pipe == ODD)
        # 5 even vs 3 odd per transition, plus loop control.
        assert evens / odds == pytest.approx(5 / 3, rel=0.15)

    def test_spilled_kernel_has_counter_traffic_in_loop(self, builder):
        clean = loop_body(builder.build(4, 48).program)
        spilled = loop_body(builder.build(5, 64).program)
        clean_stores = sum(1 for i in clean if i.op == "stqd")
        spill_stores = sum(1 for i in spilled if i.op == "stqd")
        assert clean_stores == 0
        assert spill_stores == 64  # one counter writeback per transition

    def test_scalar_body_is_thirteen_instructions(self, builder):
        body = loop_body(builder.build(1, 64).program)
        assert len(body) == 13


class TestEpilogue:
    def test_counters_stored_for_unspilled_versions(self, builder):
        program = builder.build(4, 48).program
        tail = program.instructions[-(SIMD_LANES * 2 + 2):]
        stores = [i for i in tail if i.op == "stqd"]
        # 16 counters + 16 saved states.
        assert len(stores) == 32

    def test_states_saved_for_spilled_version_too(self, builder):
        program = builder.build(5, 64).program
        tail = program.instructions[-(SIMD_LANES + 2):]
        stores = [i for i in tail if i.op == "stqd"]
        assert len(stores) == SIMD_LANES  # states only; counters in LS

    def test_listing_is_renderable(self, builder):
        text = builder.build(4, 48).program.listing()
        assert "loop:" in text
        assert "[e]" in text and "[o]" in text
