"""The vectorized numpy engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.engine import VectorDFAEngine
from repro.dfa import AhoCorasick, DFAError, build_dfa
from repro.workloads import plant_matches, random_payload

PATTERNS = [bytes([1, 2, 3]), bytes([4, 5]), bytes([1, 1])]


@pytest.fixture(scope="module")
def engine():
    return VectorDFAEngine(build_dfa(PATTERNS, 32))


class TestRunStreams:
    def test_counts_match_reference(self, engine):
        rng = np.random.default_rng(1)
        streams = [plant_matches(random_payload(200, seed=i), PATTERNS, 3,
                                 seed=i) for i in range(8)]
        res = engine.run_streams(streams)
        expected = [engine.dfa.count_matches(s) for s in streams]
        assert res.counts.tolist() == expected

    def test_final_states_reported(self, engine):
        streams = [bytes([1, 2, 3]), bytes([0, 0, 0])]
        res = engine.run_streams(streams)
        assert engine.dfa.final_mask[res.final_states[0]]
        assert res.final_states[1] == engine.dfa.start

    def test_custom_start_states(self, engine):
        # Starting mid-pattern: state after consuming [1, 2].
        mid = engine.dfa.run(bytes([1, 2]))
        res = engine.run_streams([bytes([3])],
                                 start_states=np.array([mid]))
        assert res.total == 1

    def test_empty_streams(self, engine):
        res = engine.run_streams([b"", b""])
        assert res.total == 0
        assert (res.final_states == engine.dfa.start).all()

    def test_ragged_streams_lockstep(self, engine):
        # Ragged lengths are legal: lanes retire as streams end.
        streams = [bytes([1]), bytes([1, 2, 3]), b"",
                   plant_matches(random_payload(97, seed=9), PATTERNS,
                                 4, seed=9)]
        res = engine.run_streams(streams)
        assert res.counts.tolist() == \
            [engine.dfa.count_matches(s) for s in streams]
        assert res.final_states[2] == engine.dfa.start

    def test_out_of_alphabet_rejected(self, engine):
        with pytest.raises(DFAError, match="fold"):
            engine.run_streams([bytes([99])])

    def test_no_streams_rejected(self, engine):
        with pytest.raises(DFAError):
            engine.run_streams([])


class TestCountBlock:
    def test_matches_reference_on_planted_data(self, engine):
        block = plant_matches(random_payload(10_000, seed=3), PATTERNS, 40,
                              seed=4)
        assert engine.count_block(block) == \
            engine.count_block_reference(block)

    def test_chunking_does_not_lose_boundary_matches(self, engine):
        """Force a match to straddle every chunk boundary."""
        block = bytes([1, 2, 3] * 400)  # matches everywhere
        for chunks in (1, 3, 7, 64):
            assert engine.count_block(block, chunks=chunks) == \
                engine.count_block_reference(block)

    def test_single_byte_block(self, engine):
        assert engine.count_block(bytes([4])) == 0
        assert engine.count_block(bytes([1])) == 0

    def test_empty_block(self, engine):
        assert engine.count_block(b"") == 0

    def test_more_chunks_than_bytes(self, engine):
        block = bytes([1, 2, 3])
        assert engine.count_block(block, chunks=64) == 1

    def test_invalid_args(self, engine):
        with pytest.raises(DFAError):
            engine.count_block(b"\x01", chunks=0)
        with pytest.raises(DFAError, match="fold"):
            engine.count_block(bytes([200]))

    @settings(max_examples=40, deadline=None)
    @given(st.binary(min_size=0, max_size=600).map(
        lambda b: bytes(x % 32 for x in b)),
        st.integers(min_value=1, max_value=32))
    def test_chunked_equals_reference_property(self, block, chunks):
        engine = VectorDFAEngine(build_dfa(PATTERNS, 32))
        assert engine.count_block(block, chunks=chunks) == \
            engine.count_block_reference(block)


class TestLockstepSemantics:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.binary(min_size=4, max_size=60).map(
        lambda b: bytes(x % 32 for x in b)),
        min_size=1, max_size=6))
    def test_streams_independent_property(self, raw_streams):
        # Pad to a common length.
        length = max(len(s) for s in raw_streams)
        streams = [s + bytes(length - len(s)) for s in raw_streams]
        engine = VectorDFAEngine(build_dfa(PATTERNS, 32))
        res = engine.run_streams(streams)
        for i, s in enumerate(streams):
            assert res.counts[i] == engine.dfa.count_matches(s)
