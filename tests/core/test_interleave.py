"""Stream interleaving (the quadword layout the SIMD kernels consume)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.interleave import (
    InterleaveError,
    block_to_streams,
    deinterleave,
    interleave_block,
    interleave_streams,
)


class TestInterleave:
    def test_quadword_layout(self):
        """Byte i of each output quadword comes from stream i."""
        streams = [bytes([i] * 4) for i in range(16)]
        out = interleave_streams(streams)
        assert len(out) == 64
        for q in range(4):
            assert out[q * 16:(q + 1) * 16] == bytes(range(16))

    def test_two_streams(self):
        out = interleave_streams([b"ace", b"bdf"])
        assert out == b"abcdef"

    def test_empty_streams(self):
        assert interleave_streams([b"", b""]) == b""

    def test_ragged_streams_rejected(self):
        with pytest.raises(InterleaveError, match="pad"):
            interleave_streams([b"ab", b"abc"])

    def test_no_streams_rejected(self):
        with pytest.raises(InterleaveError):
            interleave_streams([])


class TestDeinterleave:
    def test_roundtrip(self):
        streams = [bytes([i, i + 16, i + 32]) for i in range(16)]
        assert deinterleave(interleave_streams(streams), 16) == streams

    def test_bad_divisor(self):
        with pytest.raises(InterleaveError):
            deinterleave(b"abc", 2)
        with pytest.raises(InterleaveError):
            deinterleave(b"ab", 0)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=1, max_value=20),
           st.integers(min_value=0, max_value=40),
           st.randoms())
    def test_roundtrip_property(self, n, length, rnd):
        streams = [bytes(rnd.randrange(256) for _ in range(length))
                   for _ in range(n)]
        assert deinterleave(interleave_streams(streams), n) == streams


class TestBlockToStreams:
    def test_padding_to_quadword_multiple(self):
        streams = block_to_streams(bytes(range(33)), 16)
        assert len(streams) == 16
        assert all(len(s) == 16 for s in streams)  # ceil(33/16)=3 -> 16
        # Concatenation covers the block (plus padding).
        assert b"".join(streams)[:33] == bytes(range(33))

    def test_pad_symbol(self):
        streams = block_to_streams(b"\x01", 4, pad_symbol=9)
        assert streams[0][0] == 1
        assert streams[0][1] == 9
        assert streams[3] == bytes([9] * 16)

    def test_interleave_block_length(self):
        out = interleave_block(bytes(100), 16)
        assert len(out) % (16 * 16) == 0

    def test_bad_args(self):
        with pytest.raises(InterleaveError):
            block_to_streams(b"x", 0)
        with pytest.raises(InterleaveError):
            block_to_streams(b"x", 4, pad_symbol=300)
