"""The high-level CellStringMatcher API."""

import pytest

from repro.core.matcher import (
    CellStringMatcher,
    MatcherError,
    PAPER_TILE_GBPS,
)
from repro.dfa import case_fold_32, identity_fold
from repro.workloads import ascii_keywords


class TestExactDictionaries:
    def test_case_insensitive_scan(self):
        m = CellStringMatcher(["virus", "WORM"])
        report = m.scan("a ViRuS and a worm")
        assert report.total_matches == 2

    def test_events_carry_end_positions_and_ids(self):
        m = CellStringMatcher(["AB", "BC"])
        report = m.scan("zABCz", with_events=True)
        got = {(e.end, e.pattern) for e in report.events}
        assert got == {(3, 0), (4, 1)}

    def test_count_shortcut(self):
        m = CellStringMatcher(["XYZ"])
        assert m.count("wxyzw") == 1

    def test_bytes_input(self):
        m = CellStringMatcher([b"ABC"])
        assert m.scan(b"xabcx").total_matches == 1

    def test_scan_streams_sums(self):
        m = CellStringMatcher(["HIT"])
        report = m.scan_streams([b"a hit", b"no", b"hit hit"])
        assert report.total_matches == 3
        assert report.bytes_scanned == 5 + 2 + 7

    def test_single_tile_configuration(self):
        m = CellStringMatcher(["ABC", "DEF"])
        assert m.spes_used == 1
        assert m.modelled_gbps == pytest.approx(PAPER_TILE_GBPS)
        assert "single tile" in m.configuration or "1 slice" \
            in m.configuration

    def test_empty_dictionary_rejected(self):
        with pytest.raises(MatcherError):
            CellStringMatcher([])

    def test_empty_pattern_rejected(self):
        with pytest.raises(MatcherError):
            CellStringMatcher([""])

    def test_fold_collisions_are_filter_semantics(self):
        """The 32-symbol fold maps all non-letters to one bucket, so '@'
        and '0' are indistinguishable — by design (paper §4)."""
        m = CellStringMatcher(["A@B"])
        assert m.count("A0B") == 1


class TestConfigurationsScaleWithDictionary:
    def test_series_configuration_for_large_dictionary(self):
        from repro.core.planner import plan_tile
        # Tiny tiles to force multi-slice configs without huge dicts.
        plan = plan_tile(buffer_bytes=94 * 1024, num_buffers=2)
        assert plan.max_states < 300
        words = ascii_keywords(120, seed=5)
        m = CellStringMatcher(words, plan=plan)
        assert m.partition.num_slices > 1
        text = b"junk " + words[17] + b" junk " + words[80]
        assert m.scan(text).total_matches >= 2

    def test_replacement_configuration_for_huge_dictionary(self):
        from repro.core.planner import plan_tile
        plan = plan_tile(buffer_bytes=94 * 1024, num_buffers=2)
        words = ascii_keywords(1500, seed=6)
        m = CellStringMatcher(words, plan=plan)
        assert m.replacement is not None
        assert "replacement" in m.configuration
        assert m.modelled_gbps < PAPER_TILE_GBPS
        probe = b"xx " + words[1234] + b" yy"
        assert m.scan(probe).total_matches >= 1

    def test_global_pattern_ids_across_slices(self):
        from repro.core.planner import plan_tile
        plan = plan_tile(buffer_bytes=94 * 1024, num_buffers=2)
        words = ascii_keywords(120, seed=7)
        m = CellStringMatcher(words, plan=plan)
        target = 97
        report = m.scan(b">>" + words[target] + b"<<", with_events=True)
        assert any(e.pattern == target for e in report.events)


class TestRegexMode:
    def test_regex_scan(self):
        m = CellStringMatcher(["VIR(US|AL)", "W[OA]RM"], regex=True)
        report = m.scan("a viral worm and a virus warm")
        assert report.total_matches == 4

    def test_regex_events(self):
        m = CellStringMatcher(["AB+"], regex=True)
        report = m.scan("xABBx", with_events=True)
        ends = [e.end for e in report.events]
        assert ends == [3, 4]  # AB and ABB both end-positions

    def test_regex_configuration(self):
        m = CellStringMatcher(["A+B"], regex=True)
        assert "regex" in m.configuration
        assert m.spes_used == 1


class TestReports:
    def test_modelled_seconds(self):
        m = CellStringMatcher(["Q"])
        report = m.scan("q" * 1000)
        expected = 1000 * 8 / (m.modelled_gbps * 1e9)
        assert report.modelled_seconds() == pytest.approx(expected)

    def test_repr(self):
        m = CellStringMatcher(["A"])
        assert "CellStringMatcher" in repr(m)

    def test_identity_fold_mode(self):
        m = CellStringMatcher([b"\x01\x02"], fold=identity_fold(256))
        # Wide alphabet -> larger rows -> smaller tile, still works.
        assert m.count(bytes([0, 1, 2, 0])) == 1


class TestPatternCounts:
    def test_counts_per_pattern(self):
        m = CellStringMatcher(["AB", "CD"])
        report = m.scan("ABxABxCD")
        assert report.pattern_counts == {0: 2, 1: 1}

    def test_zero_hit_patterns_omitted(self):
        m = CellStringMatcher(["AB", "ZZZZ"])
        report = m.scan("AB")
        assert report.pattern_counts == {0: 1}

    def test_counts_sum_to_total(self):
        m = CellStringMatcher(["A", "AA", "AAA"])
        report = m.scan("AAAA")
        assert sum(report.pattern_counts.values()) == report.total_matches

    def test_regex_counts(self):
        m = CellStringMatcher(["AB+", "CD"], regex=True)
        report = m.scan("ABBxCD")
        assert report.pattern_counts == {0: 2, 1: 1}


class TestRegexPartitioning:
    def _plan(self):
        from repro.core.planner import plan_tile
        # 16-state budget: each ~10-state regex needs its own slice.
        return plan_tile(buffer_bytes=110 * 1024, num_buffers=2)

    def test_many_regexes_split_into_series_slices(self):
        # Letters only: digits all fold onto one symbol.
        patterns = [f"SIG{chr(65 + i)}{chr(66 + i)}(AB|CD)X+"
                    for i in range(6)]
        m = CellStringMatcher(patterns, regex=True, plan=self._plan())
        assert 1 < len(m._regex_slices) <= m.max_spes
        assert "series regex" in m.configuration

    def test_split_regexes_still_match_with_global_ids(self):
        from repro.core.planner import plan_tile
        # 64-state budget: ~18-state regexes pack 3 per slice.
        plan = plan_tile(buffer_bytes=107 * 1024, num_buffers=2)
        patterns = [f"NEEDLE{chr(65 + i)}{chr(75 + i)}(AB|CD){{3}}"
                    for i in range(12)]
        m = CellStringMatcher(patterns, regex=True, plan=plan)
        assert len(m._regex_slices) > 1
        report = m.scan("xx NEEDLEHRABCDAB yy NEEDLELVCDCDCD",
                        with_events=True)
        assert report.total_matches == 2
        assert {e.pattern for e in report.events} == {7, 11}

    def test_single_oversized_regex_rejected(self):
        # A long counted repetition blows past a tiny budget.
        from repro.core.planner import plan_tile
        tiny = plan_tile(buffer_bytes=110 * 1024, num_buffers=2)
        with pytest.raises(MatcherError, match="alone"):
            CellStringMatcher(["(AB|CD|EF){12}GHIJKL{4}"], regex=True,
                              plan=tiny)

    def test_replacement_regime_for_many_regex_slices(self):
        from repro.core.planner import plan_tile
        tiny = plan_tile(buffer_bytes=110 * 1024, num_buffers=2)
        patterns = [f"PAT{chr(65 + i // 26)}{chr(65 + i % 26)}Q"
                    for i in range(40)]
        m = CellStringMatcher(patterns, regex=True, plan=tiny)
        if len(m._regex_slices) > m.max_spes:
            assert "replacement" in m.configuration
            assert m.modelled_gbps < m.per_tile_gbps
        probe = f"zz {patterns[33]} zz"
        assert m.scan(probe).total_matches == 1


class TestTargetThroughput:
    def test_target_gbps_adds_parallel_ways(self):
        m = CellStringMatcher(["ABC"], target_gbps=20.0)
        # ceil(20 / 5.11) = 4 parallel tiles.
        assert m.spes_used == 4
        assert m.modelled_gbps == pytest.approx(4 * PAPER_TILE_GBPS)

    def test_target_capped_by_spe_budget(self):
        m = CellStringMatcher(["ABC"], target_gbps=100.0)
        assert m.spes_used == 8
        assert m.modelled_gbps == pytest.approx(8 * PAPER_TILE_GBPS)

    def test_exact_boundary_needs_no_extra_way(self):
        m = CellStringMatcher(["ABC"], target_gbps=2 * PAPER_TILE_GBPS)
        assert m.spes_used == 2

    def test_default_is_single_tile(self):
        m = CellStringMatcher(["ABC"])
        assert m.spes_used == 1

    def test_series_slices_limit_parallel_ways(self):
        from repro.core.planner import plan_tile
        plan = plan_tile(buffer_bytes=110 * 1024, num_buffers=2)
        words = ascii_keywords(25, seed=4)   # several tiny slices
        m = CellStringMatcher(words, plan=plan, target_gbps=100.0)
        if m.composition is not None:
            assert m.spes_used <= 8
            assert m.spes_used % m.partition.num_slices == 0
