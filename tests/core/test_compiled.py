"""The compile phase: CompiledDictionary + the on-disk artifact cache."""

import numpy as np
import pytest

from repro.core.compiled import (COUNTERS, TABLE_FORMAT_VERSION,
                                 ArtifactCache, CompileError,
                                 compile_dictionary, fingerprint_dictionary)
from repro.dfa.alphabet import case_fold_32, identity_fold


def _builds():
    return COUNTERS["automaton_builds"]


class TestFingerprint:
    def test_deterministic(self):
        fold = case_fold_32()
        a = fingerprint_dictionary([b"abc", b"def"], fold, False, 1000)
        b = fingerprint_dictionary([b"abc", b"def"], fold, False, 1000)
        assert a == b and len(a) == 64

    def test_sensitive_to_every_input(self):
        fold = case_fold_32()
        base = fingerprint_dictionary([b"abc"], fold, False, 1000)
        assert fingerprint_dictionary([b"abd"], fold, False, 1000) != base
        assert fingerprint_dictionary([b"abc"], fold, True, 1000) != base
        assert fingerprint_dictionary([b"abc"], fold, False, 999) != base
        assert fingerprint_dictionary(
            [b"abc"], identity_fold(), False, 1000) != base

    def test_length_prefix_prevents_concat_collisions(self):
        fold = case_fold_32()
        assert fingerprint_dictionary([b"ab", b"c"], fold, False, 9) != \
            fingerprint_dictionary([b"a", b"bc"], fold, False, 9)


class TestCompile:
    def test_matches_matcher_semantics(self):
        cd = compile_dictionary([b"hello", b"ell"])
        events = cd.match_events(b"say Hello")
        assert [(e.end, e.pattern) for e in events] == [(8, 1), (9, 0)]

    def test_slices_respect_budget(self):
        # Letter-distinct prefixes: digits collapse onto one fold class,
        # so numeric ids would alias into a single folded pattern.
        pats = [(chr(65 + i % 26) + chr(65 + i // 26) + "PATTERN").encode()
                for i in range(60)]
        cd = compile_dictionary(pats, max_states=120)
        assert cd.num_slices > 1
        assert all(d.num_states <= 120 for d in cd.dfas)
        # Every pattern lands in exactly one slice, ids preserved.
        seen = sorted(i for g in cd.groups for i in g)
        assert seen == list(range(60))

    def test_tables_are_fold_composed(self):
        cd = compile_dictionary([b"abc"])
        (flat, weights), = cd.tables()
        assert flat.size == cd.dfas[0].num_states * 2 * 256
        assert weights.size == cd.dfas[0].num_states * 256 + 1
        (scanner,) = cd.scanners()
        assert scanner.alphabet_size == 256

    def test_empty_dictionary_rejected(self):
        with pytest.raises(CompileError):
            compile_dictionary([])

    def test_empty_pattern_rejected(self):
        with pytest.raises(CompileError):
            compile_dictionary([b"ok", b""])

    def test_oversized_regex_rejected_alone(self):
        with pytest.raises(CompileError, match="alone"):
            compile_dictionary(["A{200}"], regex=True, max_states=50)

    def test_regex_groups_carry_global_ids(self):
        cd = compile_dictionary(["AB+", "CD"], regex=True)
        assert cd.regex
        assert sorted(i for g in cd.groups for i in g) == [0, 1]
        # "ab" (end 2), "abb" (end 3), "cd" (end 6) — one event per
        # recognized entry, exactly the reporting-path semantics.
        assert [(e.end, e.pattern) for e in cd.match_events(b"abb cd")] \
            == [(2, 0), (3, 0), (6, 1)]


class TestArtifactCache:
    PATTERNS = [b"virus", b"worm", b"trojan horse"]

    def test_miss_then_hit(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        before = dict(COUNTERS)
        compile_dictionary(self.PATTERNS, cache=cache)
        assert COUNTERS["cache_misses"] == before["cache_misses"] + 1
        assert COUNTERS["cache_stores"] == before["cache_stores"] + 1
        compile_dictionary(self.PATTERNS, cache=cache)
        assert COUNTERS["cache_hits"] == before["cache_hits"] + 1

    def test_hit_does_zero_dfa_construction(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        compile_dictionary(self.PATTERNS, cache=cache)
        builds = _builds()
        cd = compile_dictionary(self.PATTERNS, cache=cache)
        assert _builds() == builds, \
            "cache hit re-ran Aho-Corasick/determinize"
        # ... and the reloaded artifact still scans correctly.
        assert len(cd.match_events(b"a WORM and a virus")) == 2

    def test_roundtrip_equivalence(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        built = compile_dictionary(self.PATTERNS, cache=cache)
        loaded = compile_dictionary(self.PATTERNS, cache=cache)
        assert loaded.fingerprint == built.fingerprint
        assert loaded.groups == built.groups
        assert loaded.partition is not None
        data = b"Trojan Horse, worm, WORMWORM, virus!"
        assert loaded.match_events(data) == built.match_events(data)
        for (fa, wa), (fb, wb) in zip(built.tables(), loaded.tables()):
            assert np.array_equal(fa, fb)
            assert np.array_equal(wa, wb)

    def test_regex_roundtrip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        compile_dictionary(["WO?RM", "V.RUS"], regex=True, cache=cache)
        builds = _builds()
        loaded = compile_dictionary(["WO?RM", "V.RUS"], regex=True,
                                    cache=cache)
        assert _builds() == builds
        assert loaded.regex and loaded.partition is None
        assert len(loaded.match_events(b"wrm virus")) == 2

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        built = compile_dictionary(self.PATTERNS, cache=cache)
        path = cache.path_for(built.fingerprint)
        path.write_bytes(b"not an npz at all")
        before = dict(COUNTERS)
        cd = compile_dictionary(self.PATTERNS, cache=cache)
        assert COUNTERS["cache_rejects"] == before["cache_rejects"] + 1
        assert COUNTERS["cache_hits"] == before["cache_hits"]
        assert len(cd.match_events(b"worm")) == 1

    def test_stale_version_is_a_miss(self, tmp_path, monkeypatch):
        cache = ArtifactCache(tmp_path)
        built = compile_dictionary(self.PATTERNS, cache=cache)
        # Rename the valid artifact to the *next* format version's key:
        # the loader must reject it on the stored-version check even
        # though the file itself is well-formed.
        import repro.core.compiled as compiled_mod
        old_path = cache.path_for(built.fingerprint)
        monkeypatch.setattr(compiled_mod, "TABLE_FORMAT_VERSION",
                            TABLE_FORMAT_VERSION + 1)
        monkeypatch.setattr(compiled_mod, "COMPAT_TABLE_FORMAT_VERSIONS",
                            (TABLE_FORMAT_VERSION + 1,))
        old_path.rename(cache.path_for(built.fingerprint))
        before = dict(COUNTERS)
        assert cache.load(built.fingerprint) is None
        assert COUNTERS["cache_rejects"] == before["cache_rejects"] + 1

    def test_wrong_fingerprint_content_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        built = compile_dictionary(self.PATTERNS, cache=cache)
        other = compile_dictionary([b"unrelated"], cache=cache)
        # A file containing B's artifact under A's key must be rejected.
        cache.path_for(other.fingerprint).replace(
            cache.path_for(built.fingerprint))
        assert cache.load(built.fingerprint) is None

    def test_cache_by_directory_path(self, tmp_path):
        compile_dictionary(self.PATTERNS, cache=str(tmp_path))
        builds = _builds()
        compile_dictionary(self.PATTERNS, cache=str(tmp_path))
        assert _builds() == builds

    def test_store_is_atomic_no_tmp_left(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        compile_dictionary(self.PATTERNS, cache=cache)
        assert not list(tmp_path.glob("*.tmp"))

    def test_different_budgets_cache_separately(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        pats = [(chr(65 + i % 26) + chr(65 + i // 26) + "SIGNAT").encode()
                for i in range(40)]
        a = compile_dictionary(pats, max_states=80, cache=cache)
        b = compile_dictionary(pats, max_states=1 << 20, cache=cache)
        assert a.fingerprint != b.fingerprint
        assert a.num_slices > b.num_slices


class TestMatcherCacheIntegration:
    def test_matcher_warm_start_skips_compile(self, tmp_path):
        from repro.core.matcher import CellStringMatcher

        pats = ["alpha", "beta", "gamma"]
        with CellStringMatcher(pats, cache=str(tmp_path)) as m:
            assert m.scan("ALPHA beta").total_matches == 2
        builds = _builds()
        with CellStringMatcher(pats, cache=str(tmp_path)) as m:
            assert _builds() == builds
            assert m.scan("ALPHA beta").total_matches == 2
