"""The two-byte-stride (pair-symbol) scan path: rank-space pair table
construction, escape replay, D-invariant per-slice accumulation,
stream resume across pair boundaries, planner/backend/CLI selection,
shared-memory transport and the v5/v4 artifact story — every count AND
exit state differentially locked against the per-DFA serial path."""

import random

import numpy as np
import pytest

from repro.core.backends import (BackendError, ScanContext, ScanRequest,
                                 execute)
from repro.core.compiled import (ArtifactCache, COMPAT_TABLE_FORMAT_VERSIONS,
                                 COUNTERS, TABLE_FORMAT_VERSION,
                                 CompileError, compile_dictionary)
from repro.core.engine import (HOTCOLD_LANES_TARGET, count_arr,
                               hotcold_lanes_target, hotcold_strip_elems,
                               pair_symbol_table)
from repro.core.planner import plan_backend
from repro.parallel import ShardedScanner, SharedHotCold2Table

from .test_hotcold import (ALL_COLD_BUDGET, compiled_with_slices, _corpus,
                           per_dfa_reference)

#: Pair budgets under test: adversarial single-hot-row, partial
#: coverage, and everything-pair-hot.
BUDGETS = (ALL_COLD_BUDGET, 4096, 1 << 19)


class TestHotCold2Table:
    def test_pair_rows_within_budget_and_rank_space(self):
        for budget in BUDGETS:
            t = compiled_with_slices(4).hot_cold2_table(
                budget_bytes=budget)
            w2 = t.symbol_width ** 2
            assert t.hot2_flat.dtype == np.int16
            assert t.hot2_flat.size == t.num_hot2 * w2 + 1
            assert 1 <= t.num_hot2 <= t.num_states
            # rows obey the budget; the park cell rides along (+2 bytes)
            assert t.hot2_bytes - 2 <= max(budget, 2 * w2)
            # the parking cell answers num_states and carries nothing
            assert int(t.hot2_flat[-1]) == t.num_states
            assert int(t.fflat[-1]) == 0 and int(t.wflat[-1]) == 0

    def test_pair_table_agrees_with_two_single_steps(self):
        t = compiled_with_slices(2).hot_cold2_table(budget_bytes=1 << 19)
        W = t.symbol_width
        utr = t.utr.reshape(t.num_states, W)
        rng = random.Random(5)
        for _ in range(200):
            r = rng.randrange(t.num_hot2)
            a, b = rng.randrange(W), rng.randrange(W)
            mid = int(utr[r, a])
            want = t.num_states if mid == t.num_states \
                else int(utr[mid, b])
            assert int(t.hot2_flat[r * W * W + a * W + b]) == want

    def test_foldpair_composes_the_byte_fold(self):
        compiled = compiled_with_slices(1)
        fp = compiled.foldpair_table()
        t = compiled.hot_cold_table()
        W = t.symbol_width
        fold = np.asarray(t.fold_table, dtype=np.int64)
        rng = random.Random(6)
        for _ in range(100):
            b0, b1 = rng.randrange(256), rng.randrange(256)
            pair = (b0 | (b1 << 8)) if np.little_endian \
                else (b1 | (b0 << 8))
            assert int(fp[pair]) == int(fold[b0]) * W + int(fold[b1])
        assert np.array_equal(fp, pair_symbol_table(t.fold_table, W))

    def test_pair_fit_is_a_full_coverage_certificate(self):
        compiled = compiled_with_slices(4)
        if compiled.pair_table_fits():
            t = compiled.hot_cold2_table()
            assert t.num_hot2 == t.num_states
        assert not compiled.pair_table_fits(budget_bytes=ALL_COLD_BUDGET)


class TestHotCold2Differential:
    """Counts AND exit states, bit-identical to D independent per-DFA
    serial scans — across D, budgets, odd lengths and chunk counts."""

    @pytest.mark.parametrize("slices", [1, 2, 4, 8])
    @pytest.mark.parametrize("weighted", [False, True])
    def test_counts_and_exits_match_serial(self, slices, weighted):
        compiled = compiled_with_slices(slices)
        rng = random.Random(100 + slices)
        raw = _corpus(rng, 40_000)
        want_counts, want_exits = per_dfa_reference(
            compiled, raw, 16, weighted=weighted)
        hc2 = compiled.hot_cold2_scanner()
        arr = np.frombuffer(raw, dtype=np.uint8)
        got_counts, got_exits = hc2.count_arr_per_dfa(
            arr, 16, weights=hc2.weights if weighted else None)
        assert np.array_equal(got_counts, want_counts)
        assert np.array_equal(got_exits, want_exits)

    @pytest.mark.parametrize("budget", BUDGETS)
    def test_every_budget_stays_exact(self, budget):
        compiled = compiled_with_slices(4)
        rng = random.Random(7)
        raw = _corpus(rng, 30_000)
        want_counts, want_exits = per_dfa_reference(compiled, raw, 8,
                                                    weighted=True)
        hc2 = compiled.hot_cold2_scanner(budget_bytes=budget)
        got_counts, got_exits = hc2.count_arr_per_dfa(
            np.frombuffer(raw, dtype=np.uint8), 8, weights=hc2.weights)
        assert np.array_equal(got_counts, want_counts)
        assert np.array_equal(got_exits, want_exits)

    def test_all_cold_budget_escapes_and_stays_exact(self):
        compiled = compiled_with_slices(2)
        hc2 = compiled.hot_cold2_scanner(budget_bytes=ALL_COLD_BUDGET)
        assert hc2.table.num_hot2 == 1
        rng = random.Random(8)
        raw = _corpus(rng, 20_000)
        hc2.reset_stats()
        want, _ = per_dfa_reference(compiled, raw, 4, weighted=True)
        got, _ = hc2.count_arr_per_dfa(np.frombuffer(raw, np.uint8), 4,
                                       weights=hc2.weights)
        assert np.array_equal(got, want)
        assert hc2.stats["escapes"] > 0
        assert hc2.stats["cold_steps"] > 0
        assert 0.0 <= hc2.hot_hit_rate < 1.0

    @pytest.mark.parametrize("length", [0, 1, 2, 3, 17, 255, 4097])
    @pytest.mark.parametrize("chunks", [1, 3, 64])
    def test_odd_lengths_and_chunk_counts(self, length, chunks):
        compiled = compiled_with_slices(2)
        rng = random.Random(length * 64 + chunks)
        raw = _corpus(rng, length)
        want_counts, want_exits = per_dfa_reference(
            compiled, raw, chunks, weighted=True)
        hc2 = compiled.hot_cold2_scanner()
        got_counts, got_exits = hc2.count_arr_per_dfa(
            np.frombuffer(raw, dtype=np.uint8), chunks,
            weights=hc2.weights)
        assert np.array_equal(got_counts, want_counts)
        assert np.array_equal(got_exits, want_exits)

    def test_match_on_the_middle_byte_of_a_pair(self):
        # "tac" ends mid-pair at even offsets; the aux tables must
        # count the crossing without an escape.
        compiled = compiled_with_slices(1)
        hc2 = compiled.hot_cold2_scanner()
        for pad in range(4):
            raw = b"z" * pad + b"tac"
            want, _ = per_dfa_reference(compiled, raw, 1, weighted=True)
            got, _ = hc2.count_arr_per_dfa(
                np.frombuffer(raw, np.uint8), 1, weights=hc2.weights)
            assert np.array_equal(got, want), pad

    def test_whole_block_totals_match_hotcold(self):
        compiled = compiled_with_slices(4)
        rng = random.Random(9)
        raw = _corpus(rng, 60_001)
        arr = np.frombuffer(raw, dtype=np.uint8)
        hc = compiled.hot_cold_scanner()
        hc2 = compiled.hot_cold2_scanner()
        want, wexit = count_arr(hc, arr, 32, hc.start,
                                weights=hc.weights)
        got, gexit = count_arr(hc2, arr, 32, hc2.start,
                               weights=hc2.weights)
        assert int(got) == int(want)
        assert int(gexit) == int(wexit)

    def test_arbitrary_per_dfa_entries_rejected(self):
        from repro.core.engine import DFAError

        compiled = compiled_with_slices(2)
        hc2 = compiled.hot_cold2_scanner()
        bad = np.zeros(compiled.num_slices, dtype=np.int64) + 1
        with pytest.raises(DFAError, match="union start"):
            hc2.count_arr_per_dfa(np.zeros(64, dtype=np.uint8), 4,
                                  entry_states=bad)


class TestHotCold2Streams:
    """run_streams at pair stride: ragged lengths, zero/one-byte
    segments crossing pair boundaries, and stream resume."""

    def _payloads(self, rng, sizes):
        return [_corpus(rng, n) for n in sizes]

    def test_ragged_stream_batch_matches_per_stream_scans(self):
        compiled = compiled_with_slices(4)
        hc2 = compiled.hot_cold2_scanner()
        rng = random.Random(11)
        payloads = self._payloads(
            rng, [0, 1, 2, 3, 64, 65, 1023, 4096, 9999])
        counts, states = hc2.run_streams(payloads, weights=hc2.weights)
        for payload, count, state in zip(payloads, counts, states):
            if payload:
                want, wexit = count_arr(
                    hc2, np.frombuffer(payload, np.uint8), 4,
                    hc2.start, weights=hc2.weights)
                assert int(count) == int(want)
                assert int(state) == int(wexit)
            else:
                assert int(count) == 0
                assert int(state) == hc2.start

    def test_resume_across_odd_segment_boundaries(self):
        # Segment lengths 0 and 1 force every pair-phase realignment;
        # the resumed scan must equal the unsegmented one.
        compiled = compiled_with_slices(2)
        hc2 = compiled.hot_cold2_scanner()
        rng = random.Random(12)
        whole = _corpus(rng, 5_001)
        cuts = sorted(rng.randrange(len(whole)) for _ in range(7))
        pieces = [whole[a:b] for a, b in
                  zip([0] + cuts, cuts + [len(whole)])]
        pieces[2:2] = [b"", whole[cuts[2]:cuts[2]]]  # zero-length mixes
        assert b"".join(pieces) == whole
        counts = np.zeros(1, dtype=np.int64)
        states = None
        total = 0
        for piece in pieces:
            if not piece:
                piece = b""
            counts, states = hc2.run_streams(
                [piece], start_states=states, weights=hc2.weights)
            total += int(counts[0])
            states = np.asarray(states)
        want, wexit = count_arr(hc2, np.frombuffer(whole, np.uint8),
                                4, hc2.start, weights=hc2.weights)
        assert total == int(want)
        assert int(states[0]) == int(wexit)

    def test_posmajor_scan_cols_compat(self):
        compiled = compiled_with_slices(2)
        hc2 = compiled.hot_cold2_scanner()
        rng = random.Random(13)
        lanes = 5
        payloads = self._payloads(rng, [257] * lanes)
        length = min(len(p) for p in payloads)  # _corpus may undershoot
        payloads = [p[:length] for p in payloads]
        mat = np.frombuffer(b"".join(payloads), np.uint8).reshape(
            lanes, length)
        cols = np.ascontiguousarray(mat.T)
        ptrs = np.full(lanes, hc2.pointer(hc2.start), dtype=np.int32)
        counts = np.zeros(lanes, dtype=np.int64)
        hc2.scan_cols(cols, ptrs, counts, weights=hc2.weights)
        want, _ = hc2.run_streams(payloads, weights=hc2.weights)
        assert np.array_equal(counts, want)


class TestEnvKnobs:
    def test_lanes_and_strip_elems_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_HOTCOLD_LANES", "123")
        monkeypatch.setenv("REPRO_HOTCOLD_STRIP_ELEMS", "456")
        assert hotcold_lanes_target() == 123
        assert hotcold_strip_elems() == 456
        monkeypatch.setenv("REPRO_HOTCOLD_LANES", "junk")
        monkeypatch.delenv("REPRO_HOTCOLD_STRIP_ELEMS")
        assert hotcold_lanes_target() == HOTCOLD_LANES_TARGET
        from repro.core.engine import HOTCOLD_STRIP_ELEMS
        assert hotcold_strip_elems() == HOTCOLD_STRIP_ELEMS

    def test_strip_elems_knob_keeps_counts_exact(self, monkeypatch):
        compiled = compiled_with_slices(2)
        rng = random.Random(14)
        raw = _corpus(rng, 10_000)
        want, _ = per_dfa_reference(compiled, raw, 8, weighted=True)
        monkeypatch.setenv("REPRO_HOTCOLD_STRIP_ELEMS", "64")
        hc2 = compiled.hot_cold2_scanner()
        got, _ = hc2.count_arr_per_dfa(np.frombuffer(raw, np.uint8), 8,
                                       weights=hc2.weights)
        assert np.array_equal(got, want)


class TestPlannerAndBackend:
    RAW = (b"a virus, a WORM, abab attack `{ " * 40_000)

    def test_planner_upgrades_to_pair_path_on_fit(self):
        plan = plan_backend(nbytes=1 << 22, num_slices=4, exact=True,
                            hot_cold=True, pair_fit=True)
        assert plan.backend == "hotcold2"
        plan = plan_backend(nbytes=1 << 22, num_slices=4, exact=True,
                            hot_cold=True, pair_fit=False)
        assert plan.backend == "hotcold"

    def test_two_byte_escape_hatch_wins_both_ways(self):
        forced = plan_backend(nbytes=1 << 22, num_slices=4, exact=True,
                              hot_cold=True, pair_fit=False,
                              two_byte=True)
        assert forced.backend == "hotcold2"
        vetoed = plan_backend(nbytes=1 << 22, num_slices=4, exact=True,
                              hot_cold=True, pair_fit=True,
                              two_byte=False)
        assert vetoed.backend == "hotcold"

    def test_two_byte_implies_the_union_scan(self):
        # Demanding the pair path on an unpartitioned, cache-friendly
        # dictionary still routes to hotcold2 (like hot_cold=True)...
        implied = plan_backend(nbytes=1 << 22, num_slices=1, exact=True,
                               fused_bytes=1 << 10, two_byte=True)
        assert implied.backend == "hotcold2"
        # ...unless hot_cold=False explicitly pins the stacked path.
        pinned = plan_backend(nbytes=1 << 22, num_slices=1, exact=True,
                              fused_bytes=1 << 10, two_byte=True,
                              hot_cold=False)
        assert pinned.backend == "chunked"

    def test_backend_exactness_and_stats(self):
        compiled = compiled_with_slices(4)
        ctx = ScanContext(compiled)
        pair = execute(ctx, ScanRequest(self.RAW), backend="hotcold2")
        ref = execute(ctx, ScanRequest(self.RAW), backend="fused")
        assert pair.total_matches == ref.total_matches
        assert pair.stats["hot2_states"] >= 1
        assert pair.stats["hot2_bytes"] > 0
        assert 0.0 <= pair.stats["hot_hit_rate"] <= 1.0

    def test_regex_context_refuses_pair_scan(self):
        compiled = compile_dictionary(["vi.us", "wo?rm"], regex=True)
        with pytest.raises(BackendError, match="union automaton"):
            ScanContext(compiled).hot_cold2()
        with pytest.raises(CompileError):
            compiled.hot_cold2_table()

    def test_batch_totals_prefers_pair_scanner_and_records_stats(self):
        compiled = compiled_with_slices(4)
        ctx = ScanContext(compiled)
        payloads = [self.RAW[:977], b"", b"virus" * 30, self.RAW[7:400]]
        got = ctx.batch_totals(payloads)
        fs = ctx.fused()
        want = fs.run_streams(payloads, weights=fs.weights)[0]
        assert np.array_equal(got, np.asarray(want).sum(axis=0))
        stats = ctx.last_batch_scan_stats
        assert stats is not None
        if compiled.pair_table_fits():
            assert stats["scanner"] == "hotcold2"
        assert stats["steps"] > 0
        assert 0.0 <= stats["hot_hit_rate"] <= 1.0

    def test_matcher_threads_two_byte_through(self):
        from repro.core.matcher import CellStringMatcher

        m = CellStringMatcher([p.decode() for p in
                               [b"virus", b"worm", b"attack"]])
        text = "a virus, a WORM, attack " * 50_000
        auto = m.scan(text, two_byte=True, hot_cold=True)
        pinned = m.scan(text, two_byte=False)
        assert auto.backend == "hotcold2"
        assert auto.total_matches == pinned.total_matches


class TestSharedHotCold2:
    def test_segment_roundtrip_and_attach(self):
        compiled = compiled_with_slices(2)
        table = compiled.hot_cold2_table()
        rng = random.Random(15)
        raw = _corpus(rng, 9_000)
        arr = np.frombuffer(raw, dtype=np.uint8)
        want, _ = count_arr(compiled.hot_cold2_scanner(), arr, 8,
                            table.start,
                            weights=compiled.hot_cold2_scanner().weights)
        with SharedHotCold2Table(table) as seg:
            attached = SharedHotCold2Table.attach(seg.meta())
            sc = attached.scanner()
            got, _ = count_arr(sc, arr, 8, sc.start, weights=sc.weights)
            assert int(got) == int(want)
            assert attached.table.hot2_flat.base is not None
            del sc
            attached.close()

    @pytest.mark.parametrize("workers", [1, 2])
    def test_sharded_scanner_two_byte_mode(self, workers):
        compiled = compiled_with_slices(2)
        rng = random.Random(16)
        raw = _corpus(rng, 200_000)
        with ShardedScanner.from_compiled(compiled, workers=workers,
                                          two_byte=True,
                                          min_shard_bytes=1 << 12) as sc:
            got = sc.count_block(raw)
            streamed = sc.count_stream([raw[:33], b"", raw[33:1234],
                                        raw[1234:]])
        want = int(per_dfa_reference(compiled, raw, 8,
                                     weighted=True)[0].sum())
        assert got == want
        assert streamed == want

    def test_sharded_two_byte_rejects_regex(self):
        from repro.parallel import ShardedScanError

        compiled = compile_dictionary(["vi.us"], regex=True)
        with pytest.raises(ShardedScanError, match="union automaton"):
            ShardedScanner.from_compiled(compiled, workers=1,
                                         two_byte=True)


class TestArtifactV5:
    PATTERNS = [b"virus", b"worm", b"trojan horse"]

    def test_v5_artifact_roundtrips_foldpair(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        built = compile_dictionary(self.PATTERNS, cache=cache)
        path = cache.path_for(built.fingerprint)
        assert f"-v{TABLE_FORMAT_VERSION}" in path.name
        with np.load(path, allow_pickle=False) as z:
            assert "hotcold2_foldpair" in z.files
        loaded = compile_dictionary(self.PATTERNS, cache=cache)
        assert np.array_equal(loaded.foldpair_table(),
                              built.foldpair_table())

    def test_warm_v5_load_scans_pair_path_without_rebuilds(
            self, tmp_path):
        pats = [(chr(65 + i % 26) + chr(65 + i // 26) + "SIG").encode()
                for i in range(40)]
        cache = ArtifactCache(tmp_path)
        built = compile_dictionary(pats, max_states=60, cache=cache)
        assert built.num_slices > 1
        builds = COUNTERS["automaton_builds"]
        loaded = compile_dictionary(pats, max_states=60, cache=cache)
        hc2 = loaded.hot_cold2_scanner()
        assert COUNTERS["automaton_builds"] == builds, \
            "warm start rebuilt the union automaton"
        raw = b"zzAASIGzz BBSIG ccsig " * 50
        arr = np.frombuffer(raw, dtype=np.uint8)
        got, _ = count_arr(hc2, arr, 8, hc2.start, weights=hc2.weights)
        assert int(got) == len(built.match_events(raw))

    def test_v4_file_still_loads_and_scans(self, tmp_path):
        # A faithful v4 artifact: strip the v5-only rows, re-add the
        # dense union matrix, stamp version 4 and store under the v4
        # name — the loader must accept it and the pair path must
        # derive its foldpair lazily.
        import io
        import json

        assert 4 in COMPAT_TABLE_FORMAT_VERSIONS
        # multi-slice so union rows are exercised
        compiled = compiled_with_slices(2)
        cache = ArtifactCache(tmp_path)
        cache.store(compiled)
        v5 = cache.path_for(compiled.fingerprint)
        with np.load(v5, allow_pickle=False) as z:
            arrays = {k: z[k] for k in z.files}
        meta = json.loads(bytes(arrays["meta"]).decode())
        meta["version"] = 4
        arrays["meta"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8).copy()
        arrays.pop("hotcold2_foldpair")
        if "union_csr_keys" in arrays:
            union = compiled.union_dfa()
            arrays["union_trans"] = np.asarray(union.transitions,
                                               dtype=np.int32)
            for k in ("union_csr_keys", "union_csr_vals",
                      "union_csr_default", "union_csr_rows"):
                arrays.pop(k)
        buf = io.BytesIO()
        np.savez_compressed(buf, **arrays)
        v4 = cache.path_for(compiled.fingerprint, version=4)
        v4.write_bytes(buf.getvalue())
        v5.unlink()

        loaded = cache.load(compiled.fingerprint)
        assert loaded is not None
        rng = random.Random(17)
        raw = _corpus(rng, 8_000)
        want, _ = per_dfa_reference(compiled, raw, 8, weighted=True)
        hc2 = loaded.hot_cold2_scanner()
        got, _ = hc2.count_arr_per_dfa(np.frombuffer(raw, np.uint8), 8,
                                       weights=hc2.weights)
        assert np.array_equal(got, want)
