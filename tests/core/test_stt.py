"""STT layout: pointer-row representation, flag tagging, alignment."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.stt import CELL_BYTES, STTError, STTImage, row_stride
from repro.dfa import AhoCorasick, build_dfa


@pytest.fixture(scope="module")
def dfa():
    return build_dfa([bytes([1, 2, 3]), bytes([4, 5])], 32)


class TestRowStride:
    def test_32_symbols_is_128_bytes(self):
        assert row_stride(32) == 128

    def test_power_of_two_required(self):
        with pytest.raises(STTError, match="power of two"):
            row_stride(48)
        with pytest.raises(STTError):
            row_stride(0)

    @pytest.mark.parametrize("width,stride", [
        (16, 64), (64, 256), (128, 512), (256, 1024),
    ])
    def test_strides(self, width, stride):
        assert row_stride(width) == stride


class TestImage:
    def test_alignment_enforced(self, dfa):
        with pytest.raises(STTError, match="aligned"):
            STTImage.from_dfa(dfa, base=100)

    def test_size(self, dfa):
        img = STTImage.from_dfa(dfa, base=0)
        assert img.size_bytes == dfa.num_states * 128

    def test_start_pointer_flag_free(self, dfa):
        img = STTImage.from_dfa(dfa, base=0x8000)
        assert img.start_pointer & 1 == 0
        assert img.start_pointer == 0x8000

    def test_state_pointer_roundtrip(self, dfa):
        img = STTImage.from_dfa(dfa, base=0x8000)
        for s in range(dfa.num_states):
            ptr = img.state_to_pointer(s)
            state, final = img.pointer_to_state(ptr)
            assert state == s
            assert not final  # row pointers themselves carry no flag

    def test_cells_encode_transitions_and_finality(self, dfa):
        img = STTImage.from_dfa(dfa, base=0x8000)
        for s in range(dfa.num_states):
            for c in range(32):
                nxt, final = img.lookup(s, c)
                assert nxt == dfa.step(s, c)
                assert final == bool(dfa.final_mask[nxt])

    def test_final_flag_set_exactly_on_final_destinations(self, dfa):
        img = STTImage.from_dfa(dfa, base=0)
        flagged = set()
        for s in range(dfa.num_states):
            for c in range(32):
                cell = img.cell(s, c)
                if cell & 1:
                    flagged.add(dfa.step(s, c))
        assert flagged == dfa.finals

    def test_pointer_decode_rejects_garbage(self, dfa):
        img = STTImage.from_dfa(dfa, base=0x8000)
        with pytest.raises(STTError):
            img.pointer_to_state(0x8000 + 4)  # not row-aligned
        with pytest.raises(STTError):
            img.pointer_to_state(0x4000)      # below base
        with pytest.raises(STTError):
            img.pointer_to_state(0x8000 + dfa.num_states * 128)

    def test_state_bounds(self, dfa):
        img = STTImage.from_dfa(dfa, base=0)
        with pytest.raises(STTError):
            img.state_to_pointer(dfa.num_states)
        with pytest.raises(STTError):
            img.cell(0, 32)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.binary(min_size=1, max_size=5).map(
        lambda b: bytes(x % 31 + 1 for x in b)),
        min_size=1, max_size=5, unique=True))
    def test_lookup_always_agrees_with_dfa(self, patterns):
        dfa = build_dfa(patterns, 32)
        img = STTImage.from_dfa(dfa, base=0x1000)
        for s in range(dfa.num_states):
            for c in (0, 7, 31):
                assert img.lookup(s, c)[0] == dfa.step(s, c)
