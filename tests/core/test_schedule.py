"""Double-buffering schedules (Figure 5)."""

import pytest

from repro.core.schedule import (
    Interval,
    Schedule,
    ScheduleError,
    double_buffer_schedule,
)

COMPUTE = 25.64e-6
TRANSFER = 5.94e-6


class TestInterval:
    def test_duration(self):
        iv = Interval("compute", 1.0, 3.0, "x")
        assert iv.duration == 2.0

    def test_overlap(self):
        a = Interval("compute", 0, 2, "a")
        b = Interval("dma", 1, 3, "b")
        c = Interval("dma", 2, 4, "c")
        assert a.overlaps(b)
        assert not a.overlaps(c)  # touching is not overlapping


class TestFigure5:
    def test_transfers_hidden_except_first(self):
        """Paper: 'the cost of all data transfers (except the first one)
        is completely hidden'."""
        sched = double_buffer_schedule(6, COMPUTE, TRANSFER)
        assert sched.exposed_transfer_time() == pytest.approx(TRANSFER)

    def test_steady_state_period_is_compute_time(self):
        sched = double_buffer_schedule(5, COMPUTE, TRANSFER)
        computes = sched.on("compute")
        gaps = [b.start - a.end for a, b in zip(computes, computes[1:])]
        # back-to-back computation after the pipeline fills
        assert all(g == pytest.approx(0, abs=1e-12) for g in gaps)
        assert sched.makespan == pytest.approx(TRANSFER + 5 * COMPUTE)

    def test_paper_figure5_numbers(self):
        """16 KB blocks: 25.64 us compute, 5.94 us transfer."""
        sched = double_buffer_schedule(4, COMPUTE, TRANSFER)
        assert sched.busy_time("compute") == pytest.approx(4 * COMPUTE)
        assert sched.busy_time("dma") == pytest.approx(4 * TRANSFER)

    def test_transfer_bound_when_compute_too_fast(self):
        """If transfer > compute the pipeline becomes DMA-bound and
        transfers are exposed."""
        sched = double_buffer_schedule(5, 2e-6, 10e-6)
        assert sched.exposed_transfer_time() > 10e-6
        assert sched.makespan >= 5 * 10e-6

    def test_verify_passes(self):
        double_buffer_schedule(10, COMPUTE, TRANSFER).verify()

    def test_buffers_alternate(self):
        sched = double_buffer_schedule(4, COMPUTE, TRANSFER)
        buffers = [iv.buffer for iv in sched.on("compute")]
        assert buffers == [0, 1, 0, 1]

    def test_invalid_args(self):
        with pytest.raises(ScheduleError):
            double_buffer_schedule(0, COMPUTE, TRANSFER)
        with pytest.raises(ScheduleError):
            double_buffer_schedule(2, -1, TRANSFER)


class TestVerification:
    def test_double_booked_resource_detected(self):
        sched = Schedule()
        sched.add(Interval("compute", 0, 2, "a"))
        sched.add(Interval("compute", 1, 3, "b"))
        with pytest.raises(ScheduleError, match="double-booked"):
            sched.verify()

    def test_buffer_conflict_detected(self):
        sched = Schedule()
        sched.add(Interval("compute", 0, 2, "proc", buffer=0))
        sched.add(Interval("dma", 1, 3, "load", buffer=0))
        with pytest.raises(ScheduleError, match="buffer 0"):
            sched.verify()

    def test_different_buffers_no_conflict(self):
        sched = Schedule()
        sched.add(Interval("compute", 0, 2, "proc", buffer=0))
        sched.add(Interval("dma", 1, 3, "load", buffer=1))
        sched.verify()

    def test_malformed_interval_rejected(self):
        sched = Schedule()
        with pytest.raises(ScheduleError):
            sched.add(Interval("dma", 2, 1, "bad"))


class TestRendering:
    def test_render_contains_bars_and_labels(self):
        sched = double_buffer_schedule(3, COMPUTE, TRANSFER)
        text = sched.render()
        assert "#" in text and "=" in text
        assert "process block 0" in text
        assert "makespan" in text

    def test_empty_schedule(self):
        assert "empty" in Schedule().render()

    def test_utilization_bounds(self):
        sched = double_buffer_schedule(8, COMPUTE, TRANSFER)
        assert 0.9 < sched.utilization("compute") <= 1.0
        assert 0 < sched.utilization("dma") < 0.5
