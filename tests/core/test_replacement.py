"""Dynamic STT replacement (paper §6, Figures 8 and 9)."""

import pytest

from repro.cell.memory import BandwidthModel
from repro.core.engine import VectorDFAEngine
from repro.core.replacement import (
    HALF_TILE_STT_BYTES,
    ReplacementError,
    ReplacementMatcher,
    effective_gbps,
    replacement_schedule,
)
from repro.core.schedule import ScheduleError
from repro.dfa import build_dfa, partition_patterns
from repro.workloads import plant_matches, random_payload, random_signatures


class TestEffectiveGbps:
    def test_single_slice_is_full_speed(self):
        assert effective_gbps(1) == pytest.approx(5.11)

    @pytest.mark.parametrize("n,expected", [
        (2, 5.11 / 2), (3, 5.11 / 4), (4, 5.11 / 6), (7, 5.11 / 12),
    ])
    def test_paper_law(self, n, expected):
        """T(n) = 5.11 / (2(n-1))."""
        assert effective_gbps(n) == pytest.approx(expected)

    def test_spes_multiply(self):
        assert effective_gbps(3, num_spes=8) == \
            pytest.approx(8 * 5.11 / 4)

    def test_monotone_decreasing_in_slices(self):
        values = [effective_gbps(n) for n in range(1, 10)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_invalid(self):
        with pytest.raises(ReplacementError):
            effective_gbps(0)
        with pytest.raises(ReplacementError):
            effective_gbps(2, num_spes=0)
        with pytest.raises(ReplacementError):
            effective_gbps(2, per_tile_gbps=0)


class TestSchedule:
    def test_figure8_schedule_verifies(self):
        sched = replacement_schedule(3, periods=8)
        sched.verify()

    def test_period_timing_matches_paper(self):
        """Periods of 25.64 us; STT chunks of ~17.8/17.5 us riding the
        DMA slack after the 5.94 us input load."""
        sched = replacement_schedule(2, periods=4)
        computes = sched.on("compute")
        period = computes[0].duration
        assert period == pytest.approx(25.64e-6, rel=0.01)
        dmas = sched.on("dma")
        stt_chunks = [iv for iv in dmas if "slice" in iv.label]
        assert stt_chunks[0].duration == pytest.approx(17.83e-6, rel=0.02)

    def test_slice_rotation(self):
        sched = replacement_schedule(3, periods=12)
        labels = [iv.label for iv in sched.on("compute")]
        assert any("slice 0" in lb for lb in labels)
        assert any("slice 1" in lb for lb in labels)
        assert any("slice 2" in lb for lb in labels)

    def test_infeasible_chunk_detected(self):
        """A chunk too large for the period's DMA slack must fail."""
        with pytest.raises(ScheduleError, match="infeasible"):
            replacement_schedule(2, periods=4,
                                 stt_bytes=HALF_TILE_STT_BYTES * 4)

    def test_single_slice_rejected(self):
        with pytest.raises(ReplacementError, match="two slices"):
            replacement_schedule(1)

    def test_invalid_periods(self):
        with pytest.raises(ReplacementError):
            replacement_schedule(2, periods=1)

    def test_zero_length_block_rejected(self):
        with pytest.raises(ReplacementError, match="positive"):
            replacement_schedule(2, block_bytes=0)

    def test_degenerate_stt_rejected(self):
        with pytest.raises(ReplacementError):
            replacement_schedule(2, stt_bytes=16)

    def test_slices_equal_spes_goes_resident(self):
        """With as many SPEs as slices nothing needs replacing: the
        planner pins one slice per SPE at full tile speed."""
        from repro.core.replacement import plan_topology
        plan = plan_topology(4, 4)
        assert plan.slices_per_spe == 1
        assert plan.gbps == pytest.approx(5.11)


class TestReplacementMatcher:
    @pytest.fixture(scope="class")
    def setup(self):
        patterns = random_signatures(30, 3, 8, seed=21)
        matcher = ReplacementMatcher.from_patterns(patterns,
                                                   states_per_slice=40)
        mono = VectorDFAEngine(build_dfa(patterns, 32))
        return patterns, matcher, mono

    def test_multiple_slices_created(self, setup):
        _, matcher, _ = setup
        assert matcher.num_slices > 1

    def test_scan_block_equals_monolithic(self, setup):
        patterns, matcher, mono = setup
        block = plant_matches(random_payload(5000, seed=2), patterns, 30,
                              seed=3)
        total, per_slice = matcher.scan_block(block)
        assert total == mono.count_block(block)
        assert sum(per_slice) == total

    def test_scan_streams_equals_monolithic(self, setup):
        patterns, matcher, mono = setup
        streams = [plant_matches(random_payload(300, seed=i), patterns, 4,
                                 seed=i) for i in range(5)]
        total, _ = matcher.scan_streams(streams)
        expected = sum(mono.run_streams([s]).total for s in streams)
        assert total == expected

    def test_modelled_gbps_uses_law(self, setup):
        _, matcher, _ = setup
        n = matcher.num_slices
        assert matcher.modelled_gbps() == pytest.approx(effective_gbps(n))

    def test_aggregate_stt_bytes(self, setup):
        _, matcher, _ = setup
        expected = sum(d.num_states * 128 for d in matcher.partition.dfas)
        assert matcher.aggregate_stt_bytes() == expected

    def test_empty_block(self, setup):
        _, matcher, _ = setup
        total, per_slice = matcher.scan_block(b"")
        assert total == 0


class TestDoubleBuffer:
    def test_initial_state(self):
        from repro.core.replacement import DoubleBuffer
        buf = DoubleBuffer("first")
        assert buf.active == "first"
        assert buf.standby is None
        assert not buf.has_staged
        assert buf.generation == 1

    def test_stage_then_promote_flips_roles(self):
        from repro.core.replacement import DoubleBuffer
        buf = DoubleBuffer("first")
        buf.stage("second")
        assert buf.active == "first"      # staging never disturbs active
        assert buf.standby == "second"
        retired = buf.promote()
        assert retired == "first"
        assert buf.active == "second"
        assert buf.generation == 2
        assert not buf.has_staged

    def test_promote_without_stage_rejected(self):
        from repro.core.replacement import DoubleBuffer
        with pytest.raises(ReplacementError, match="stage"):
            DoubleBuffer("first").promote()

    def test_generations_are_monotonic(self):
        from repro.core.replacement import DoubleBuffer
        buf = DoubleBuffer(0)
        for i in range(1, 5):
            buf.stage(i)
            assert buf.promote() == i - 1
        assert buf.generation == 5
        assert buf.active == 4


class TestSwapSlice:
    @pytest.fixture
    def matcher(self):
        patterns = random_signatures(30, 3, 8, seed=21)
        return ReplacementMatcher.from_patterns(patterns,
                                                states_per_slice=40)

    def test_swap_changes_one_slice_only(self, matcher):
        replacement = build_dfa([bytes([7, 7, 7])], 32)
        before = [matcher.slice_dfa(i) for i in range(matcher.num_slices)]
        gen = matcher.swap_slice(1, replacement)
        assert gen == 2
        assert matcher.slice_dfa(1) is replacement
        for i in range(matcher.num_slices):
            if i != 1:
                assert matcher.slice_dfa(i) is before[i]
                assert matcher.slice_generation(i) == 1

    def test_swapped_slice_matches_its_new_dictionary(self, matcher):
        replacement = build_dfa([bytes([7, 7, 7])], 32)
        matcher.swap_slice(0, replacement)
        block = bytes([7, 7, 7, 7])
        _, per_slice = matcher.scan_block(block)
        assert per_slice[0] == 2          # overlapping 7,7,7 twice

    def test_swap_updates_aggregate_stt_bytes(self, matcher):
        replacement = build_dfa([bytes([7, 7, 7])], 32)
        matcher.swap_slice(0, replacement)
        expected = sum(matcher.slice_dfa(i).memory_bytes()
                       for i in range(matcher.num_slices))
        assert matcher.aggregate_stt_bytes() == expected

    def test_out_of_range_rejected(self, matcher):
        replacement = build_dfa([bytes([7])], 32)
        with pytest.raises(ReplacementError, match="out of range"):
            matcher.swap_slice(matcher.num_slices, replacement)
        with pytest.raises(ReplacementError, match="out of range"):
            matcher.swap_slice(-1, replacement)

    def test_alphabet_mismatch_rejected(self, matcher):
        replacement = build_dfa([bytes([7])], 64)
        with pytest.raises(ReplacementError, match="alphabet"):
            matcher.swap_slice(0, replacement)


class TestTopologyPlanner:
    def test_paper_strategy_is_in_the_space(self):
        from repro.core.replacement import TopologyPlan, chain_gbps, \
            plan_topology
        plan = plan_topology(1, 8)
        assert plan.gbps == pytest.approx(8 * 5.11)
        assert plan.slices_per_spe == 1

    def test_chain_gbps_levels(self):
        from repro.core.replacement import chain_gbps
        assert chain_gbps(1) == pytest.approx(5.11)
        assert chain_gbps(2) == pytest.approx(5.11 / 2)
        assert chain_gbps(4) == pytest.approx(5.11 / 6)

    def test_chain_gbps_invalid(self):
        from repro.core.replacement import chain_gbps
        with pytest.raises(ReplacementError):
            chain_gbps(0)

    def test_never_worse_than_paper(self):
        from repro.core.replacement import plan_topology
        for n in range(2, 20):
            for p in (1, 2, 4, 8):
                best = plan_topology(n, p)
                paper = effective_gbps(n, num_spes=p)
                assert best.gbps >= paper - 1e-9

    def test_series_distribution_wins_at_scale(self):
        from repro.core.replacement import plan_topology
        best = plan_topology(8, 8)
        assert best.gbps == pytest.approx(5.11)      # 1 chain of 8 resident
        assert best.gbps > effective_gbps(8, num_spes=8)

    def test_single_spe_falls_back_to_cycling(self):
        from repro.core.replacement import plan_topology
        plan = plan_topology(5, 1)
        assert plan.chain_length == 1
        assert plan.slices_per_spe == 5
        assert plan.is_paper_strategy

    def test_describe_and_validation(self):
        from repro.core.replacement import plan_topology
        assert "chain" in plan_topology(4, 8).describe()
        with pytest.raises(ReplacementError):
            plan_topology(0, 8)
        with pytest.raises(ReplacementError):
            plan_topology(4, 0)
