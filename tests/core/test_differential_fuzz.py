"""Differential fuzz over the staged scan pipeline.

Every registered kernel and every pipeline shape (bare, screened,
fallen-through) must be *bit-identical* — counts AND exit states — on
seeded randomized corpora across slice counts D ∈ {1, 2, 4, 8},
including adversarial high-match-density inputs where the packed
prefilter must fall through rather than slow the scan down.  Also locks
the planner-validation contract: contradictory ScanRequest flag combos
raise a BackendError naming the conflict.
"""

import random

import numpy as np
import pytest

from repro.core.backends import (BackendError, ScanContext, ScanRequest,
                                 execute)
from repro.core.compiled import compile_dictionary
from repro.core.scan.kernels import get_kernel, kernel_names
from repro.core.scan.prefilter import count_segments

# Every pattern is >= 3 bytes, so the dictionaries stay screenable and
# the trigram prefilter is exercised on every case.
WORDS = [b"virus", b"worm", b"trojan", b"attack", b"backdoor",
         b"exploit", b"rootkit", b"malware", b"phish", b"botnet",
         b"abab", b"ABABAB", b"BABA", b"tac"]

SLICE_TARGETS = (1, 2, 4, 8)

#: Block backends whose pipelines are compared with and without the
#: screening stage.
BLOCK_BACKENDS = ["serial", "chunked", "fused", "hotcold", "hotcold2"]

_COMPILED = {}


def compiled_with_slices(target):
    if target not in _COMPILED:
        found = None
        if target == 1:
            found = compile_dictionary(WORDS)
        else:
            for max_states in range(120, 4, -1):
                try:
                    c = compile_dictionary(WORDS, max_states=max_states)
                except Exception:
                    continue
                if c.num_slices == target:
                    found = c
                    break
        if found is None:
            pytest.skip(f"no max_states budget yields {target} slices")
        _COMPILED[target] = found
    return _COMPILED[target]


def _corpus(rng, length):
    """Random bytes biased toward planted dictionary words and
    fold-boundary bytes (0x40-0x5F alias letters under the 32-symbol
    fold), so matches straddle speculation chunk edges often."""
    pool = [bytes([rng.randrange(0, 256)]) for _ in range(6)]
    pool += [bytes([rng.randrange(0x40, 0x60)]) for _ in range(4)]
    pool += WORDS[:6] + [b" ", b"\x00", b"aba", b"ruswor"]
    out = b"".join(rng.choice(pool) for _ in range(length // 3 + 1))
    return out[:length]


class TestKernelFuzz:
    """~200 seeded cases: every kernel's per-slice counts, exit states
    and whole-dictionary totals equal the flat reference, and the
    prefiltered count over candidate windows equals the bare total."""

    LENGTHS = [0, 1, 2, 3, 17, 256, 1024, 4096, 8192]

    @pytest.mark.parametrize("slices", SLICE_TARGETS)
    def test_kernels_and_prefilter_bit_identical(self, slices):
        compiled = compiled_with_slices(slices)
        kernels = {name: get_kernel(name).from_compiled(compiled)
                   for name in kernel_names()
                   if get_kernel(name).supports(compiled)}
        assert set(kernels) == {"flat", "fused", "hotcold", "hotcold2"}
        pf = compiled.prefilter()
        assert pf is not None, "dictionary must stay screenable"
        rng = random.Random(1000 + slices)
        for case in range(50):
            data = _corpus(rng, rng.choice(self.LENGTHS))
            arr = np.frombuffer(data, dtype=np.uint8)
            want_counts, want_exits = \
                kernels["flat"].count_arr_per_dfa(arr, 64)
            total = int(want_counts.sum())
            for name, kern in kernels.items():
                counts, exits = kern.count_arr_per_dfa(arr, 64)
                assert np.array_equal(counts, want_counts), \
                    f"{name} counts diverged (D={slices}, case {case})"
                assert np.array_equal(exits, want_exits), \
                    f"{name} exit states diverged " \
                    f"(D={slices}, case {case})"
                assert kern.count_total(arr, 64) == total
            res = pf.screen(arr)
            if not res.fall_through:
                for name, kern in kernels.items():
                    got = count_segments(kern, arr, res.segments)
                    assert got == total, \
                        f"prefiltered {name} diverged " \
                        f"(D={slices}, case {case})"


class TestPipelineFuzz:
    """The assembled pipelines — with and without the screening stage —
    agree with each other and across every block backend."""

    @pytest.mark.parametrize("slices", (2, 4))
    def test_screened_pipelines_match_bare(self, slices):
        compiled = compiled_with_slices(slices)
        rng = random.Random(77 + slices)
        with ScanContext(compiled) as ctx:
            for case in range(10):
                data = _corpus(rng, rng.randrange(0, 6000))
                want = None
                for backend in BLOCK_BACKENDS:
                    bare = execute(
                        ctx, ScanRequest(data=data, prefilter=False),
                        backend=backend)
                    screened = execute(
                        ctx, ScanRequest(data=data, prefilter=True),
                        backend=backend)
                    assert "prefilter" in screened.stats
                    assert "prefilter" not in bare.stats
                    if want is None:
                        want = bare.total_matches
                    assert bare.total_matches == want, \
                        f"bare {backend} diverged (case {case})"
                    assert screened.total_matches == want, \
                        f"screened {backend} diverged (case {case})"

    def test_serial_events_identical_under_prefilter(self):
        compiled = compiled_with_slices(2)
        data = (b"xx virus yy worm zz" + b"\x01" * 200) * 20
        with ScanContext(compiled) as ctx:
            bare = execute(ctx, ScanRequest(data=data, with_events=True,
                                            prefilter=False),
                           backend="serial")
            screened = execute(ctx,
                               ScanRequest(data=data, with_events=True,
                                           prefilter=True),
                               backend="serial")
            assert bare.total_matches > 0
            assert [(e.end, e.pattern) for e in screened.events] == \
                [(e.end, e.pattern) for e in bare.events]
            assert screened.pattern_counts == bare.pattern_counts
            assert screened.stats["prefilter"]["segments"] >= 1

    def test_high_match_density_falls_through(self):
        compiled = compiled_with_slices(4)
        data = b"virus" * 4000
        with ScanContext(compiled) as ctx:
            bare = execute(ctx, ScanRequest(data=data, prefilter=False),
                           backend="hotcold2")
            screened = execute(ctx,
                               ScanRequest(data=data, prefilter=True),
                               backend="hotcold2")
            assert screened.total_matches == bare.total_matches
            assert screened.stats["prefilter"]["fall_through"] is True
            assert screened.backend == "hotcold2"

    def test_clean_corpus_short_circuits(self):
        compiled = compiled_with_slices(2)
        data = b"\x00\x01\x02\x03\x04\x05\x06\x07" * 25_000
        with ScanContext(compiled) as ctx:
            out = execute(ctx, ScanRequest(data=data, prefilter=True),
                          backend="hotcold")
            assert out.total_matches == 0
            assert out.stats["prefilter"]["segments"] == 0
            assert out.stats["prefilter"]["fall_through"] is False

    def test_batch_totals_screened_equals_plain(self):
        compiled = compiled_with_slices(4)
        rng = random.Random(31)
        payloads = [_corpus(rng, n)
                    for n in (0, 7, 977, 4000, 12_000)] + \
            [b"virus" * 800]
        with ScanContext(compiled) as ctx:
            plain = ctx.batch_totals(payloads, prefilter=False)
            screened = ctx.batch_totals(payloads)
            assert np.array_equal(plain, screened)


class TestPolicyPathDifferential:
    """A rule-free tenant is a pass-through: scan counts AND DFA exit
    states through the policy path are bit-identical to the direct
    backend path.  The verdict engine must be attribution over the same
    scan, never a second scan or a semantic fork."""

    @pytest.mark.parametrize("max_states", [1 << 30, 40])
    def test_rule_free_tenant_flow_path_bit_identical(self, max_states):
        from repro.policy import Tenant
        from repro.service.sessions import SessionScanner

        tenant = Tenant("diff", WORDS, max_states=max_states,
                        max_flows=64)
        try:
            with tenant.registry.lease() as gen:
                reference = SessionScanner(gen.compiled, max_flows=64)
            rng = random.Random(900 + max_states % 97)
            flows = [f"f{i}" for i in range(6)]
            for case in range(60):
                fid = rng.choice(flows)
                payload = _corpus(rng, rng.randrange(0, 300))
                verdict, _, _ = tenant.scan_packet(fid, payload)
                new, total, _ = reference.scan_packet(fid, payload)
                assert verdict.new_matches == new, \
                    f"counts diverged (case {case})"
                assert verdict.flow_total == total, \
                    f"lifetime totals diverged (case {case})"
                assert verdict.action == "forward"
                assert verdict.rule is None
            # Exit states: every flow resumes from the same per-slice
            # DFA state on both paths.
            with tenant.registry.lease() as gen:
                for fid in flows:
                    got = [m.peek_state(fid)
                           for m in gen.sessions._matchers]
                    want = [m.peek_state(fid)
                            for m in reference._matchers]
                    assert got == want, f"exit states diverged for {fid}"
        finally:
            tenant.close()

    def test_rule_free_tenant_scan_path_bit_identical(self):
        from repro.policy import Tenant

        tenant = Tenant("diff-scan", WORDS)
        try:
            rng = random.Random(41)
            with tenant.registry.lease() as gen:
                with ScanContext(gen.compiled) as direct:
                    for case in range(10):
                        data = _corpus(rng, rng.randrange(0, 4000))
                        for backend in ("serial", "fused"):
                            mine, _ = tenant.scan(
                                ScanRequest(data=data), backend=backend)
                            ref = execute(direct,
                                          ScanRequest(data=data),
                                          backend=backend)
                            assert mine.total_matches == \
                                ref.total_matches, \
                                f"{backend} diverged (case {case})"
                            assert mine.bytes_scanned == \
                                ref.bytes_scanned
        finally:
            tenant.close()


class TestConflictValidation:
    """Contradictory ScanRequest flag combos raise a BackendError
    naming the conflict — before any planning or table building."""

    def test_two_byte_conflicts_with_no_hot_cold(self):
        with ScanContext(compiled_with_slices(1)) as ctx:
            with pytest.raises(BackendError, match="two_byte.*hot_cold"):
                execute(ctx, ScanRequest(data=b"x", two_byte=True,
                                         hot_cold=False))

    def test_union_flags_conflict_with_events(self):
        with ScanContext(compiled_with_slices(1)) as ctx:
            with pytest.raises(BackendError, match="with_events"):
                execute(ctx, ScanRequest(data=b"x", hot_cold=True,
                                         with_events=True))

    def test_union_flags_conflict_with_no_fuse(self):
        with ScanContext(compiled_with_slices(1)) as ctx:
            with pytest.raises(BackendError, match="fuse=False"):
                execute(ctx, ScanRequest(data=b"x", two_byte=True,
                                         fuse=False))

    def test_union_flags_need_exact_dictionary(self):
        regex = compile_dictionary(["vi.us"], regex=True)
        with ScanContext(regex) as ctx:
            with pytest.raises(BackendError, match="union automaton"):
                execute(ctx, ScanRequest(data=b"x", hot_cold=True))

    def test_prefilter_conflicts_with_stream_input(self):
        with ScanContext(compiled_with_slices(1)) as ctx:
            with pytest.raises(BackendError, match="in-memory block"):
                execute(ctx, ScanRequest(chunks=[b"x"], prefilter=True))

    def test_prefilter_needs_screenable_dictionary(self):
        short = compile_dictionary([b"ab"])
        with ScanContext(short) as ctx:
            with pytest.raises(BackendError, match="screenable"):
                execute(ctx, ScanRequest(data=b"x", prefilter=True))
