"""Compressed STT (default-transition) — the §4 dense-table ablation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.compressed import CompressedSTT
from repro.dfa import AhoCorasick, DFAError, build_dfa
from repro.workloads import adversarial_payload, plant_matches, \
    random_payload, random_signatures

PATTERNS = random_signatures(30, 4, 9, seed=44)


@pytest.fixture(scope="module")
def ac():
    return AhoCorasick(PATTERNS, 32)


@pytest.fixture(scope="module")
def compressed(ac):
    return CompressedSTT.from_aho_corasick(ac)


class TestEquivalence:
    def test_counts_equal_dense(self, ac, compressed):
        dfa = ac.to_dfa()
        block = plant_matches(random_payload(6000, seed=45), PATTERNS, 25,
                              seed=46)
        count, _ = compressed.count_matches(block)
        assert count == dfa.count_matches(block)

    def test_step_equals_dense_everywhere(self, ac, compressed):
        dfa = ac.to_dfa()
        for s in range(dfa.num_states):
            for c in (0, 5, 17, 31):
                nxt, _ = compressed.step(s, c)
                assert nxt == dfa.step(s, c)

    def test_root_default_variant_also_exact(self, ac):
        dfa = ac.to_dfa()
        root_default = CompressedSTT(dfa)
        block = random_payload(2000, seed=47)
        assert root_default.count_matches(block)[0] == \
            dfa.count_matches(block)

    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=0, max_size=300).map(
        lambda b: bytes(x % 32 for x in b)))
    def test_equivalence_property(self, text):
        ac = AhoCorasick(PATTERNS[:8], 32)
        compressed = CompressedSTT.from_aho_corasick(ac)
        assert compressed.count_matches(text)[0] == \
            ac.to_dfa().count_matches(text)


class TestCompression:
    def test_failure_defaults_store_only_trie_edges(self, ac, compressed):
        """The classic identity: a state's dense row differs from its
        failure state's row exactly at its goto edges, so exceptions ==
        trie edges below depth 1 (the root's own edges live in the dense
        root row): (n - 1) - root_children."""
        root_children = int((ac.transitions[0] != 0).sum())
        assert compressed.stats.stored_transitions == \
            (ac.num_states - 1) - root_children

    def test_strong_compression(self, compressed):
        assert compressed.stats.ratio < 0.2

    def test_failure_defaults_beat_root_defaults(self, ac, compressed):
        root_default = CompressedSTT(ac.to_dfa())
        assert compressed.stats.compressed_bytes < \
            root_default.stats.compressed_bytes

    def test_chain_bounded_by_pattern_length(self, ac, compressed):
        assert compressed.stats.max_chain_length <= \
            ac.max_pattern_length


class TestInputDependence:
    def test_fallback_hops_are_input_dependent(self, compressed):
        """The cost of compression: per-byte work varies with content —
        exactly what the paper's dense table avoids."""
        benign = bytes([0] * 4000)       # root self-loops: no fallbacks
        busy = adversarial_payload(PATTERNS[0], 4000,
                                   mismatch_at_end=False)
        assert compressed.average_hops(busy) > \
            compressed.average_hops(benign)

    def test_empty_input(self, compressed):
        assert compressed.average_hops(b"") == 0.0


class TestValidation:
    def test_wrong_default_count(self, ac):
        with pytest.raises(DFAError, match="one default"):
            CompressedSTT(ac.to_dfa(), defaults=[0, 0])

    def test_cyclic_defaults_rejected(self):
        dfa = build_dfa([bytes([1, 2])], 32)
        bad = list(range(dfa.num_states))
        bad[1], bad[2] = 2, 1
        with pytest.raises(DFAError, match="cycle"):
            CompressedSTT(dfa, defaults=bad)

    def test_bad_symbol(self, compressed):
        with pytest.raises(DFAError):
            compressed.step(0, 40)
