"""Local-store planning: the Figure 3 layouts."""

import pytest

from repro.cell.local_store import LocalStore
from repro.core.planner import (
    CODE_STACK_BYTES,
    FIGURE3_CASES,
    PlanError,
    plan_tile,
)


class TestFigure3:
    """The paper's three cases: buffers 2×16k/2×8k/2×4k give STTs of
    190/206/214 KB and 1520/1648/1712 states."""

    @pytest.mark.parametrize("case,buffer_kb,stt_kb,states", [
        (0, 16, 190, 1520),
        (1, 8, 206, 1648),
        (2, 4, 214, 1712),
    ])
    def test_paper_numbers_exact(self, case, buffer_kb, stt_kb, states):
        plan = FIGURE3_CASES[case]
        assert plan.buffer_bytes == buffer_kb * 1024
        assert plan.stt_capacity == stt_kb * 1024
        assert plan.max_states == states

    def test_code_stack_is_34k(self):
        assert CODE_STACK_BYTES == 34 * 1024
        for plan in FIGURE3_CASES:
            assert plan.code_stack_bytes == CODE_STACK_BYTES


class TestPlanTile:
    def test_everything_fits_256k(self):
        plan = plan_tile()
        total = plan.code_stack_bytes + plan.stt_capacity \
            + plan.num_buffers * plan.buffer_bytes
        assert total <= 256 * 1024

    def test_stt_base_aligned_to_stride(self):
        for width in (16, 32, 64, 128, 256):
            plan = plan_tile(alphabet_size=width)
            assert plan.stt_base % plan.stride == 0

    def test_wider_alphabet_fewer_states(self):
        narrow = plan_tile(alphabet_size=32)
        wide = plan_tile(alphabet_size=256)
        assert wide.max_states < narrow.max_states
        # 8x wider rows -> roughly 8x fewer states.
        assert narrow.max_states / wide.max_states == pytest.approx(8, rel=0.1)

    def test_counters_inside_code_stack(self):
        plan = plan_tile()
        assert plan.counters_base + 256 <= plan.code_stack_bytes

    def test_apply_reserves_regions(self):
        plan = plan_tile(buffer_bytes=4096)
        ls = LocalStore()
        plan.apply(ls)
        assert ls.region("stt").start == plan.stt_base
        assert ls.region("buffer0").start == plan.buffer_bases[0]
        assert ls.region("buffer1").start == plan.buffer_bases[1]

    def test_describe_mentions_states(self):
        text = plan_tile().describe()
        assert "1520" in text

    def test_errors(self):
        with pytest.raises(PlanError):
            plan_tile(buffer_bytes=0)
        with pytest.raises(PlanError):
            plan_tile(buffer_bytes=100)     # not multiple of 16
        with pytest.raises(PlanError):
            plan_tile(num_buffers=0)
        with pytest.raises(PlanError):
            plan_tile(buffer_bytes=128 * 1024)  # 2x128k leaves no STT room
        with pytest.raises(PlanError):
            plan_tile(code_stack_bytes=16)

    def test_single_buffer_mode(self):
        plan = plan_tile(buffer_bytes=16 * 1024, num_buffers=1)
        assert len(plan.buffer_bases) == 1
        assert plan.max_states > FIGURE3_CASES[0].max_states
