"""Filter packs: serialization round trips and corruption detection."""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.artifact import (
    ArtifactError,
    FORMAT_VERSION,
    MAGIC,
    pack_filter,
    unpack_filter,
)
from repro.dfa import AhoCorasick, build_dfa, case_fold_32, identity_fold
from repro.workloads import plant_matches, random_payload, \
    random_signatures


@pytest.fixture(scope="module")
def compiled():
    fold = case_fold_32()
    patterns = random_signatures(12, 3, 8, seed=60)
    return build_dfa(patterns, 32), fold, patterns


class TestRoundTrip:
    def test_structural_equality(self, compiled):
        dfa, fold, _ = compiled
        blob = pack_filter(dfa, fold)
        dfa2, fold2 = unpack_filter(blob)
        assert dfa2.num_states == dfa.num_states
        assert dfa2.alphabet_size == dfa.alphabet_size
        assert dfa2.start == dfa.start
        assert dfa2.finals == dfa.finals
        assert dfa2.outputs == dfa.outputs
        assert (dfa2.transitions == dfa.transitions).all()
        assert fold2.table == fold.table

    def test_behavioural_equality(self, compiled):
        dfa, fold, patterns = compiled
        dfa2, _ = unpack_filter(pack_filter(dfa, fold))
        block = plant_matches(random_payload(3000, seed=61), patterns, 15,
                              seed=62)
        assert dfa2.count_matches(block) == dfa.count_matches(block)
        assert dfa2.match_events(block) == dfa.match_events(block)

    def test_blob_is_stable(self, compiled):
        dfa, fold, _ = compiled
        assert pack_filter(dfa, fold) == pack_filter(dfa, fold)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.binary(min_size=1, max_size=5).map(
        lambda b: bytes(x % 31 + 1 for x in b)),
        min_size=1, max_size=6, unique=True))
    def test_roundtrip_property(self, patterns):
        dfa = build_dfa(patterns, 32)
        fold = case_fold_32()
        dfa2, _ = unpack_filter(pack_filter(dfa, fold))
        assert dfa2.equivalent_to(dfa)


class TestValidation:
    def test_magic_checked(self, compiled):
        dfa, fold, _ = compiled
        blob = bytearray(pack_filter(dfa, fold))
        blob[:4] = b"XXXX"
        with pytest.raises(ArtifactError, match="magic"):
            unpack_filter(bytes(blob))

    def test_bitflip_detected_anywhere(self, compiled):
        dfa, fold, _ = compiled
        blob = bytearray(pack_filter(dfa, fold))
        for pos in (10, 300, len(blob) // 2, len(blob) - 10):
            corrupted = bytearray(blob)
            corrupted[pos] ^= 0x40
            with pytest.raises(ArtifactError):
                unpack_filter(bytes(corrupted))

    def test_truncation_detected(self, compiled):
        dfa, fold, _ = compiled
        blob = pack_filter(dfa, fold)
        with pytest.raises(ArtifactError):
            unpack_filter(blob[:-20])

    def test_version_checked(self, compiled):
        import zlib
        dfa, fold, _ = compiled
        blob = bytearray(pack_filter(dfa, fold))
        struct.pack_into(">H", blob, 4, FORMAT_VERSION + 1)
        # Re-seal the checksum so only the version mismatch fires.
        blob[-4:] = struct.pack(">I", zlib.crc32(bytes(blob[:-4])))
        with pytest.raises(ArtifactError, match="version"):
            unpack_filter(bytes(blob))

    def test_short_blob(self):
        with pytest.raises(ArtifactError, match="short"):
            unpack_filter(b"RPRO")

    def test_fold_mismatch_rejected_at_pack_time(self, compiled):
        dfa, _, _ = compiled
        with pytest.raises(ArtifactError, match="width"):
            pack_filter(dfa, identity_fold(256))


class TestWideAlphabets:
    def test_256_symbol_pack(self):
        fold = identity_fold(256)
        dfa = build_dfa([b"needle"], 256)
        dfa2, fold2 = unpack_filter(pack_filter(dfa, fold))
        assert dfa2.count_matches(b"hay needle hay") == 1
        assert fold2.is_identity()
