"""The full-system pipeline: PPE + DMA + tiles end to end."""

import numpy as np
import pytest

from repro.core.planner import plan_tile
from repro.core.system import CellMatchingSystem, SystemError
from repro.dfa import AhoCorasick, case_fold_32, identity_fold
from repro.workloads import ascii_keywords, plant_matches


@pytest.fixture(scope="module")
def setup():
    fold = case_fold_32()
    words = ascii_keywords(10, seed=3)
    dfa = AhoCorasick([fold.fold_bytes(w) for w in words], 32).to_dfa()
    rng = np.random.default_rng(0)
    raw = bytes(rng.integers(65, 91, 24_000, dtype=np.uint8))
    raw = plant_matches(raw, words, 15, seed=1)
    return dfa, words, raw


class TestConstruction:
    def test_tile_budget(self, setup):
        dfa, *_ = setup
        with pytest.raises(SystemError):
            CellMatchingSystem(dfa, num_tiles=0)
        with pytest.raises(SystemError):
            CellMatchingSystem(dfa, num_tiles=9)

    def test_alphabet_mismatch(self, setup):
        dfa, *_ = setup
        with pytest.raises(SystemError, match="fold width"):
            CellMatchingSystem(dfa, fold=identity_fold(256))

    def test_bad_version(self, setup):
        dfa, *_ = setup
        with pytest.raises(SystemError):
            CellMatchingSystem(dfa, version=9)

    def test_tiles_live_on_distinct_spes(self, setup):
        dfa, *_ = setup
        sys_ = CellMatchingSystem(dfa, num_tiles=3)
        stores = {id(t.local_store) for t in sys_.tiles}
        assert len(stores) == 3
        assert sys_.tiles[0].local_store is sys_.chip.spe(0).local_store


class TestFilterBlock:
    def test_counts_verified_against_lane_reference(self, setup):
        dfa, words, raw = setup
        sys_ = CellMatchingSystem(dfa, num_tiles=2)
        result = sys_.filter_block(raw)  # verify=True raises on mismatch
        assert result.total_matches > 0
        assert result.bytes_scanned == len(raw)

    def test_transitions_cover_input(self, setup):
        dfa, _, raw = setup
        sys_ = CellMatchingSystem(dfa, num_tiles=1)
        result = sys_.filter_block(raw)
        assert result.transitions >= len(raw)

    def test_empty_input_rejected(self, setup):
        dfa, *_ = setup
        with pytest.raises(SystemError, match="empty"):
            CellMatchingSystem(dfa).filter_block(b"")

    def test_schedules_verify_and_one_per_tile(self, setup):
        dfa, _, raw = setup
        sys_ = CellMatchingSystem(dfa, num_tiles=2)
        result = sys_.filter_block(raw)
        assert len(result.schedules) == 2
        for sched in result.schedules:
            sched.verify()

    def test_parallel_tiles_scale_end_to_end_rate(self, setup):
        dfa, _, raw = setup
        r1 = CellMatchingSystem(dfa, num_tiles=1).filter_block(raw)
        r4 = CellMatchingSystem(dfa, num_tiles=4).filter_block(raw)
        assert r4.end_to_end_gbps > 2.5 * r1.end_to_end_gbps

    def test_transfers_mostly_hidden_on_long_input(self, setup):
        dfa, words, _ = setup
        rng = np.random.default_rng(5)
        long_raw = bytes(rng.integers(65, 91, 100_000, dtype=np.uint8))
        sys_ = CellMatchingSystem(dfa, num_tiles=1)
        result = sys_.filter_block(long_raw)
        # Many blocks: only the first transfer is exposed.
        assert result.transfer_hidden_fraction() > 0.7

    def test_end_to_end_slower_than_compute_only(self, setup):
        dfa, _, raw = setup
        result = CellMatchingSystem(dfa, num_tiles=1).filter_block(raw)
        assert result.end_to_end_gbps <= result.compute_gbps + 1e-9

    def test_ppe_cost_accounted(self, setup):
        dfa, _, raw = setup
        result = CellMatchingSystem(dfa, num_tiles=1).filter_block(raw)
        assert result.ppe_seconds > 0
        assert result.makespan_seconds >= result.ppe_seconds

    def test_scalar_version_system(self, setup):
        dfa, words, _ = setup
        rng = np.random.default_rng(7)
        raw = bytes(rng.integers(65, 91, 3000, dtype=np.uint8))
        raw = plant_matches(raw, words, 4, seed=8)
        sys_ = CellMatchingSystem(dfa, num_tiles=1, version=1,
                                  plan=plan_tile(buffer_bytes=1024))
        result = sys_.filter_block(raw)
        fold = case_fold_32()
        expected = dfa.count_matches(fold.fold_bytes(raw))
        assert result.total_matches == expected


class TestRawBytesHonesty:
    def test_case_insensitivity_through_the_whole_pipeline(self, setup):
        dfa, words, _ = setup
        target = words[0]
        raw = b"." * 64 + target.lower() + b"." * 64
        sys_ = CellMatchingSystem(dfa, num_tiles=1,
                                  plan=plan_tile(buffer_bytes=1024))
        result = sys_.filter_block(raw)
        assert result.total_matches >= 1
