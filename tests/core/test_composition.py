"""Tile composition: series/parallel/mixed (Figures 6, 7)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.composition import (
    CompositionError,
    TileComposition,
    mixed,
    parallel,
    series,
)
from repro.core.engine import VectorDFAEngine
from repro.dfa import AhoCorasick, build_dfa, partition_patterns
from repro.workloads import plant_matches, random_payload

PATTERNS = [bytes([1, 2, 3]), bytes([4, 5]), bytes([6, 7, 8, 9]),
            bytes([2, 2])]


def split_dfas(max_states=8):
    return partition_patterns(PATTERNS, max_states).dfas


class TestModel:
    def test_parallel_multiplies_throughput(self):
        dfa = build_dfa(PATTERNS, 32)
        comp = parallel(dfa, ways=2)
        assert comp.throughput_gbps(5.11) == pytest.approx(10.22)
        assert comp.spes_used == 2

    def test_figure7_mixed_configuration(self):
        """2 parallel groups × 4 series tiles = 8 SPEs, 10.22 Gbps, ~4x
        dictionary."""
        dfas = [build_dfa([bytes([i, i])], 32) for i in range(1, 5)]
        comp = mixed(dfas, ways=2)
        assert comp.spes_used == 8
        assert comp.throughput_gbps(5.11) == pytest.approx(10.22)
        assert comp.total_states == sum(d.num_states for d in dfas)

    def test_series_keeps_throughput(self):
        comp = series(split_dfas())
        assert comp.throughput_gbps(5.11) == pytest.approx(5.11)

    def test_chip_budget_enforced(self):
        dfa = build_dfa(PATTERNS, 32)
        with pytest.raises(CompositionError, match="SPEs"):
            parallel(dfa, ways=9)
        dfas = [dfa] * 5
        with pytest.raises(CompositionError):
            mixed(dfas, ways=2)

    def test_eight_spe_headline(self):
        """8 parallel tiles -> 40.88 Gbps (paper §5)."""
        comp = parallel(build_dfa(PATTERNS, 32), ways=8)
        assert comp.throughput_gbps(5.11) == pytest.approx(40.88)

    def test_invalid_configurations(self):
        with pytest.raises(CompositionError):
            TileComposition([], ways=1)
        with pytest.raises(CompositionError):
            TileComposition([build_dfa(PATTERNS, 32)], ways=0)
        with pytest.raises(CompositionError, match="overlap"):
            TileComposition([build_dfa(PATTERNS, 32)], ways=1, overlap=-1)

    def test_alphabet_mismatch_rejected(self):
        a = build_dfa(PATTERNS, 32)
        b = build_dfa([bytes([1])], 16)
        with pytest.raises(CompositionError, match="alphabet"):
            series([a, b])

    def test_describe(self):
        comp = parallel(build_dfa(PATTERNS, 32), ways=2)
        text = comp.describe()
        assert "2 parallel" in text and "Gbps" in text


class TestDefaultOverlap:
    def test_overlap_is_longest_pattern_minus_one(self):
        comp = parallel(build_dfa(PATTERNS, 32), ways=2)
        assert comp.overlap == max(len(p) for p in PATTERNS) - 1

    def test_explicit_overlap_respected(self):
        comp = parallel(build_dfa(PATTERNS, 32), ways=2, overlap=10)
        assert comp.overlap == 10


class TestFunctionalEquivalence:
    def make_block(self, seed, n=3000):
        return plant_matches(random_payload(n, seed=seed), PATTERNS, 25,
                             seed=seed + 1)

    def reference(self, block):
        return VectorDFAEngine(build_dfa(PATTERNS, 32)).count_block(block)

    @pytest.mark.parametrize("ways", [1, 2, 4, 8])
    def test_parallel_slicing_exact(self, ways):
        block = self.make_block(ways)
        comp = parallel(build_dfa(PATTERNS, 32), ways=ways)
        assert comp.scan_block(block).total_matches == self.reference(block)

    def test_boundary_crossing_match_preserved(self):
        """Plant a match exactly across every slice boundary."""
        block = bytearray(random_payload(4000, seed=77))
        comp = parallel(build_dfa(PATTERNS, 32), ways=4)
        base = -(-len(block) // 4)
        for w in range(1, 4):
            pos = w * base - 2  # straddles the boundary
            block[pos:pos + 4] = PATTERNS[2]
        block = bytes(block)
        assert comp.scan_block(block).total_matches == self.reference(block)

    def test_series_union_equals_monolithic(self):
        block = self.make_block(9)
        comp = series(split_dfas())
        assert comp.scan_block(block).total_matches == self.reference(block)

    def test_mixed_equals_monolithic(self):
        block = self.make_block(10)
        comp = mixed(split_dfas(), ways=2)
        assert comp.scan_block(block).total_matches == self.reference(block)

    def test_scan_streams(self):
        streams = [self.make_block(s, 500) for s in range(4)]
        comp = series(split_dfas())
        expected = sum(self.reference(s) for s in streams)
        assert comp.scan_streams(streams).total_matches == expected

    def test_empty_block(self):
        comp = parallel(build_dfa(PATTERNS, 32), ways=2)
        assert comp.scan_block(b"").total_matches == 0

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=0, max_size=800).map(
        lambda b: bytes(x % 32 for x in b)),
        st.integers(min_value=1, max_value=8))
    def test_parallel_exactness_property(self, block, ways):
        comp = parallel(build_dfa(PATTERNS, 32), ways=ways)
        ref = build_dfa(PATTERNS, 32).count_matches(block)
        assert comp.scan_block(block).total_matches == ref
