"""Flow-aware scanning: state continuity across packets."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.flows import FlowError, FlowMatcher
from repro.dfa import build_dfa
from repro.workloads import plant_matches, random_payload

PATTERNS = [bytes([1, 2, 3, 4]), bytes([5, 6])]


@pytest.fixture
def matcher():
    return FlowMatcher(build_dfa(PATTERNS, 32))


class TestCrossPacketMatching:
    def test_match_split_across_packets_is_found(self, matcher):
        """The defining requirement: [1,2 | 3,4] in one flow matches."""
        assert matcher.scan_packet("flow-a", bytes([0, 1, 2])) == 0
        assert matcher.scan_packet("flow-a", bytes([3, 4, 0])) == 1

    def test_split_across_different_flows_does_not_match(self, matcher):
        assert matcher.scan_packet("a", bytes([0, 1, 2])) == 0
        assert matcher.scan_packet("b", bytes([3, 4, 0])) == 0

    def test_flow_equals_contiguous_stream(self, matcher):
        stream = plant_matches(random_payload(900, seed=1), PATTERNS, 8,
                               seed=2)
        expected = matcher.dfa.count_matches(stream)
        total = 0
        for off in range(0, len(stream), 100):
            total += matcher.scan_packet("f", stream[off:off + 100])
        assert total == expected

    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=0, max_size=400).map(
        lambda b: bytes(x % 32 for x in b)),
        st.lists(st.integers(min_value=1, max_value=50), min_size=1,
                 max_size=8))
    def test_any_packetization_property(self, stream, cut_sizes):
        """Whatever way a stream is cut into packets, per-flow totals
        equal the whole-stream count."""
        matcher = FlowMatcher(build_dfa(PATTERNS, 32))
        expected = matcher.dfa.count_matches(stream)
        total = 0
        pos = 0
        i = 0
        while pos < len(stream):
            size = cut_sizes[i % len(cut_sizes)]
            total += matcher.scan_packet("x", stream[pos:pos + size])
            pos += size
            i += 1
        assert total == expected


class TestBatchScanning:
    def test_batch_equals_sequential(self):
        rng = np.random.default_rng(3)
        packets = []
        for i in range(40):
            fid = f"flow{i % 5}"
            payload = plant_matches(
                random_payload(64, seed=int(rng.integers(2 ** 31))),
                PATTERNS, 1, seed=int(rng.integers(2 ** 31)))
            packets.append((fid, payload))

        seq = FlowMatcher(build_dfa(PATTERNS, 32))
        seq_counts = [seq.scan_packet(f, p) for f, p in packets]

        batch = FlowMatcher(build_dfa(PATTERNS, 32))
        batch_counts = batch.scan_batch(packets)
        assert batch_counts == seq_counts
        assert batch.total_matches() == seq.total_matches()

    def test_same_flow_packets_serialize_in_order(self):
        matcher = FlowMatcher(build_dfa(PATTERNS, 32))
        counts = matcher.scan_batch([
            ("f", bytes([0, 1, 2])),
            ("f", bytes([3, 4, 0])),
        ])
        assert counts == [0, 1]

    def test_variable_packet_sizes(self):
        matcher = FlowMatcher(build_dfa(PATTERNS, 32))
        counts = matcher.scan_batch([
            ("a", bytes([1, 2, 3, 4])),
            ("b", bytes([5, 6])),
            ("c", bytes([0])),
            ("d", b""),
        ])
        assert counts == [1, 1, 0, 0]

    def test_empty_batch(self):
        matcher = FlowMatcher(build_dfa(PATTERNS, 32))
        assert matcher.scan_batch([]) == []


class TestCountingSemantics:
    # Suffix-overlapping entries all end at the same DFA state, so
    # positional (+1 per final-state entry) and per-entry counting
    # diverge: flows must count per entry, like the block backends.
    NESTED = [bytes([1, 2, 3]), bytes([2, 3]), bytes([3])]

    def test_suffix_overlaps_count_per_entry(self):
        matcher = FlowMatcher(build_dfa(self.NESTED, 32))
        assert matcher.scan_packet("f", bytes([0, 1, 2, 3, 0])) == 3

    def test_overlap_split_across_packets(self):
        matcher = FlowMatcher(build_dfa(self.NESTED, 32))
        assert matcher.scan_packet("f", bytes([0, 1, 2])) == 0
        assert matcher.scan_packet("f", bytes([3, 0])) == 3

    def test_batch_counts_per_entry(self):
        matcher = FlowMatcher(build_dfa(self.NESTED, 32))
        assert matcher.scan_batch([("a", bytes([1, 2, 3])),
                                   ("b", bytes([2, 3]))]) == [3, 2]


class TestFlowTable:
    def test_close_flow_reports_and_evicts(self, matcher):
        matcher.scan_packet("f", bytes([5, 6, 5, 6]))
        byte_count, match_count = matcher.close_flow("f")
        assert byte_count == 4
        assert match_count == 2
        with pytest.raises(FlowError):
            matcher.flow_matches("f")

    def test_reopened_flow_starts_fresh(self, matcher):
        matcher.scan_packet("f", bytes([1, 2]))
        matcher.close_flow("f")
        # Prefix lost: the pattern no longer completes.
        assert matcher.scan_packet("f", bytes([3, 4])) == 0

    def test_table_capacity(self):
        matcher = FlowMatcher(build_dfa(PATTERNS, 32), max_flows=2)
        matcher.scan_packet("a", bytes([0]))
        matcher.scan_packet("b", bytes([0]))
        with pytest.raises(FlowError, match="full"):
            matcher.scan_packet("c", bytes([0]))

    def test_unknown_flow_errors(self, matcher):
        with pytest.raises(FlowError):
            matcher.close_flow("ghost")

    def test_invalid_capacity(self):
        with pytest.raises(FlowError):
            FlowMatcher(build_dfa(PATTERNS, 32), max_flows=0)

    def test_num_flows(self, matcher):
        matcher.scan_packet("a", bytes([0]))
        matcher.scan_packet("b", bytes([0]))
        assert matcher.num_flows == 2


class TestEvictionPolicy:
    def _matcher(self, policy, max_flows=2):
        return FlowMatcher(build_dfa(PATTERNS, 32), max_flows=max_flows,
                           on_full=policy)

    def test_invalid_policy_rejected(self):
        with pytest.raises(FlowError, match="on_full"):
            self._matcher("fifo")

    def test_reject_is_default_and_counts_nothing(self):
        matcher = self._matcher("reject")
        matcher.scan_packet("a", bytes([0]))
        matcher.scan_packet("b", bytes([0]))
        with pytest.raises(FlowError, match="full"):
            matcher.scan_packet("c", bytes([0]))
        assert matcher.evictions == 0
        assert matcher.num_flows == 2

    def test_lru_evicts_least_recently_used(self):
        matcher = self._matcher("lru")
        matcher.scan_packet("a", bytes([0]))
        matcher.scan_packet("b", bytes([0]))
        matcher.scan_packet("a", bytes([0]))   # refresh a; b is oldest
        matcher.scan_packet("c", bytes([0]))   # evicts b
        assert matcher.evictions == 1
        assert "b" not in matcher
        assert "a" in matcher and "c" in matcher

    def test_lru_eviction_loses_prefix_state(self):
        matcher = self._matcher("lru")
        matcher.scan_packet("victim", bytes([1, 2]))
        matcher.scan_packet("x", bytes([0]))
        matcher.scan_packet("y", bytes([0]))   # evicts victim
        # Re-opened flow starts at the DFA root: the suffix alone
        # cannot complete the pattern.
        assert matcher.scan_packet("victim", bytes([3, 4])) == 0

    def test_touch_registers_and_refreshes(self):
        matcher = self._matcher("lru")
        matcher.touch("a")
        matcher.scan_packet("b", bytes([0]))
        matcher.touch("a")                     # refresh: b is now oldest
        matcher.scan_packet("c", bytes([0]))   # evicts b
        assert matcher.flow_ids() == ["a", "c"]

    def test_flow_ids_in_lru_order(self):
        matcher = self._matcher("lru", max_flows=4)
        for fid in ("a", "b", "c"):
            matcher.scan_packet(fid, bytes([0]))
        matcher.scan_packet("a", bytes([0]))
        assert matcher.flow_ids() == ["b", "c", "a"]

    def test_touch_respects_reject_policy(self):
        matcher = self._matcher("reject")
        matcher.touch("a")
        matcher.touch("b")
        with pytest.raises(FlowError, match="full"):
            matcher.touch("c")
