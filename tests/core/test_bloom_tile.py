"""Bloom-filter tile (§7 future work)."""

import pytest

from repro.core.bloom_tile import BloomTile, BloomTileError, bloom_capacity
from repro.core.planner import plan_tile
from repro.dfa import AhoCorasick
from repro.workloads import plant_matches, random_payload, \
    random_signatures


@pytest.fixture(scope="module")
def patterns():
    return random_signatures(40, 4, 10, seed=33)


@pytest.fixture(scope="module")
def tile(patterns):
    return BloomTile(patterns)


class TestCapacity:
    def test_capacity_formula(self):
        # m = 1000 bits at 1%: n = -1000 * ln(2)^2 / ln(0.01) ≈ 104
        assert bloom_capacity(1000, 0.01) == 104

    def test_capacity_grows_with_bits(self):
        assert bloom_capacity(2000, 0.01) > bloom_capacity(1000, 0.01)

    def test_capacity_shrinks_with_stricter_fp(self):
        assert bloom_capacity(1000, 0.001) < bloom_capacity(1000, 0.01)

    def test_tile_holds_vastly_more_than_dfa(self, tile):
        """The §7 motivation: 190 KB of bits hold >100k signatures at 1%
        where the DFA holds ~1500 states."""
        assert tile.capacity_signatures > 100_000
        assert plan_tile().max_states == 1520

    def test_invalid_args(self):
        with pytest.raises(BloomTileError):
            bloom_capacity(0, 0.01)
        with pytest.raises(BloomTileError):
            bloom_capacity(100, 1.5)

    def test_overflowing_filter_rejected(self, patterns):
        tiny = plan_tile(buffer_bytes=110 * 1024)  # ~2 KB of STT space
        huge = random_signatures(200_000 // 100, 4, 8, seed=34)
        with pytest.raises(BloomTileError, match="bits"):
            BloomTile(huge * 60, plan=tiny, fp_rate=1e-9)

    def test_empty_dictionary_rejected(self):
        with pytest.raises(BloomTileError):
            BloomTile([])


class TestThroughputModel:
    def test_cost_grows_with_length_groups(self, patterns):
        few = BloomTile([p for p in patterns if len(p) == len(
            patterns[0])] or patterns[:1])
        many = BloomTile(patterns)
        assert many.num_length_groups >= few.num_length_groups
        assert many.cycles_per_byte() >= few.cycles_per_byte()

    def test_hit_rate_degrades_throughput(self, tile):
        assert tile.modelled_gbps(hit_rate=0.5) < \
            tile.modelled_gbps(hit_rate=0.0)

    def test_hit_rate_bounds(self, tile):
        with pytest.raises(BloomTileError):
            tile.cycles_per_byte(hit_rate=1.5)

    def test_clean_traffic_rate_positive(self, tile):
        assert 0 < tile.modelled_gbps() < 10


class TestFunctionalScan:
    def test_matches_agree_with_dfa(self, patterns, tile):
        block = plant_matches(random_payload(20_000, seed=35), patterns,
                              50, seed=36)
        ac = AhoCorasick(patterns, 32)
        assert tile.scan(block).events == ac.find_all(block)

    def test_no_false_negatives_ever(self, patterns, tile):
        """Bloom screening must never drop a real match."""
        for seed in range(5):
            block = plant_matches(random_payload(5_000, seed=seed),
                                  patterns, 20, seed=seed + 100)
            ac = AhoCorasick(patterns, 32)
            assert len(tile.scan(block).events) == len(ac.find_all(block))

    def test_scan_reports_verification_cost(self, patterns, tile):
        block = plant_matches(random_payload(10_000, seed=37), patterns,
                              30, seed=38)
        result = tile.scan(block)
        assert result.verifications >= result.total_matches
        assert result.false_positives >= 0
        assert result.modelled_gbps > 0

    def test_repr(self, tile):
        assert "BloomTile" in repr(tile)
