"""DFA tile execution: streams, blocks, chunking, verification."""

import numpy as np
import pytest

from repro.cell.spu import SPUStats
from repro.core.kernels import SIMD_LANES
from repro.core.planner import plan_tile
from repro.core.tile import DFATile, TileError, merge_stats
from repro.dfa import build_dfa
from tests.conftest import make_streams

PATTERNS = [bytes([1, 2, 3]), bytes([4, 5])]


@pytest.fixture(scope="module")
def tile():
    return DFATile(build_dfa(PATTERNS, 32), plan=plan_tile(buffer_bytes=1024))


class TestConstruction:
    def test_rejects_oversized_dfa(self):
        from repro.workloads import signatures_for_states
        plan = plan_tile(buffer_bytes=1024)
        sigs = signatures_for_states(plan.max_states + 50, seed=1)
        big = build_dfa(sigs, 32)
        with pytest.raises(TileError, match="at most"):
            DFATile(big, plan=plan)

    def test_rejects_alphabet_mismatch(self):
        dfa = build_dfa(PATTERNS, 16)
        with pytest.raises(TileError, match="alphabet"):
            DFATile(dfa, plan=plan_tile(alphabet_size=32))

    def test_rejects_bad_version(self):
        with pytest.raises(TileError):
            DFATile(build_dfa(PATTERNS, 32), version=7)

    def test_stt_written_to_local_store(self, tile):
        raw = tile.local_store.read(tile.plan.stt_base, 16)
        assert raw == tile.stt.payload[:16]

    def test_repr(self, tile):
        assert "DFATile" in repr(tile)


class TestRunStreams:
    def test_simd_counts_verified(self, tile):
        streams = make_streams(PATTERNS, length=96, seed=5)
        result = tile.run_streams(streams)
        assert result.counts == tile.reference_counts(streams)
        assert result.transitions == 96 * SIMD_LANES

    def test_scalar_version(self, tile):
        streams = make_streams(PATTERNS, length=300, n=1, seed=6)
        result = tile.run_streams(streams, version=1)
        assert result.counts == tile.reference_counts(streams)

    def test_wrong_stream_count(self, tile):
        with pytest.raises(TileError, match="expects"):
            tile.run_streams([b"\x01" * 48] * 3)

    def test_ragged_streams(self, tile):
        streams = [b"\x01" * 48] * 15 + [b"\x01" * 32]
        with pytest.raises(TileError, match="equal length"):
            tile.run_streams(streams)

    def test_empty_streams(self, tile):
        with pytest.raises(TileError, match="non-empty"):
            tile.run_streams([b""] * 16)

    def test_unfolded_symbols_rejected(self, tile):
        streams = [bytes([200]) * 48] * 16
        with pytest.raises(TileError, match="fold"):
            tile.run_streams(streams)

    def test_unroll_granularity_enforced(self, tile):
        streams = [b"\x01" * 50] * 16  # 50 not a multiple of 3 (v4)
        with pytest.raises(TileError, match="granularity"):
            tile.run_streams(streams, version=4)

    def test_chunking_across_small_buffer(self, tile):
        """Streams longer than the input buffer are processed in chunks
        with state carried... chunks restart the DFA, so use streams whose
        matches don't straddle the chunk boundary to keep counts exact."""
        # buffer 1024 bytes -> 64 bytes per stream per chunk.
        streams = make_streams(PATTERNS, length=192, seed=9)
        result = tile.run_streams(streams, version=2)
        assert result.transitions == 192 * 16
        # verify=True (default) already cross-checked per-chunk counts
        # against the reference on chunked boundaries via run_streams'
        # internal verification.
        assert sum(result.counts) > 0


class TestRunBlock:
    def test_block_is_split_and_padded(self, tile):
        rng = np.random.default_rng(3)
        block = rng.integers(0, 32, 777, dtype=np.uint8).tobytes()
        result = tile.run_block(block, version=2)
        assert result.transitions >= 777

    def test_scalar_block(self, tile):
        block = bytes([0] * 20 + list(PATTERNS[0]) + [0] * 41)
        result = tile.run_block(block, version=1)
        assert result.total_matches == 1


class TestResultMetrics:
    def test_throughput_positive_and_consistent(self, tile):
        streams = make_streams(PATTERNS, length=96, seed=10)
        result = tile.run_streams(streams)
        gbps = result.throughput_gbps()
        tps = result.throughput_transitions_per_s()
        assert gbps == pytest.approx(tps * 8 / 1e9)
        assert 0 < gbps < 30

    def test_cycles_per_transition_reasonable(self, tile):
        streams = make_streams(PATTERNS, length=96, seed=11)
        result = tile.run_streams(streams, version=4)
        assert 4 < result.cycles_per_transition < 10


class TestMergeStats:
    def test_merge_sums_fields(self):
        a = SPUStats(cycles=10, instructions=5, dual_issue_cycles=1,
                     single_issue_cycles=3, stall_cycles=2,
                     branch_penalty_cycles=0, branches_taken=1,
                     registers_used=10)
        b = SPUStats(cycles=20, instructions=15, dual_issue_cycles=5,
                     single_issue_cycles=5, stall_cycles=1,
                     branch_penalty_cycles=18, branches_taken=2,
                     registers_used=40)
        m = merge_stats([a, b])
        assert m.cycles == 30
        assert m.instructions == 20
        assert m.registers_used == 40
        assert m.branches_taken == 3

    def test_merge_empty(self):
        assert merge_stats([]).cycles == 0
