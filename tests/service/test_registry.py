"""Dictionary generations: atomic promotion, leases, warm swaps."""

import pytest

from repro.core.backends import ScanRequest, execute
from repro.core.compiled import COUNTERS
from repro.service.registry import DictionaryRegistry, RegistryError


def _scan(generation, data: bytes) -> int:
    outcome = execute(generation.ctx, ScanRequest(data=data), "serial")
    return outcome.total_matches


class TestGenerations:
    def test_initial_generation_serves(self):
        with DictionaryRegistry(["alpha"]) as registry:
            assert registry.generation == 1
            with registry.lease() as gen:
                assert gen.gen_id == 1
                assert _scan(gen, b"an alpha here") == 1

    def test_load_promotes_and_changes_semantics(self):
        with DictionaryRegistry(["alpha"]) as registry:
            result = registry.load(["bravo"])
            assert result.generation == 2
            assert registry.generation == 2
            with registry.lease() as gen:
                assert _scan(gen, b"alpha bravo") == 1   # only bravo now

    def test_reload_result_describes_the_swap(self):
        with DictionaryRegistry(["alpha"]) as registry:
            result = registry.load(["bravo", "charlie"])
            assert result.patterns == 2
            assert result.slices >= 1
            assert result.states > 0
            assert result.seconds >= 0.0
            assert result.flows_carried == 0

    def test_in_flight_lease_survives_promotion(self):
        registry = DictionaryRegistry(["alpha"])
        try:
            lease = registry.lease()
            old = lease.__enter__()
            registry.load(["bravo"])
            # The scan that started on generation 1 finishes on
            # generation 1 — tables are still alive under the lease.
            assert old.gen_id == 1
            assert _scan(old, b"alpha") == 1
            lease.__exit__(None, None, None)
            with registry.lease() as gen:
                assert gen.gen_id == 2
        finally:
            registry.close()

    def test_retired_generation_releases_after_last_lease(self):
        registry = DictionaryRegistry(["alpha"])
        try:
            lease = registry.lease()
            old = lease.__enter__()
            registry.load(["bravo"])
            assert old.leases == 1
            lease.__exit__(None, None, None)
            assert old.leases == 0
            # Released generations refuse new leases.
            assert not old.acquire()
        finally:
            registry.close()

    def test_sessions_carry_across_load(self):
        with DictionaryRegistry(["abcd"]) as registry:
            with registry.lease() as gen:
                gen.sessions.scan_packet("f", b"abcd")
            result = registry.load(["abcd", "xy"])
            assert result.flows_carried == 1
            with registry.lease() as gen:
                assert gen.sessions.close_flow("f") == (4, 1)

    def test_describe_reports_active_state(self):
        with DictionaryRegistry(["alpha"]) as registry:
            registry.load(["bravo"])
            info = registry.describe()
            assert info["generation"] == 2
            assert info["patterns"] == 1
            assert info["swaps"] == 1
            assert len(info["fingerprint"]) == 12


class TestWarmSwap:
    def test_known_rule_set_swaps_with_zero_builds(self, tmp_path):
        with DictionaryRegistry(["alpha"], cache=tmp_path) as registry:
            cold = registry.load(["bravo"])
            assert not cold.warm
            builds_before = COUNTERS["automaton_builds"]
            warm = registry.load(["alpha"])      # compiled at startup
            assert warm.warm
            assert COUNTERS["automaton_builds"] == builds_before
            with registry.lease() as gen:
                assert _scan(gen, b"alpha bravo") == 1

    def test_without_cache_every_swap_is_cold(self):
        with DictionaryRegistry(["alpha"]) as registry:
            assert not registry.load(["alpha"]).warm


class TestLifecycle:
    def test_closed_registry_rejects_everything(self):
        registry = DictionaryRegistry(["alpha"])
        registry.close()
        with pytest.raises(RegistryError):
            registry.lease()
        with pytest.raises(RegistryError):
            registry.load(["bravo"])
        registry.close()                         # idempotent
