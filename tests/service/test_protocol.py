"""Wire framing: length-prefixed frames and dictionary payloads."""

import pytest

from repro.service.protocol import (MAX_FRAME_BYTES, VERB_SPECS, VERBS,
                                    Frame, ProtocolError, _PREFIX,
                                    decode_frame, decode_patterns,
                                    encode_frame, encode_patterns,
                                    split_body)


class TestFrameRoundtrip:
    def test_header_and_payload_survive(self):
        raw = encode_frame({"verb": "SCAN", "id": 7}, b"\x00\xffdata")
        frame, rest = decode_frame(raw)
        assert rest == b""
        assert frame.header == {"verb": "SCAN", "id": 7}
        assert frame.payload == b"\x00\xffdata"
        assert frame.verb == "SCAN"

    def test_empty_payload(self):
        frame, _ = decode_frame(encode_frame({"verb": "PING"}))
        assert frame.payload == b""

    def test_partial_buffer_decodes_nothing(self):
        raw = encode_frame({"verb": "PING", "id": 1}, b"xyz")
        for cut in range(len(raw)):
            frame, rest = decode_frame(raw[:cut])
            assert frame is None
            assert rest == raw[:cut]

    def test_two_frames_in_one_buffer(self):
        raw = encode_frame({"id": 1}) + encode_frame({"id": 2}, b"p")
        first, rest = decode_frame(raw)
        second, rest = decode_frame(rest)
        assert first.header["id"] == 1
        assert second.header["id"] == 2
        assert second.payload == b"p"
        assert rest == b""

    def test_ok_defaults_false(self):
        assert not Frame(header={}).ok
        assert Frame(header={"ok": True}).ok


class TestFrameErrors:
    def test_oversized_encode_rejected(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({}, b"\x00" * (MAX_FRAME_BYTES + 1))

    def test_oversized_declared_length_rejected(self):
        bogus = _PREFIX.pack(MAX_FRAME_BYTES + 1) + b"\x00" * 8
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_frame(bogus)

    def test_truncated_body(self):
        with pytest.raises(ProtocolError, match="truncated"):
            split_body(b"\x00\x00")

    def test_header_overruns_body(self):
        with pytest.raises(ProtocolError, match="truncated"):
            split_body(_PREFIX.pack(100) + b"{}")

    def test_unparseable_header(self):
        with pytest.raises(ProtocolError, match="unparseable"):
            split_body(_PREFIX.pack(3) + b"{{{")

    def test_non_object_header(self):
        with pytest.raises(ProtocolError, match="object"):
            split_body(_PREFIX.pack(2) + b"[]")


class TestPatternPayloads:
    def test_roundtrip_mixed_types(self):
        payload = encode_patterns(["virus", b"w\x01rm"])
        assert decode_patterns(payload) == [b"virus", b"w\x01rm"]

    def test_newline_rejected(self):
        with pytest.raises(ProtocolError, match="newline"):
            encode_patterns(["bad\npattern"])

    def test_empty_pattern_rejected(self):
        with pytest.raises(ProtocolError, match="empty"):
            encode_patterns(["ok", ""])

    def test_empty_dictionary_rejected(self):
        with pytest.raises(ProtocolError):
            encode_patterns([])
        with pytest.raises(ProtocolError):
            decode_patterns(b"")


class TestVocabulary:
    def test_specs_cover_all_verbs(self):
        assert VERBS == tuple(v for v, _ in VERB_SPECS)
        assert "SCAN" in VERBS and "RELOAD" in VERBS

    def test_every_verb_documented(self):
        for verb, description in VERB_SPECS:
            assert verb.isupper()
            assert description


class TestZeroCopySplit:
    def _body(self, header, payload):
        raw = encode_frame(header, payload)
        return raw[4:]                   # strip the frame_len prefix

    def test_zero_copy_payload_is_a_memoryview_slice(self):
        body = self._body({"verb": "SCAN", "id": 3}, b"\x00\xffdata")
        frame = split_body(body, zero_copy=True)
        assert isinstance(frame.payload, memoryview)
        assert bytes(frame.payload) == b"\x00\xffdata"
        assert frame.header == {"verb": "SCAN", "id": 3}

    def test_zero_copy_matches_copying_decode(self):
        for payload in (b"", b"p", b"x" * 4096):
            body = self._body({"verb": "FLOW", "id": 1,
                               "flow": "f"}, payload)
            copied = split_body(body)
            zero = split_body(body, zero_copy=True)
            assert isinstance(copied.payload, bytes)
            assert bytes(zero.payload) == copied.payload
            assert zero.header == copied.header

    def test_zero_copy_view_aliases_the_body(self):
        body = bytearray(self._body({"verb": "SCAN"}, b"aaaa"))
        frame = split_body(bytes(body), zero_copy=True)
        # The view is a window, not a copy: same length, same bytes.
        assert len(frame.payload) == 4
        assert frame.payload.obj is not None

    def test_zero_copy_pattern_payload_decodes(self):
        body = self._body({"verb": "RELOAD"},
                          encode_patterns(["virus", "worm"]))
        frame = split_body(body, zero_copy=True)
        assert decode_patterns(frame.payload) == [b"virus", b"worm"]

    def test_truncated_bodies_raise_either_way(self):
        body = self._body({"verb": "SCAN"}, b"abc")
        for zero_copy in (False, True):
            with pytest.raises(ProtocolError):
                split_body(body[:3], zero_copy=zero_copy)
            with pytest.raises(ProtocolError):
                split_body(b"\xff\xff\xff\xff", zero_copy=zero_copy)
