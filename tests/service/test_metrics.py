"""Observability: latency histograms and the daemon's counters."""

import json

import pytest

from repro.service.metrics import LatencyHistogram, ServiceMetrics


class TestLatencyHistogram:
    def test_empty_snapshot_is_zeros(self):
        snap = LatencyHistogram().snapshot()
        assert snap["count"] == 0
        assert snap["p50_ms"] == 0.0
        assert snap["max_ms"] == 0.0

    def test_single_sample_quantile_within_bucket_resolution(self):
        hist = LatencyHistogram()
        hist.record(0.004)
        # Geometric buckets with factor 2**0.25: ~19 % resolution.
        assert hist.quantile(0.5) == pytest.approx(0.004, rel=0.2)
        assert hist.quantile(0.99) == pytest.approx(0.004, rel=0.2)

    def test_quantiles_are_monotone(self):
        hist = LatencyHistogram()
        for i in range(1, 200):
            hist.record(i * 1e-4)
        assert hist.quantile(0.5) <= hist.quantile(0.95) \
            <= hist.quantile(0.99)
        assert hist.quantile(0.95) == pytest.approx(0.019, rel=0.25)

    def test_exact_aggregates(self):
        hist = LatencyHistogram()
        for s in (0.001, 0.002, 0.003):
            hist.record(s)
        assert hist.count == 3
        assert hist.mean_seconds == pytest.approx(0.002)
        assert hist.min_seconds == 0.001
        assert hist.max_seconds == 0.003

    def test_below_range_clamps_to_first_bucket(self):
        hist = LatencyHistogram()
        hist.record(1e-9)
        assert hist.quantile(0.5) == pytest.approx(1e-6)

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(0.0)
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(1.5)


class TestServiceMetrics:
    def test_requests_counted_per_verb(self):
        m = ServiceMetrics()
        for verb in ("SCAN", "SCAN", "PING"):
            m.record_request(verb)
        snap = m.snapshot()
        assert snap["requests"]["SCAN"] == 2
        assert snap["requests"]["PING"] == 1
        assert snap["requests"]["total"] == 3

    def test_scans_accumulate_per_backend(self):
        m = ServiceMetrics()
        m.record_scan("serial", 0.001, 100, 2)
        m.record_scan("serial", 0.002, 50, 0)
        m.record_scan("flow", 0.003, 10, 1)
        snap = m.snapshot()
        assert snap["bytes_scanned"] == 160
        assert snap["matches"] == 3
        assert snap["backends"]["serial"]["count"] == 2
        assert snap["backends"]["flow"]["count"] == 1

    def test_queue_high_water_sticks(self):
        m = ServiceMetrics()
        for depth in (1, 3, 2, 0):
            m.set_queue_depth(depth)
        snap = m.snapshot()["admission"]
        assert snap["queue_depth"] == 0
        assert snap["queue_high_water"] == 3

    def test_reloads_track_warm_swaps(self):
        m = ServiceMetrics()
        m.record_reload(0.1, warm=False)
        m.record_reload(0.01, warm=True)
        snap = m.snapshot()["reloads"]
        assert snap["count"] == 2
        assert snap["warm"] == 1
        assert snap["swap_latency"]["count"] == 2

    def test_admission_and_eviction_counters(self):
        m = ServiceMetrics()
        m.record_rejected()
        m.record_timeout()
        m.record_flow_evictions(0)   # no-op
        m.record_flow_evictions(3)
        snap = m.snapshot()
        assert snap["admission"]["rejected"] == 1
        assert snap["admission"]["timeouts"] == 1
        assert snap["flow_evictions"] == 3

    def test_snapshot_is_json_serializable(self):
        m = ServiceMetrics()
        m.record_request("SCAN")
        m.record_scan("serial", 0.001, 10, 1)
        m.record_reload(0.1, warm=True)
        json.dumps(m.snapshot())


class TestStateAbsorbMerge:
    """Cross-process aggregation: worker ``state()`` payloads absorbed
    into one pool-wide view (the STATS merge path of pool mode)."""

    def test_histogram_absorb_sums_buckets_and_keeps_extremes(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        for s in (0.001, 0.002, 0.004):
            a.record(s)
        for s in (0.008, 0.016):
            b.record(s)
        a.absorb(b.state())
        assert a.count == 5
        assert a.min_seconds == 0.001
        assert a.max_seconds == 0.016
        assert a.mean_seconds == pytest.approx(0.0062)
        # Quantiles come from the merged buckets, not one side's.
        assert a.quantile(0.99) == pytest.approx(0.016, rel=0.2)

    def test_histogram_state_roundtrips_through_json(self):
        hist = LatencyHistogram()
        hist.record(0.003)
        state = json.loads(json.dumps(hist.state()))
        other = LatencyHistogram()
        other.absorb(state)
        assert other.count == 1
        assert other.quantile(0.5) == pytest.approx(0.003, rel=0.2)

    def test_merged_snapshot_sums_counters_across_instances(self):
        gateway, w1, w2 = (ServiceMetrics() for _ in range(3))
        for _ in range(3):
            gateway.record_request("SCAN")
        gateway.record_request("STATS")
        gateway.record_rejected()
        w1.record_scan("fused", 0.002, 100, 1)
        w1.record_scan("fused", 0.004, 50, 0)
        w2.record_scan("fused", 0.008, 25, 2)
        w2.record_flow_evictions(4)
        merged = ServiceMetrics.merged_snapshot(
            [gateway.state(), w1.state(), w2.state()])
        assert merged["requests"]["SCAN"] == 3
        assert merged["requests"]["STATS"] == 1
        assert merged["requests"]["total"] == 4
        assert merged["bytes_scanned"] == 175
        assert merged["matches"] == 3
        assert merged["admission"]["rejected"] == 1
        assert merged["flow_evictions"] == 4
        assert merged["backends"]["fused"]["count"] == 3

    def test_merged_snapshot_merges_tenant_slots(self):
        w1, w2 = ServiceMetrics(), ServiceMetrics()
        w1.record_tenant_request("acme", 100, 1)
        w1.record_verdict("acme", "drop", 0.001)
        w2.record_tenant_request("acme", 50, 0)
        w2.record_verdict("acme", "forward", 0.002)
        w2.record_tenant_request("beta", 10, 0)
        merged = ServiceMetrics.merged_snapshot(
            [w1.state(), w2.state()])
        acme = merged["tenants"]["acme"]
        assert acme["requests"] == 2
        assert acme["bytes_scanned"] == 150
        assert acme["actions"] == {"drop": 1, "forward": 1}
        assert acme["verdict_latency"]["count"] == 2
        assert merged["tenants"]["beta"]["requests"] == 1

    def test_merge_identity_single_state_equals_snapshot(self):
        m = ServiceMetrics()
        m.record_request("SCAN")
        m.record_scan("fused", 0.002, 64, 1)
        m.record_reload(0.1, warm=True)
        merged = ServiceMetrics.merged_snapshot([m.state()])
        assert merged == m.snapshot()

    def test_queue_depth_sums_but_high_water_maxes(self):
        a, b = ServiceMetrics(), ServiceMetrics()
        a.set_queue_depth(3)
        b.set_queue_depth(5)
        a.absorb(b.state())
        snap = a.snapshot()
        assert snap["admission"]["queue_depth"] == 8
        assert snap["admission"]["queue_high_water"] == 5
