"""Tenant and policy verbs end to end: TENANT lifecycle, tenant-scoped
SCAN/FLOW/CLOSE_FLOW/RELOAD, POLICY hot-swap, and per-tenant STATS
isolation through the daemon."""

from contextlib import contextmanager

import pytest

from repro.service import (ScanService, ServiceClient, ServiceConfig,
                           ServiceError, ServiceThread)

DROP_VIRUS = [{"name": "viral", "action": "drop",
               "patterns": ["virus"]}]


@contextmanager
def running_service(patterns=("base",), tenants=None, **config_kwargs):
    config = ServiceConfig(port=0, **config_kwargs)
    service = ScanService(list(patterns), config=config,
                          tenants=tenants)
    with ServiceThread(service) as handle:
        yield handle


@contextmanager
def client_for(handle):
    with ServiceClient(handle.host, handle.port) as client:
        yield client


class TestTenantVerb:
    def test_create_list_info_delete(self):
        with running_service() as handle, client_for(handle) as client:
            info = client.tenant_create("acme", ["virus", "worm"],
                                        rules=DROP_VIRUS)
            assert info["tenant"] == "acme"
            assert info["patterns"] == 2
            assert info["rules"] == 1
            assert client.tenants() == ["acme"]

            detail = client.tenant_info("acme")
            assert detail["policy"]["rules"] == 1
            assert detail["registry"]["patterns"] == 2

            client.tenant_delete("acme")
            assert client.tenants() == []

    def test_startup_tenants_from_config(self):
        tenants = {"acme": {"patterns": ["virus"],
                            "rules": DROP_VIRUS},
                   "beta": {"patterns": ["beta-sig"]}}
        with running_service(tenants=tenants) as handle, \
                client_for(handle) as client:
            assert client.tenants() == ["acme", "beta"]
            assert client.scan_packet("f", "a virus",
                                      tenant="acme").action == "drop"

    def test_duplicate_and_unknown_tenants_error(self):
        with running_service() as handle, client_for(handle) as client:
            client.tenant_create("acme", ["virus"])
            with pytest.raises(ServiceError, match="already exists"):
                client.tenant_create("acme", ["virus"])
            with pytest.raises(ServiceError, match="unknown tenant"):
                client.tenant_delete("ghost")
            with pytest.raises(ServiceError, match="unknown tenant"):
                client.scan(b"data", tenant="ghost")

    def test_bad_rules_rejected_at_create(self):
        with running_service() as handle, client_for(handle) as client:
            with pytest.raises(ServiceError, match="not in the dict"):
                client.tenant_create("acme", ["virus"], rules=[
                    {"name": "r", "action": "drop",
                     "patterns": ["missing-sig"]}])
            assert client.tenants() == []


class TestTenantScoping:
    def test_scan_routes_through_tenant_dictionary(self):
        with running_service(["base"]) as handle, \
                client_for(handle) as client:
            client.tenant_create("acme", ["tenant-sig"])
            assert client.scan(b"tenant-sig here").matches == 0
            r = client.scan(b"tenant-sig here", tenant="acme")
            assert r.matches == 1
            assert client.scan(b"a base hit").matches == 1

    def test_flow_verdicts_and_close(self):
        with running_service() as handle, client_for(handle) as client:
            client.tenant_create("acme", ["virus", "worm"],
                                 rules=DROP_VIRUS)
            f = client.scan_packet("f1", "clean", tenant="acme")
            assert (f.action, f.rule) == ("forward", None)
            f = client.scan_packet("f1", "a virus", tenant="acme")
            assert (f.action, f.rule) == ("drop", "viral")
            assert f.triggered == ["viral"]
            # Latched across subsequent clean packets.
            f = client.scan_packet("f1", "clean", tenant="acme")
            assert f.action == "drop"

            h = client.request({"verb": "CLOSE_FLOW", "flow": "f1",
                                "tenant": "acme"}).header
            assert h["action"] == "drop"
            assert h["matches"] == 1

    def test_same_flow_id_isolated_between_tenants(self):
        with running_service() as handle, client_for(handle) as client:
            client.tenant_create("acme", ["virus"], rules=DROP_VIRUS)
            client.tenant_create("beta", ["virus"])
            assert client.scan_packet("f", "virus",
                                      tenant="acme").action == "drop"
            assert client.scan_packet("f", "virus",
                                      tenant="beta").action == "forward"

    def test_tenant_reload_is_scoped(self):
        with running_service(["base"]) as handle, \
                client_for(handle) as client:
            client.tenant_create("acme", ["old-sig"])
            swap = client.reload(["new-sig"], tenant="acme")
            assert swap.generation == 2
            assert client.scan(b"new-sig", tenant="acme").matches == 1
            # The default dictionary never moved.
            assert client.ping() == 1
            assert client.scan(b"a base hit").matches == 1


class TestPolicyVerb:
    def test_set_and_get_round_trip(self):
        with running_service() as handle, client_for(handle) as client:
            client.tenant_create("acme", ["virus", "worm"])
            gen = client.set_policy("acme", DROP_VIRUS)
            assert gen == 2
            pol = client.policy("acme")
            assert pol["policy_generation"] == 2
            assert pol["mode"] == "first-match"
            assert [r["name"] for r in pol["rules"]] == ["viral"]
            assert client.scan_packet("f", "virus",
                                      tenant="acme").action == "drop"

    def test_set_policy_validates_patterns(self):
        with running_service() as handle, client_for(handle) as client:
            client.tenant_create("acme", ["virus"])
            with pytest.raises(ServiceError, match="not in the dict"):
                client.set_policy("acme", [
                    {"name": "r", "action": "drop",
                     "patterns": ["ghost-sig"]}])

    def test_policy_requires_a_tenant(self):
        with running_service() as handle, client_for(handle) as client:
            with pytest.raises(ServiceError):
                client.request({"verb": "POLICY", "op": "get"})


class TestStatsIsolation:
    def test_per_tenant_metrics_never_cross(self):
        with running_service() as handle, client_for(handle) as client:
            client.tenant_create("acme", ["virus"], rules=DROP_VIRUS)
            client.tenant_create("beta", ["virus"])
            client.scan_packet("f", "virus", tenant="acme")
            client.scan_packet("f", "virus", tenant="beta")
            client.scan(b"a virus", tenant="acme")

            stats = client.stats()
            tm = stats["metrics"]["tenants"]
            assert tm["acme"]["requests"] == 2
            assert tm["beta"]["requests"] == 1
            assert tm["acme"]["actions"] == {"drop": 1}
            assert tm["beta"]["actions"] == {"forward": 1}
            assert tm["acme"]["verdict_latency"]["count"] == 1
            # Tenant-scoped traffic never pollutes the default
            # dictionary's flow table.
            assert stats["registry"]["sessions"]["flows"] == 0
            assert stats["tenants"]["acme"]["verdicts"]["flows"] == 1

    def test_deleted_tenant_metrics_forgotten(self):
        with running_service() as handle, client_for(handle) as client:
            client.tenant_create("acme", ["virus"])
            client.scan(b"x", tenant="acme")
            client.tenant_delete("acme")
            assert "acme" not in client.stats()["metrics"]["tenants"]

    def test_session_stats_surface_through_stats(self):
        with running_service(["base"]) as handle, \
                client_for(handle) as client:
            client.scan_packet("f1", "data")
            sessions = client.stats()["registry"]["sessions"]
            assert sessions["flows"] == 1
            assert sessions["evictions"] == 0
            assert sessions["max_flows"] > 0
