"""Gateway + worker-pool mode: consistent-hash placement, parity with
the single-process daemon, crash/restart accounting, merged STATS, and
the many-flow LRU stress across four workers."""

import json
import os
import signal
import socket
import struct
import threading
import time
from contextlib import contextmanager

import pytest

from repro.service import (ConsistentHashRing, ScanService,
                           ServiceClient, ServiceConfig, ServiceError,
                           ServiceThread, run_load)
from repro.service.pool import PoolError
from repro.service.protocol import encode_frame

PATTERNS = ["virus", "worm", "trojan"]


@contextmanager
def pooled_service(patterns=PATTERNS, workers=2, **config_kwargs):
    config = ServiceConfig(port=0, pool_workers=workers,
                           **config_kwargs)
    with ServiceThread(ScanService(patterns, config=config)) as handle:
        yield handle


def pool_stats(handle):
    with ServiceClient(handle.host, handle.port) as client:
        return client.stats()


class TestConsistentHashRing:
    def test_placement_deterministic_across_instances(self):
        a, b = ConsistentHashRing(4), ConsistentHashRing(4)
        alive = [True] * 4
        for i in range(200):
            key = f"flow-{i}"
            assert a.place("", key, alive) == b.place("", key, alive)
            assert a.place("acme", key, alive) == \
                b.place("acme", key, alive)

    def test_tenant_namespaces_flows(self):
        ring = ConsistentHashRing(4)
        alive = [True] * 4
        owners = {ring.place(t, "same-flow-id", alive)
                  for t in ("", "acme", "beta", "gamma", "delta")}
        # Same flow id under different tenants is a different key; with
        # five tenants over four workers at least two owners differ.
        assert len(owners) > 1

    def test_balance_within_vnode_tolerance(self):
        ring = ConsistentHashRing(4)
        alive = [True] * 4
        counts = [0] * 4
        for i in range(8000):
            counts[ring.place("", f"flow-{i}", alive)] += 1
        for c in counts:
            assert 0.12 <= c / 8000 <= 0.40, counts

    def test_dead_worker_moves_only_its_own_keys(self):
        ring = ConsistentHashRing(4)
        all_alive = [True] * 4
        sans_two = [True, True, False, True]
        for i in range(500):
            owner = ring.place("", f"flow-{i}", all_alive)
            fallback = ring.place("", f"flow-{i}", sans_two)
            if owner != 2:
                # Keys on live workers never move when another dies.
                assert fallback == owner
            else:
                assert fallback != 2

    def test_restarted_worker_reclaims_its_span(self):
        ring = ConsistentHashRing(4)
        all_alive = [True] * 4
        owners = {f"flow-{i}": ring.place("", f"flow-{i}", all_alive)
                  for i in range(200)}
        # The ring is keyed by index, so coming back == same spans.
        for key, owner in owners.items():
            assert ring.place("", key, all_alive) == owner

    def test_no_alive_workers_raises(self):
        with pytest.raises(PoolError):
            ConsistentHashRing(2).place("", "f", [False, False])

    def test_size_validation(self):
        with pytest.raises(PoolError):
            ConsistentHashRing(0)


class TestPoolParity:
    def test_scan_and_flow_match_single_process_daemon(self):
        payloads = [b"a Virus and a WoRm walked into a bar",
                    b"clean traffic " * 40,
                    b"tro" + b"jan" * 3]
        with pooled_service() as pooled, \
                ServiceThread(ScanService(
                    PATTERNS, config=ServiceConfig(port=0))) as plain:
            with ServiceClient(pooled.host, pooled.port) as pc, \
                    ServiceClient(plain.host, plain.port) as sc:
                for payload in payloads:
                    a, b = pc.scan(payload), sc.scan(payload)
                    assert a.matches == b.matches
                    assert a.bytes_scanned == b.bytes_scanned
                for j, payload in enumerate(payloads):
                    fid = f"flow-{j % 2}"
                    a = pc.scan_packet(fid, payload)
                    b = sc.scan_packet(fid, payload)
                    assert a.matches == b.matches
                    assert a.flow_total == b.flow_total
                assert pc.close_flow("flow-0") == sc.close_flow("flow-0")

    def test_split_pattern_across_packets_stays_sessioned(self):
        with pooled_service() as handle:
            with ServiceClient(handle.host, handle.port) as client:
                assert client.scan_packet("f1", "a vi").matches == 0
                follow = client.scan_packet("f1", "rus!")
                assert follow.matches == 1
                assert client.close_flow("f1") == (8, 1)

    def test_workers_never_build_automatons(self):
        with pooled_service(workers=2) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                client.scan(b"virus traffic")
                assert client.reload(["alpha", "omega"]).generation == 2
                assert client.scan(b"alpha!").matches == 1
                stats = client.stats()
        pool = stats["pool"]
        assert pool["size"] == 2
        for worker in pool["workers"]:
            # Compile once in the gateway, attach everywhere: not even
            # the reload built an automaton inside a worker.
            assert worker["automaton_builds"] == 0, pool
            assert worker["generation"] == 2, pool

    def test_tenant_lifecycle_fans_out(self):
        with pooled_service() as handle:
            with ServiceClient(handle.host, handle.port) as client:
                client.tenant_create("acme", ["alpha"], rules=[
                    {"name": "drop-alpha", "action": "drop",
                     "patterns": ["alpha"]}])
                hit = client.scan_packet("f1", b"alpha!",
                                         tenant="acme")
                assert hit.matches == 1
                assert hit.action == "drop"
                clean = client.scan(b"no hits here", tenant="acme")
                assert clean.matches == 0
                client.tenant_delete("acme")
                with pytest.raises(ServiceError):
                    client.scan(b"x", tenant="acme")

    def test_policy_swap_fans_out(self):
        with pooled_service() as handle:
            with ServiceClient(handle.host, handle.port) as client:
                client.tenant_create("acme", ["alpha"])
                before = client.scan_packet("f1", b"alpha!",
                                            tenant="acme")
                assert before.action == "forward"
                client.set_policy("acme", [
                    {"name": "drop-alpha", "action": "drop",
                     "patterns": ["alpha"]}])
                after = client.scan_packet("f2", b"alpha!",
                                           tenant="acme")
                assert after.action == "drop"


class TestReloadUnderLoad:
    def test_zero_failures_across_hot_swaps(self):
        with pooled_service(workers=2, max_pending=256) as handle:
            with ServiceClient(handle.host, handle.port) as admin:
                stop = threading.Event()

                def _reloader():
                    sets = [["alpha", "omega"], PATTERNS]
                    for i in range(200):
                        admin.reload(sets[i % 2])
                        if stop.wait(0.01):
                            break

                t = threading.Thread(target=_reloader, daemon=True)
                t.start()
                result = run_load(
                    handle.host, handle.port, connections=2,
                    requests_per_connection=80, mode="flow",
                    flows_per_connection=4,
                    patterns=[p.encode() for p in PATTERNS],
                    match_fraction=0.3, seed=11)
                stop.set()
                t.join(timeout=60)
                stats = admin.stats()
        assert result.errors == 0, result.error_codes
        assert len(result.generations) >= 2, \
            "no reload landed during the run"
        pool = stats["pool"]
        assert pool["restarts"] == 0
        gens = {w["generation"] for w in pool["workers"]}
        assert len(gens) == 1, f"workers diverged: {gens}"
        for worker in pool["workers"]:
            assert worker["automaton_builds"] == 0, pool


class TestCrashRestart:
    def _flow_owned_by(self, index, workers=2):
        ring = ConsistentHashRing(workers)
        alive = [True] * workers
        for i in range(10000):
            fid = f"victim-{i}"
            if ring.place("", fid, alive) == index:
                return fid
        raise AssertionError("no flow hashed onto the worker")

    def test_killed_worker_restarts_and_accounts_requests(self):
        with pooled_service(workers=2, max_pending=64) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                fid = self._flow_owned_by(0)
                first = client.scan_packet(fid, b"a vi")
                assert first.matches == 0

                victim = pool_stats(handle)["pool"]["workers"][0]
                os.kill(victim["pid"], signal.SIGKILL)

                # Drive requests through the crash window: every one
                # either succeeds or comes back as an explicit error —
                # never a hang, never a silent drop.
                attempts, failures = 0, 0
                deadline = time.monotonic() + 20.0
                recovered = False
                while time.monotonic() < deadline:
                    attempts += 1
                    try:
                        reply = client.scan_packet(fid, b"rus!")
                    except ServiceError as exc:
                        failures += 1
                        assert exc.code in ("worker-crash", "busy"), exc
                        time.sleep(0.05)
                        continue
                    recovered = True
                    break
                assert recovered, "worker never came back"

                # The crashed worker lost its sessions: the flow was
                # re-created (on the replacement or a ring neighbour),
                # so the split pattern does not complete across the
                # crash.
                assert reply.flow_total == 0

                # The replacement may still be handshaking when the
                # rerouted request already succeeded — wait for the
                # fleet to report fully alive.
                while time.monotonic() < deadline:
                    stats = client.stats()
                    if all(w["alive"]
                           for w in stats["pool"]["workers"]):
                        break
                    time.sleep(0.05)
        pool = stats["pool"]
        assert pool["restarts"] >= 1
        assert all(w["alive"] for w in pool["workers"]), pool
        # Dropped requests are accounted, not silently discarded.
        assert stats["metrics"]["admission"]["rejected"] >= failures
        assert attempts == failures + 1

    def test_surviving_worker_keeps_serving_during_crash(self):
        with pooled_service(workers=2, max_pending=64) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                safe = self._flow_owned_by(1)
                client.scan_packet(safe, b"a vi")
                victim = pool_stats(handle)["pool"]["workers"][0]
                os.kill(victim["pid"], signal.SIGKILL)
                # The other worker's span is untouched: its session
                # survives and completes the split match immediately.
                follow = client.scan_packet(safe, b"rus!")
                assert follow.matches == 1
                assert follow.flow_total == 1

    def test_restarted_worker_joins_at_active_generation(self):
        with pooled_service(workers=2) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                assert client.reload(["alpha", "omega"]).generation == 2
                victim = pool_stats(handle)["pool"]["workers"][0]
                os.kill(victim["pid"], signal.SIGKILL)
                deadline = time.monotonic() + 20.0
                while time.monotonic() < deadline:
                    pool = client.stats()["pool"]
                    if all(w["alive"] for w in pool["workers"]):
                        break
                    time.sleep(0.05)
                assert all(w["alive"] for w in pool["workers"]), pool
                # The replacement initialized from the pool's current
                # bundle: generation 2, still zero builds.
                for worker in pool["workers"]:
                    assert worker["generation"] == 2, pool
                    assert worker["automaton_builds"] == 0, pool
                assert client.scan(b"omega!").matches == 1


class TestMergedStats:
    def test_counters_merge_across_gateway_and_workers(self):
        scan_payloads = [b"virus one", b"clean " * 10, b"worm worm"]
        flow_payloads = [b"trojan ride", b"nothing to see"]
        with pooled_service(workers=2) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                for p in scan_payloads:
                    client.scan(p)
                for j, p in enumerate(flow_payloads):
                    client.scan_packet(f"flow-{j}", p)
                stats = client.stats()
        m = stats["metrics"]
        assert m["requests"]["SCAN"] == len(scan_payloads)
        assert m["requests"]["FLOW"] == len(flow_payloads)
        assert m["bytes_scanned"] == sum(
            len(p) for p in scan_payloads + flow_payloads)
        assert m["errors"] == 0
        # The per-backend latency view merges worker histograms: every
        # scan and flow packet shows up exactly once in the union.
        assert sum(h["count"] for h in m["backends"].values()) == \
            len(scan_payloads) + len(flow_payloads)
        pool = stats["pool"]
        assert pool["flows"] == len(flow_payloads)
        assert pool["flows"] == sum(w["flows"]
                                    for w in pool["workers"])

    def test_tenant_counters_survive_the_merge(self):
        with pooled_service() as handle:
            with ServiceClient(handle.host, handle.port) as client:
                client.tenant_create("acme", ["alpha"])
                client.scan(b"alpha!", tenant="acme")
                client.scan_packet("f1", b"alpha!", tenant="acme")
                stats = client.stats()
        tenants = stats["metrics"]["tenants"]
        assert tenants["acme"]["requests"] == 2


class TestManyFlowsStress:
    #: Total flow sessions pushed through the pool.  The full 100k-flow
    #: stress needs a core per worker to stay tier-1-fast, so hosts
    #: with fewer cores run a scaled-down sweep of the same shape;
    #: REPRO_POOL_STRESS_FLOWS pins either way (CI pins 100000).
    FLOWS = int(os.environ.get(
        "REPRO_POOL_STRESS_FLOWS",
        "100000" if (os.cpu_count() or 1) >= 4 else "20000"))

    def test_lru_sessions_across_four_workers(self):
        """≥100k distinct flows across 4 workers with a bounded LRU
        table: raw-socket pipelining with a bounded window, asserting
        zero error responses and a consistent fleet-wide flow count."""
        workers, conns, window = 4, 4, 256
        per_conn = self.FLOWS // conns
        max_flows = 4096
        payload = b"cleanpkt"      # no matches: the stress is the
        # session table (create/evict churn), not the match path
        with pooled_service(workers=workers, max_pending=2048,
                            max_flows=max_flows,
                            session_policy="lru") as handle:
            results = {}

            def drive(ci):
                s = socket.create_connection((handle.host, handle.port))
                s.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                rf = s.makefile("rb")
                sent = recvd = bad = 0
                try:
                    while recvd < per_conn:
                        while sent < per_conn and sent - recvd < window:
                            s.sendall(encode_frame(
                                {"verb": "FLOW", "id": sent,
                                 "flow": f"c{ci}-f{sent}"}, payload))
                            sent += 1
                        size = struct.unpack(">I", rf.read(4))[0]
                        body = rf.read(size)
                        if b'"ok":true' not in body:
                            bad += 1
                        recvd += 1
                finally:
                    s.close()
                results[ci] = (recvd, bad)

            threads = [threading.Thread(target=drive, args=(i,))
                       for i in range(conns)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = pool_stats(handle)

        assert sum(r for r, _ in results.values()) == per_conn * conns
        assert sum(b for _, b in results.values()) == 0, results
        m = stats["metrics"]
        assert m["requests"]["FLOW"] == per_conn * conns
        assert m["errors"] == 0
        pool = stats["pool"]
        assert pool["restarts"] == 0
        # The LRU bound holds per worker and fleet-wide...
        assert pool["flows"] <= workers * max_flows
        # ...and the hash spread every connection's flows across the
        # whole fleet.
        for worker in pool["workers"]:
            assert worker["flows"] > 0, pool
            assert worker["flows"] <= max_flows, pool
            assert worker["automaton_builds"] == 0, pool


class TestConfig:
    def test_negative_pool_workers_rejected(self):
        with pytest.raises(ValueError):
            ServiceConfig(pool_workers=-1).validate()

    def test_stats_reports_pool_config(self):
        with pooled_service(workers=2) as handle:
            stats = pool_stats(handle)
        assert stats["config"]["pool_workers"] == 2
        assert stats["pool"]["per_worker_cap"] >= 1
        payload = json.dumps(stats)      # STATS stays JSON-clean
        assert "pool" in payload
