"""End-to-end daemon tests: protocol verbs, admission control,
graceful drain, and hot reloads under concurrent scan load."""

import threading
import time
from contextlib import contextmanager

import pytest

from repro.core import backends as backends_mod
from repro.core.compiled import compile_dictionary
from repro.service import (ScanService, ServiceClient, ServiceConfig,
                           ServiceError, ServiceThread, run_load)


@contextmanager
def running_service(patterns, **config_kwargs):
    config = ServiceConfig(port=0, **config_kwargs)
    with ServiceThread(ScanService(patterns, config=config)) as handle:
        yield handle


@contextmanager
def sleepy_backend(delay: float):
    """Register a block backend that sleeps — makes admission-control
    races deterministic."""

    class SleepyBackend(backends_mod.ScanBackend):
        name = "sleepy"
        kinds = ("block",)
        description = "test-only backend that sleeps"

        def scan(self, ctx, request):
            time.sleep(delay)
            return backends_mod.ScanOutcome(
                total_matches=0, bytes_scanned=len(request.data),
                backend=self.name)

    backends_mod.register_backend(SleepyBackend)
    try:
        yield
    finally:
        backends_mod._REGISTRY.pop("sleepy", None)


class TestVerbs:
    def test_scan_flow_reload_stats_roundtrip(self):
        with running_service(["virus", "worm"]) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                assert client.ping() == 1

                scan = client.scan("a Virus and a WoRm")
                assert scan.matches == 2
                assert scan.generation == 1
                assert scan.bytes_scanned == 18

                assert client.scan_packet("f1", "a vi").matches == 0
                follow = client.scan_packet("f1", "rus!")
                assert follow.matches == 1
                assert follow.flow_total == 1
                assert client.close_flow("f1") == (8, 1)

                reply = client.reload(["trojan"])
                assert reply.generation == 2
                assert client.scan("virus trojan").matches == 1

                stats = client.stats()
                assert stats["generation"] == 2
                assert stats["metrics"]["requests"]["SCAN"] == 2
                assert stats["metrics"]["reloads"]["count"] == 1
                assert stats["registry"]["patterns"] == 1
                assert "reload_strategy" in stats

    def test_scan_with_events_and_truncation(self):
        with running_service(["ab"], max_events=2) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                result = client.scan("ab ab ab", events=True)
                assert result.matches == 3
                assert len(result.events) == 2
                assert result.events_truncated == 1

    def test_per_request_backend_override(self):
        with running_service(["virus"]) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                result = client.scan("virus", backend="serial")
                assert result.backend == "serial"
                assert result.matches == 1


class TestBatching:
    """Cross-request micro-batching: concurrent count-only SCANs ride
    one fused pass, with counts identical to unbatched scans."""

    PATTERNS = ["virus", "worm", "trojan", "backdoor"]

    def _payloads(self):
        return [(b"x virus y worm " * (i + 1)) + b"backdoor"
                for i in range(10)] + [b""]

    def test_batched_counts_match_unbatched(self):
        payloads = self._payloads()
        with running_service(self.PATTERNS) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                expected = [client.scan(p).matches for p in payloads]
        with running_service(self.PATTERNS, batch_max=4,
                             batch_wait=0.05) as handle:
            results = [None] * len(payloads)

            def worker(i):
                with ServiceClient(handle.host, handle.port) as c:
                    results[i] = c.scan(payloads[i])

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(len(payloads))]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            with ServiceClient(handle.host, handle.port) as client:
                stats = client.stats()
        for i, result in enumerate(results):
            assert result.backend == "batch"
            assert result.matches == expected[i], i
        batches = stats["metrics"]["batches"]
        assert batches["requests"] == len(payloads)
        assert batches["count"] < len(payloads)      # coalescing happened
        assert batches["max_occupancy"] > 1
        assert stats["config"]["batch_max"] == 4

    def test_events_and_explicit_backend_bypass_the_batcher(self):
        with running_service(["ab"], batch_max=4,
                             batch_wait=0.01) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                with_events = client.scan("ab ab", events=True)
                assert with_events.backend != "batch"
                assert with_events.matches == 2
                assert len(with_events.events) == 2
                serial = client.scan("ab", backend="serial")
                assert serial.backend == "serial"
                stats = client.stats()
        # the lone batchable scan still went through the batcher
        assert stats["metrics"]["batches"]["requests"] == 0

    def test_single_request_flushes_on_wait_window(self):
        with running_service(["virus"], batch_max=8,
                             batch_wait=0.005) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                t0 = time.perf_counter()
                result = client.scan("one virus alone")
                elapsed = time.perf_counter() - t0
                stats = client.stats()
        assert result.backend == "batch"
        assert result.matches == 1
        assert elapsed < 2.0
        assert stats["metrics"]["batches"] == {
            "count": 1, "requests": 1, "mean_occupancy": 1.0,
            "max_occupancy": 1}

    def test_batching_disabled_by_default(self):
        with running_service(["virus"]) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                assert client.scan("virus").backend != "batch"
                stats = client.stats()
        assert stats["metrics"]["batches"]["count"] == 0
        assert stats["config"]["batch_max"] == 1

    def test_bad_batch_config_rejected(self):
        with pytest.raises(ValueError, match="batch_max"):
            ServiceConfig(batch_max=0).validate()
        with pytest.raises(ValueError, match="batch_wait"):
            ServiceConfig(batch_max=2, batch_wait=-1.0).validate()


class TestErrors:
    def test_unknown_verb(self):
        with running_service(["virus"]) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                with pytest.raises(ServiceError) as err:
                    client.request({"verb": "NOPE"})
                assert err.value.code == "bad-verb"

    def test_flow_without_id(self):
        with running_service(["virus"]) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                with pytest.raises(ServiceError) as err:
                    client.request({"verb": "FLOW"}, b"data")
                assert err.value.code == "bad-request"

    def test_unknown_backend(self):
        with running_service(["virus"]) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                with pytest.raises(ServiceError) as err:
                    client.scan("x", backend="warp-drive")
                assert err.value.code == "bad-request"

    def test_unknown_flow_close(self):
        with running_service(["virus"]) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                with pytest.raises(ServiceError) as err:
                    client.close_flow("ghost")
                assert err.value.code == "flow-error"

    def test_errors_do_not_kill_the_connection(self):
        with running_service(["virus"]) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                with pytest.raises(ServiceError):
                    client.request({"verb": "NOPE"})
                assert client.scan("virus").matches == 1


class TestAdmissionControl:
    def _occupy_then(self, handle, second_request):
        """Fill the single scan slot with a sleepy scan, then run
        ``second_request`` while it holds the slot."""
        errors = []

        def _long_scan():
            try:
                with ServiceClient(handle.host, handle.port) as c:
                    c.scan(b"x" * 10, backend="sleepy")
            except ServiceError as exc:     # pragma: no cover
                errors.append(exc)

        t = threading.Thread(target=_long_scan)
        t.start()
        time.sleep(0.15)                    # let it take the slot
        try:
            return second_request()
        finally:
            t.join()
            assert not errors

    def test_reject_policy_sheds_with_busy(self):
        with sleepy_backend(0.6):
            with running_service(["virus"], max_pending=1,
                                 admission="reject") as handle:
                def _second():
                    with ServiceClient(handle.host, handle.port) as c:
                        with pytest.raises(ServiceError) as err:
                            c.scan("virus")
                        return err.value.code

                assert self._occupy_then(handle, _second) == "busy"
                with ServiceClient(handle.host, handle.port) as c:
                    stats = c.stats()
                assert stats["metrics"]["admission"]["rejected"] == 1

    def test_wait_policy_times_out(self):
        with sleepy_backend(0.8):
            with running_service(["virus"], max_pending=1,
                                 admission="wait",
                                 request_timeout=0.1) as handle:
                def _second():
                    with ServiceClient(handle.host, handle.port) as c:
                        with pytest.raises(ServiceError) as err:
                            c.scan("virus")
                        return err.value.code

                assert self._occupy_then(handle, _second) == "timeout"
                with ServiceClient(handle.host, handle.port) as c:
                    stats = c.stats()
                assert stats["metrics"]["admission"]["timeouts"] == 1

    def test_wait_policy_admits_when_slot_frees(self):
        with sleepy_backend(0.3):
            with running_service(["virus"], max_pending=1,
                                 admission="wait",
                                 request_timeout=5.0) as handle:
                def _second():
                    with ServiceClient(handle.host, handle.port) as c:
                        return c.scan("virus").matches

                assert self._occupy_then(handle, _second) == 1


class TestScannerStats:
    """Batched scans over a partitioned dictionary surface per-generation
    hot/cold scanner statistics through STATS and the metrics table."""

    PATTERNS = ["abab", "ABABAB", "BABA", "@[", "`{", "attack", "tac",
                "backdoor", "virus", "worm", "trojan", "exploit",
                "malware", "rootkit", "phish", "botnet"]

    def test_stats_verb_reports_per_generation_scanner_stats(self):
        # Partition the dictionary so the batch path takes the union
        # scan (single-slice dictionaries stay on the stacked table).
        compiled = compile_dictionary(self.PATTERNS, max_states=72)
        assert compiled.num_slices > 1
        config = ServiceConfig(port=0, batch_max=4, batch_wait=0.05)
        service = ScanService(self.PATTERNS, config=config, max_states=72)
        payloads = [b"x virus tac abab " * (i + 1) for i in range(8)]
        with ServiceThread(service) as handle:
            results = [None] * len(payloads)

            def worker(i):
                with ServiceClient(handle.host, handle.port) as c:
                    results[i] = c.scan(payloads[i])

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(len(payloads))]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            with ServiceClient(handle.host, handle.port) as client:
                stats = client.stats()
        assert all(r is not None for r in results)
        scanners = stats["metrics"]["scanners"]
        assert scanners                      # at least one generation
        agg = next(iter(scanners.values()))
        assert agg["scanner"] in ("hotcold2", "hotcold")
        assert agg["batches"] >= 1
        assert agg["steps"] > 0
        assert 0.0 <= agg["hot_hit_rate"] <= 1.0
        assert agg["cold_steps"] >= 0 and agg["escapes"] >= 0

        from repro.analysis.report import metrics_table
        rendered = metrics_table(stats["metrics"])
        assert "hot/cold scanner stats by generation" in rendered
        assert agg["scanner"] in rendered


class TestShutdown:
    def test_shutdown_verb_drains_and_stops(self):
        with running_service(["virus"]) as handle:
            client = ServiceClient(handle.host, handle.port)
            client.shutdown()
            handle.service  # daemon is draining; wait via stop()
        with pytest.raises((ServiceError, OSError)):
            ServiceClient(handle.host, handle.port).ping()

    def test_stop_is_idempotent(self):
        handle = ServiceThread(ScanService(["virus"])).start()
        handle.stop()
        handle.stop()


class TestConcurrentReloads:
    PAYLOAD = "alpha q bravo q alpha q charlie"

    def test_scans_during_reloads_see_consistent_generations(self):
        """Satellite requirement: fire scans from several threads while
        the dictionary hot-swaps N times.  Every response must carry a
        valid generation id, report the counts of *that* generation's
        dictionary, and nothing may error."""
        sets = {
            1: ["alpha"],
            2: ["alpha", "bravo"],
            3: ["alpha", "bravo", "charlie"],
            4: ["bravo"],
            5: ["alpha"],
        }
        payload = self.PAYLOAD.encode()
        expected = {gid: len(compile_dictionary(pats).match_events(payload))
                    for gid, pats in sets.items()}
        assert len(set(expected.values())) > 1   # swaps change counts

        results = []
        errors = []
        stop = threading.Event()

        with running_service(sets[1], scan_threads=4,
                             max_pending=32) as handle:
            def _scanner():
                try:
                    with ServiceClient(handle.host, handle.port) as c:
                        while not stop.is_set():
                            r = c.scan(payload)
                            results.append((r.generation, r.matches))
                            time.sleep(0.002)
                except Exception as exc:
                    errors.append(exc)

            threads = [threading.Thread(target=_scanner)
                       for _ in range(4)]
            for t in threads:
                t.start()
            time.sleep(0.05)
            with ServiceClient(handle.host, handle.port) as admin:
                for gid in range(2, 6):
                    admin.reload(sets[gid])
                    time.sleep(0.05)
                stop.set()
                for t in threads:
                    t.join()
                stats = admin.stats()
                final_gen = admin.ping()

        assert not errors
        assert final_gen == 5
        assert stats["metrics"]["reloads"]["count"] == 4
        assert len(results) > 10
        seen = {gen for gen, _ in results}
        assert seen <= set(sets)
        assert 1 in seen and 5 in seen
        for gen, matches in results:
            assert matches == expected[gen], \
                f"generation {gen} reported {matches}"


class TestLoadGenerator:
    def test_scan_mode_closed_loop(self):
        with running_service(["virus", "worm"]) as handle:
            result = run_load(handle.host, handle.port, connections=2,
                              requests_per_connection=20,
                              patterns=[b"virus"], match_fraction=1.0,
                              min_size=64, max_size=256, seed=3)
            with ServiceClient(handle.host, handle.port) as client:
                stats = client.stats()
        assert result.errors == 0
        assert result.requests == 40
        assert result.matches >= 40          # one planted match each
        assert result.generations == [1]
        assert result.p50_ms <= result.p99_ms
        assert stats["metrics"]["requests"]["SCAN"] == 40
        assert stats["metrics"]["bytes_scanned"] == result.bytes_sent

    def test_flow_mode_closed_loop(self):
        with running_service(["virus"]) as handle:
            result = run_load(handle.host, handle.port, connections=2,
                              requests_per_connection=10, mode="flow",
                              flows_per_connection=3, seed=4)
        assert result.errors == 0
        assert result.requests == 20
        assert result.mode == "flow"

    def test_payload_is_json_round_trippable(self):
        import json
        with running_service(["virus"]) as handle:
            result = run_load(handle.host, handle.port, connections=1,
                              requests_per_connection=5)
        body = json.loads(json.dumps(result.to_payload()))
        assert body["requests"] == 5
        assert "p95" in body["latency_ms"]

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            run_load("127.0.0.1", 1, mode="burst")
