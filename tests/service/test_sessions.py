"""Flow sessions over a compiled dictionary, including the reload
boundary (restart-at-generation semantics)."""

import pytest

from repro.core.compiled import compile_dictionary
from repro.core.flows import FlowError
from repro.service.sessions import SessionScanner


@pytest.fixture(scope="module")
def compiled():
    return compile_dictionary(["abcd", "xy"])


class TestSessionScanning:
    def test_cross_packet_match_within_flow(self, compiled):
        scanner = SessionScanner(compiled)
        new, total, _ = scanner.scan_packet("f", b"zzab")
        assert (new, total) == (0, 0)
        new, total, _ = scanner.scan_packet("f", b"cdzz")
        assert (new, total) == (1, 1)

    def test_flows_are_isolated(self, compiled):
        scanner = SessionScanner(compiled)
        scanner.scan_packet("a", b"ab")
        new, _, _ = scanner.scan_packet("b", b"cd")
        assert new == 0

    def test_case_folding_matches_compiled_fold(self, compiled):
        scanner = SessionScanner(compiled)
        new, _, _ = scanner.scan_packet("f", b"AbCd")
        assert new == 1

    def test_close_flow_returns_lifetime_totals(self, compiled):
        scanner = SessionScanner(compiled)
        scanner.scan_packet("f", b"abcd")
        scanner.scan_packet("f", b"xy")
        assert scanner.close_flow("f") == (6, 2)
        with pytest.raises(FlowError):
            scanner.close_flow("f")
        assert scanner.num_flows == 0

    def test_total_matches_spans_flows(self, compiled):
        scanner = SessionScanner(compiled)
        scanner.scan_packet("a", b"abcd")
        scanner.scan_packet("b", b"xyxy")
        assert scanner.total_matches() == 3

    def test_invalid_capacity(self, compiled):
        with pytest.raises(FlowError):
            SessionScanner(compiled, max_flows=0)

    def test_flow_total_equals_one_shot_scan(self):
        """SCAN and FLOW must agree on suffix-overlapping entries (one
        accepting state recognizing several dictionary entries)."""
        nested = compile_dictionary(["abc", "bc", "c", "cab"])
        payload = b"abcabcxbc" * 3
        expected = len(nested.match_events(payload))
        scanner = SessionScanner(nested)
        for off in range(0, len(payload), 4):
            scanner.scan_packet("f", payload[off:off + 4])
        assert scanner.close_flow("f") == (len(payload), expected)


class TestEviction:
    def test_lru_eviction_drops_totals(self, compiled):
        scanner = SessionScanner(compiled, max_flows=2, on_full="lru")
        scanner.scan_packet("a", b"abcd")
        scanner.scan_packet("b", b"xy")
        _, _, evicted = scanner.scan_packet("c", b"xy")
        assert evicted == 1
        assert scanner.evictions == 1
        assert scanner.num_flows == 2
        assert "a" not in scanner.flow_ids()
        # The evicted flow's totals are gone too — re-opening is fresh.
        _, total, _ = scanner.scan_packet("a", b"xy")
        assert total == 1


class TestReloadBoundary:
    def test_totals_carry_but_states_restart(self, compiled):
        old = SessionScanner(compiled)
        old.scan_packet("f", b"abcdab")        # 1 match, dangling "ab"
        new = SessionScanner(compiled)
        assert new.carry_from(old) == 1
        # Restart-at-generation: the straddling "ab|cd" is NOT found...
        got, total, _ = new.scan_packet("f", b"cd")
        assert got == 0
        assert total == 1                      # ...but lifetime carries
        assert new.close_flow("f") == (8, 1)

    def test_carry_merges_flows_that_raced_the_promote(self, compiled):
        old = SessionScanner(compiled)
        old.scan_packet("f", b"abcd")
        new = SessionScanner(compiled)
        # The flow already scanned under the new generation before the
        # carry ran (promotion happens first): totals must merge.
        new.scan_packet("f", b"xy")
        new.carry_from(old)
        assert new.close_flow("f") == (6, 2)

    def test_carried_only_flows_participate_in_lru(self, compiled):
        old = SessionScanner(compiled)
        for fid in ("a", "b"):
            old.scan_packet(fid, b"xy")
        new = SessionScanner(compiled, max_flows=2, on_full="lru")
        new.carry_from(old)
        # Admitting a third flow evicts the least-recent carried one —
        # and its totals must go with it.
        new.scan_packet("c", b"xy")
        assert new.num_flows == 2
        assert "a" not in new.flow_ids()
        assert set(new.flow_ids()) == {"b", "c"}

    def test_carry_into_smaller_table_prunes_overflow(self, compiled):
        old = SessionScanner(compiled)
        for fid in ("a", "b", "c"):
            old.scan_packet(fid, b"xy")
        new = SessionScanner(compiled, max_flows=2, on_full="lru")
        new.carry_from(old)
        assert new.num_flows == 2
        assert set(new.flow_ids()) == {"b", "c"}    # LRU order kept

    def test_carry_from_empty(self, compiled):
        new = SessionScanner(compiled)
        assert new.carry_from(SessionScanner(compiled)) == 0
        assert new.num_flows == 0
