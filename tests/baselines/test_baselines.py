"""Baseline matchers: every algorithm must agree with the naive reference
on occurrence events, plus algorithm-specific behaviours."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    BloomFilter,
    BloomMatcher,
    BoyerMooreMatcher,
    CommentzWalterMatcher,
    KMPMatcher,
    NaiveMatcher,
    WuManberMatcher,
)
from repro.baselines.boyer_moore import bad_character_table, \
    good_suffix_table
from repro.baselines.kmp import failure_function
from repro.dfa import AhoCorasick
from repro.workloads import adversarial_payload, plant_matches, \
    random_payload, random_signatures

ALL_MATCHERS = [KMPMatcher, BoyerMooreMatcher, WuManberMatcher,
                CommentzWalterMatcher, BloomMatcher, AhoCorasick]


def build(cls, patterns):
    if cls is AhoCorasick:
        return cls(patterns, 256)
    return cls(patterns)


def sym_pattern():
    return st.binary(min_size=1, max_size=7).map(
        lambda b: bytes(x % 31 + 1 for x in b))


class TestAgreementWithNaive:
    @pytest.mark.parametrize("cls", ALL_MATCHERS)
    def test_planted_workload(self, cls):
        patterns = random_signatures(10, 2, 8, seed=4)
        text = plant_matches(random_payload(3000, seed=5), patterns, 25,
                             seed=6)
        ref = NaiveMatcher(patterns).find_all(text)
        assert build(cls, patterns).find_all(text) == ref

    @pytest.mark.parametrize("cls", ALL_MATCHERS)
    def test_overlapping_self_repeating_pattern(self, cls):
        patterns = [bytes([1, 1]), bytes([1, 1, 1])]
        text = bytes([1] * 10)
        ref = NaiveMatcher(patterns).find_all(text)
        assert build(cls, patterns).find_all(text) == ref

    @pytest.mark.parametrize("cls", ALL_MATCHERS)
    def test_match_at_start_and_end(self, cls):
        patterns = [bytes([5, 6, 7])]
        text = bytes([5, 6, 7, 0, 0, 5, 6, 7])
        ref = NaiveMatcher(patterns).find_all(text)
        got = build(cls, patterns).find_all(text)
        assert got == ref
        assert {e.end for e in got} == {3, 8}

    @pytest.mark.parametrize("cls", ALL_MATCHERS)
    def test_no_match(self, cls):
        patterns = [bytes([9, 9, 9])]
        assert build(cls, patterns).count(bytes([1, 2, 3] * 50)) == 0

    @pytest.mark.parametrize("cls", ALL_MATCHERS)
    def test_empty_text(self, cls):
        patterns = [bytes([1, 2])]
        assert build(cls, patterns).find_all(b"") == []

    @settings(max_examples=50, deadline=None)
    @given(st.lists(sym_pattern(), min_size=1, max_size=5, unique=True),
           st.binary(min_size=0, max_size=250).map(
               lambda b: bytes(x % 32 for x in b)))
    def test_all_matchers_agree_property(self, patterns, text):
        ref = NaiveMatcher(patterns).find_all(text)
        for cls in (KMPMatcher, BoyerMooreMatcher, WuManberMatcher,
                    CommentzWalterMatcher, BloomMatcher):
            assert cls(patterns).find_all(text) == ref, cls.__name__


class TestConstructionErrors:
    @pytest.mark.parametrize("cls", [NaiveMatcher, KMPMatcher,
                                     BoyerMooreMatcher, WuManberMatcher,
                                     CommentzWalterMatcher, BloomMatcher])
    def test_empty_dictionary(self, cls):
        with pytest.raises(ValueError):
            cls([])

    @pytest.mark.parametrize("cls", [NaiveMatcher, WuManberMatcher,
                                     CommentzWalterMatcher, BloomMatcher])
    def test_empty_pattern(self, cls):
        with pytest.raises(ValueError):
            cls([b""])


class TestKMPInternals:
    def test_failure_function_classic(self):
        assert failure_function(b"ababaca") == [0, 0, 1, 2, 3, 0, 1]

    def test_failure_function_no_borders(self):
        assert failure_function(b"abcd") == [0, 0, 0, 0]


class TestBoyerMooreInternals:
    def test_bad_character_rightmost(self):
        table = bad_character_table(b"abcab")
        assert table[ord("a")] == 3
        assert table[ord("b")] == 4
        assert table[ord("c")] == 2

    def test_good_suffix_table_length(self):
        assert len(good_suffix_table(b"abc")) == 4


class TestInputDependence:
    """The paper's §1 argument: heuristic matchers degrade on adversarial
    input while DFA work stays flat."""

    def test_wu_manber_adversarial_inspections(self):
        patterns = [bytes([1, 2, 3, 4, 5, 6, 7, 8])]
        wm = WuManberMatcher(patterns)
        n = 4000
        friendly = bytes([20] * n)          # always max shift
        # Corrupting the FIRST byte keeps every window suffix looking like
        # the pattern, defeating the shift table at the window end.
        hostile = adversarial_payload(patterns[0], n,
                                      mismatch_at_end=False)
        assert wm.scan_work(hostile) > 1.5 * wm.scan_work(friendly)

    def test_dfa_work_is_content_independent(self):
        patterns = [bytes([1, 2, 3, 4, 5, 6, 7, 8])]
        ac = AhoCorasick(patterns, 32)
        n = 4000
        friendly = bytes([20] * n)
        hostile = adversarial_payload(patterns[0], n)
        # Same number of transitions either way: n.
        assert len(ac.to_dfa().state_trace(friendly)) == n
        assert len(ac.to_dfa().state_trace(hostile)) == n


class TestBloom:
    def test_filter_no_false_negatives(self):
        bf = BloomFilter(100, 0.01)
        from repro.baselines.bloom import _hash_pair
        items = [bytes([i, i + 1, i + 2]) for i in range(50)]
        for item in items:
            bf.add_hash(*_hash_pair(item))
        assert all(bf.query_hash(*_hash_pair(i)) for i in items)

    def test_filter_rejects_most_nonmembers(self):
        bf = BloomFilter(100, 0.01)
        from repro.baselines.bloom import _hash_pair
        for i in range(100):
            bf.add_hash(*_hash_pair(bytes([i % 256, i // 256, 7])))
        fp = sum(
            1 for i in range(1000)
            if bf.query_hash(*_hash_pair(bytes([9, 9, i % 256, i // 256]))))
        assert fp < 100  # far below 10%

    def test_theoretical_fp_rate_reasonable(self):
        bf = BloomFilter(1000, 0.01)
        from repro.baselines.bloom import _hash_pair
        for i in range(1000):
            bf.add_hash(*_hash_pair(i.to_bytes(4, "big")))
        assert 0 < bf.theoretical_fp_rate() < 0.05

    def test_fill_ratio_grows(self):
        bf = BloomFilter(64, 0.05)
        from repro.baselines.bloom import _hash_pair
        assert bf.fill_ratio == 0
        bf.add_hash(*_hash_pair(b"abc"))
        assert bf.fill_ratio > 0

    def test_matcher_counts_verifications(self):
        patterns = random_signatures(8, 3, 6, seed=10)
        bm = BloomMatcher(patterns)
        text = plant_matches(random_payload(2000, seed=11), patterns, 15,
                             seed=12)
        found = bm.find_all(text)
        assert bm.verifications >= len(found)

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            BloomFilter(0)
        with pytest.raises(ValueError):
            BloomFilter(10, 1.5)


class TestWuManberSpecifics:
    def test_short_pattern_falls_back_to_block_1(self):
        wm = WuManberMatcher([bytes([1])], block=2)
        assert wm.block == 1
        assert wm.count(bytes([0, 1, 0, 1])) == 2

    def test_mixed_lengths(self):
        patterns = [bytes([1, 2]), bytes([1, 2, 3, 4, 5])]
        wm = WuManberMatcher(patterns)
        text = bytes([1, 2, 3, 4, 5])
        assert len(wm.find_all(text)) == 2
