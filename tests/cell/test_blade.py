"""The dual-Cell blade model."""

import pytest

from repro.cell.blade import BIF_BANDWIDTH, CellBlade


@pytest.fixture
def blade():
    return CellBlade(memory_size=4 << 20)


class TestStructure:
    def test_sixteen_spes(self, blade):
        assert blade.num_spes == 16
        assert blade.spe(15) is blade.chips[1].spe(7)

    def test_index_bounds(self, blade):
        with pytest.raises(ValueError):
            blade.spe(16)
        with pytest.raises(ValueError):
            blade.chip_of(-1)

    def test_chips_share_memory(self, blade):
        blade.memory.write(0x1000, b"coherent!.......")
        blade.spe(0).mfc.get(0, 0x1000, 16, tag=0)
        blade.spe(15).mfc.get(0, 0x1000, 16, tag=0)
        assert blade.spe(0).local_store.read(0, 16) == \
            blade.spe(15).local_store.read(0, 16) == b"coherent!......."

    def test_chip_of(self, blade):
        assert blade.chip_of(0) == 0
        assert blade.chip_of(7) == 0
        assert blade.chip_of(8) == 1


class TestTransfers:
    def test_cross_chip_slower_than_on_chip(self, blade):
        on = blade.ls_transfer_seconds(0, 1, 16 * 1024)
        cross = blade.ls_transfer_seconds(0, 8, 16 * 1024)
        assert cross > on

    def test_cross_chip_uses_bif_rate(self, blade):
        t = blade.ls_transfer_seconds(3, 12, 1 << 20)
        assert t == pytest.approx((1 << 20) / BIF_BANDWIDTH)

    def test_invalid_size(self, blade):
        with pytest.raises(ValueError):
            blade.ls_transfer_seconds(0, 1, 0)


class TestHeadline:
    def test_blade_reaches_81_76_gbps(self, blade):
        """Paper §5: a dual-Cell blade reaches 81.76 Gbps."""
        assert blade.aggregate_gbps() == pytest.approx(81.76)

    def test_partial_deployments(self, blade):
        assert blade.aggregate_gbps(tiles=8) == pytest.approx(40.88)
        with pytest.raises(ValueError):
            blade.aggregate_gbps(tiles=17)
