"""Main memory and the Figure-2 bandwidth model."""

import pytest

from repro.cell.memory import (
    BandwidthModel,
    HEAVY_TRAFFIC_AGGREGATE,
    MainMemory,
    MemoryError_,
)


class TestBandwidthModel:
    def setup_method(self):
        self.bw = BandwidthModel()

    def test_small_blocks_waste_bandwidth(self):
        """Figure 2's core message: tiny blocks cannot amortize the bus
        negotiation overhead."""
        assert self.bw.per_spe_uncontended(64) \
            < self.bw.per_spe_uncontended(256) \
            < self.bw.per_spe_uncontended(4096)

    def test_large_blocks_approach_link_rate(self):
        assert self.bw.per_spe_uncontended(64 * 1024) \
            > 0.9 * self.bw.spe_link

    def test_aggregate_saturates_at_heavy_traffic_value(self):
        """8 SPEs moving >=512-byte blocks hit the arbiter's 22.05 GB/s."""
        assert self.bw.aggregate(8, 512) == \
            pytest.approx(HEAVY_TRAFFIC_AGGREGATE)
        assert self.bw.aggregate(8, 16 * 1024) == \
            pytest.approx(HEAVY_TRAFFIC_AGGREGATE)

    def test_aggregate_monotone_in_spes_until_saturation(self):
        values = [self.bw.aggregate(p, 4096) for p in range(1, 9)]
        assert all(b >= a - 1e-6 for a, b in zip(values, values[1:]))

    def test_256_byte_blocks_are_close_to_peak(self):
        """Paper: 'bandwidth values close to the peak can be reached only
        when transferred blocks are at least 256 bytes or larger'."""
        agg = self.bw.aggregate(8, 256)
        assert agg > 0.85 * HEAVY_TRAFFIC_AGGREGATE

    def test_64_byte_blocks_are_far_from_peak(self):
        agg = self.bw.aggregate(8, 64)
        assert agg < 0.6 * HEAVY_TRAFFIC_AGGREGATE

    def test_worst_case_per_spe_is_2_76_gbs(self):
        """The per-SPE figure the paper's schedules assume (22.05/8)."""
        per = self.bw.per_spe(8, 16 * 1024)
        assert per == pytest.approx(2.76e9, rel=0.01)

    def test_transfer_seconds_16k_matches_paper(self):
        """16 KB at 2.76 GB/s = 5.94 us (Figure 5)."""
        t = self.bw.transfer_seconds(16 * 1024)
        assert t == pytest.approx(5.94e-6, rel=0.01)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            self.bw.per_spe_uncontended(0)
        with pytest.raises(ValueError):
            self.bw.aggregate(0, 64)
        with pytest.raises(ValueError):
            self.bw.aggregate(9, 64)
        with pytest.raises(ValueError):
            self.bw.transfer_seconds(0)


class TestMainMemory:
    def test_roundtrip(self):
        mem = MainMemory(1 << 20)
        mem.write(0x8000, b"payload")
        assert mem.read(0x8000, 7) == b"payload"

    def test_bounds(self):
        mem = MainMemory(1 << 16)
        with pytest.raises(MemoryError_):
            mem.write((1 << 16) - 2, b"xxxx")
        with pytest.raises(MemoryError_):
            mem.read(1 << 16, 1)

    def test_bad_size(self):
        with pytest.raises(MemoryError_):
            MainMemory(0)
