"""Local store: capacity, alignment, allocator."""

import pytest

from repro.cell.local_store import LS_SIZE, LocalStore, LocalStoreError


class TestRawAccess:
    def test_capacity_is_256k(self):
        assert LS_SIZE == 262144
        assert LocalStore().size == LS_SIZE

    def test_write_read_roundtrip(self):
        ls = LocalStore()
        ls.write(0x1000, b"hello world pad!")
        assert ls.read(0x1000, 16) == b"hello world pad!"

    def test_write_out_of_bounds(self):
        ls = LocalStore()
        with pytest.raises(LocalStoreError, match="out of bounds"):
            ls.write(LS_SIZE - 4, b"too long")

    def test_read_out_of_bounds(self):
        ls = LocalStore()
        with pytest.raises(LocalStoreError):
            ls.read(LS_SIZE, 1)

    def test_negative_address_rejected(self):
        ls = LocalStore()
        with pytest.raises(LocalStoreError):
            ls.read(-1, 4)

    def test_bad_size_rejected(self):
        with pytest.raises(LocalStoreError):
            LocalStore(size=100)  # not multiple of 16
        with pytest.raises(LocalStoreError):
            LocalStore(size=0)


class TestAllocator:
    def test_alloc_respects_alignment(self):
        ls = LocalStore()
        ls.alloc("a", 10)
        region = ls.alloc("b", 100, align=128)
        assert region.start % 128 == 0

    def test_alloc_sequential(self):
        ls = LocalStore()
        a = ls.alloc("a", 32)
        b = ls.alloc("b", 32)
        assert b.start >= a.end

    def test_duplicate_name_rejected(self):
        ls = LocalStore()
        ls.alloc("x", 16)
        with pytest.raises(LocalStoreError, match="already allocated"):
            ls.alloc("x", 16)

    def test_overflow_rejected_with_free_bytes(self):
        ls = LocalStore()
        ls.alloc("big", LS_SIZE - 64)
        with pytest.raises(LocalStoreError, match="exceeds"):
            ls.alloc("more", 128)

    def test_bad_alignment_rejected(self):
        ls = LocalStore()
        with pytest.raises(LocalStoreError, match="power of two"):
            ls.alloc("x", 16, align=24)

    def test_region_lookup_and_contains(self):
        ls = LocalStore()
        region = ls.alloc("stt", 256)
        assert ls.region("stt") == region
        assert region.start in region
        assert region.end not in region

    def test_unknown_region(self):
        ls = LocalStore()
        with pytest.raises(LocalStoreError, match="no region"):
            ls.region("ghost")

    def test_bytes_free_decreases(self):
        ls = LocalStore()
        before = ls.bytes_free
        ls.alloc("x", 1024)
        assert ls.bytes_free == before - 1024

    def test_usage_map_lists_regions(self):
        ls = LocalStore()
        ls.alloc("code_stack", 1024)
        ls.alloc("stt", 2048)
        text = ls.usage_map()
        assert "code_stack" in text and "stt" in text and "free" in text
