"""The SPU timing model: issue rules, stalls, dual issue, branch costs."""

import pytest

from repro.cell.isa import splat_word, word
from repro.cell.program import Asm
from repro.cell.spu import BRANCH_PENALTY, CLOCK_HZ, SPU, SPUError, SPUStats


def run(build):
    asm = Asm()
    build(asm)
    asm.stop()
    spu = SPU()
    stats = spu.run(asm.finish())
    return spu, stats


class TestFunctionalExecution:
    def test_simple_loop_sum(self):
        def body(asm):
            asm.il(1, 0)
            asm.il(2, 10)
            asm.hbr("loop")
            asm.label("loop")
            asm.a(1, 1, 2)
            asm.ai(2, 2, -1)
            asm.brnz(2, "loop")
        spu, stats = run(body)
        assert word(spu.get_reg(1), 0) == 55
        assert stats.branches_taken == 9

    def test_memory_roundtrip_through_program(self):
        def body(asm):
            asm.ila(1, 0x300)
            asm.il(2, 0x42)
            asm.stqd(2, 1, 0)
            asm.lqd(3, 1, 0)
        spu, stats = run(body)
        assert word(spu.get_reg(3), 0) == 0x42

    def test_set_get_reg_bounds(self):
        spu = SPU()
        with pytest.raises(SPUError):
            spu.set_reg(128, 0)
        with pytest.raises(SPUError):
            spu.get_reg(-1)

    def test_reset_clears_registers(self):
        spu = SPU()
        spu.set_reg(5, splat_word(7))
        spu.reset()
        assert spu.get_reg(5) == 0

    def test_empty_program_rejected(self):
        from repro.cell.program import Program
        with pytest.raises(SPUError):
            SPU().run(Program([], {}))

    def test_runaway_program_detected(self):
        asm = Asm()
        asm.label("forever")
        asm.hbr("forever")
        asm.br("forever")
        asm.stop()
        with pytest.raises(SPUError, match="runaway"):
            SPU().run(asm.finish(), max_cycles=1000)


class TestTimingModel:
    def test_dependency_stall_on_latency(self):
        """A dependent instruction waits for the producer's latency."""
        def body(asm):
            asm.il(1, 1)            # latency 2
            asm.a(2, 1, 1)          # depends on r1
        _, stats = run(body)
        assert stats.stall_cycles >= 1

    def test_independent_instructions_do_not_stall(self):
        def body(asm):
            asm.il(1, 1)
            asm.il(2, 2)
            asm.il(3, 3)
            asm.il(4, 4)
        _, stats = run(body)
        assert stats.stall_cycles == 0

    def test_dual_issue_even_odd_pair(self):
        """Adjacent even+odd independent instructions share a cycle."""
        def body(asm):
            asm.il(1, 1)            # even
            asm.lnop()              # odd
            asm.il(2, 2)            # even
            asm.lnop()              # odd
        _, stats = run(body)
        assert stats.dual_issue_cycles >= 2

    def test_no_dual_issue_same_pipe(self):
        def body(asm):
            asm.il(1, 1)
            asm.il(2, 2)
        _, stats = run(body)
        assert stats.dual_issue_cycles == 0

    def test_no_dual_issue_on_dependency(self):
        def body(asm):
            asm.il(1, 5)            # even
            asm.rotqbyi(2, 1, 1)    # odd, depends on r1 -> cannot pair
        _, stats = run(body)
        # The dependent pair cannot share a cycle: the consumer waits out
        # the producer's 2-cycle latency (it may still pair with `stop`).
        assert stats.stall_cycles >= 1
        assert stats.cycles >= 3

    def test_unhinted_branch_pays_penalty(self):
        asm = Asm()
        asm.il(1, 1)
        asm.label("skip_target")  # placed before so branch is backwards
        asm.ai(1, 1, 0)
        asm.ceqi(2, 1, 99)
        asm.brz(2, "out")         # forward, taken, unhinted
        asm.nop()
        asm.label("out")
        asm.stop()
        stats = SPU().run(asm.finish())
        assert stats.branch_penalty_cycles == BRANCH_PENALTY

    def test_hinted_branch_is_free(self):
        asm = Asm()
        asm.hbr("out")
        asm.il(1, 0)
        asm.brz(1, "out")
        asm.nop()
        asm.label("out")
        asm.stop()
        stats = SPU().run(asm.finish())
        assert stats.branch_penalty_cycles == 0

    def test_not_taken_branch_no_penalty(self):
        asm = Asm()
        asm.il(1, 5)
        asm.brz(1, "out")   # r1 != 0: not taken
        asm.nop()
        asm.label("out")
        asm.stop()
        stats = SPU().run(asm.finish())
        assert stats.branch_penalty_cycles == 0

    def test_load_latency_longer_than_alu(self):
        def load_then_use(asm):
            asm.ila(1, 0x100)
            asm.nop()
            asm.nop()
            asm.lqd(2, 1, 0)
            asm.ai(3, 2, 0)
        _, s_load = run(load_then_use)

        def alu_then_use(asm):
            asm.ila(1, 0x100)
            asm.nop()
            asm.nop()
            asm.ai(2, 1, 1)
            asm.ai(3, 2, 0)
        _, s_alu = run(alu_then_use)
        assert s_load.stall_cycles > s_alu.stall_cycles


class TestStats:
    def test_cpi_and_percentages_consistent(self):
        def body(asm):
            asm.il(1, 1)
            asm.lnop()
            asm.il(2, 2)
            asm.a(3, 1, 2)
        _, stats = run(body)
        assert stats.cpi == stats.cycles / stats.instructions
        assert 0 <= stats.dual_issue_pct <= 100
        assert 0 <= stats.stall_pct <= 100

    def test_issue_cycle_accounting_covers_instructions(self):
        def body(asm):
            for i in range(1, 10):
                asm.il(i, i)
        _, stats = run(body)
        issued = stats.dual_issue_cycles * 2 + stats.single_issue_cycles
        assert issued == stats.instructions

    def test_cycles_per_and_throughput(self):
        stats = SPUStats(cycles=3200, instructions=1000)
        assert stats.cycles_per(100) == 32.0
        assert stats.seconds() == pytest.approx(3200 / CLOCK_HZ)
        assert stats.actions_per_second(3200) == pytest.approx(CLOCK_HZ)

    def test_cycles_per_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            SPUStats(cycles=10, instructions=5).cycles_per(0)

    def test_empty_stats_safe(self):
        stats = SPUStats()
        assert stats.cpi == 0.0
        assert stats.dual_issue_pct == 0.0
        assert stats.stall_pct == 0.0
