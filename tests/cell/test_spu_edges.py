"""SPU timing-model edge cases beyond the basic issue rules."""

import pytest

from repro.cell.isa import from_words, splat_word, word
from repro.cell.program import Asm
from repro.cell.spu import BRANCH_PENALTY, SPU, SPUError


def run(build, **kwargs):
    asm = Asm()
    build(asm)
    asm.stop()
    spu = SPU()
    stats = spu.run(asm.finish(), **kwargs)
    return spu, stats


class TestDualIssueEdges:
    def test_waw_pair_does_not_dual_issue(self):
        """Two writers of the same register must not share a cycle (the
        later write wins and must be ordered)."""
        def body(asm):
            asm.il(1, 5)        # even, writes r1
            asm.lqd(1, 0, 0)    # odd, also writes r1
            asm.nop()
            asm.nop()
        spu, stats = run(body)
        # Had the WAW pair shared a cycle the run would finish in 3
        # cycles (il+lqd, nop, nop+stop-blocked...); the in-order split
        # costs one more.  The later write (the load of LS zeros) wins.
        assert stats.cycles == 4
        assert spu.get_reg(1) == 0

    def test_war_pair_may_dual_issue(self):
        """Reader and later writer of the same register can pair: the
        reader sees the old value (in-order read at issue)."""
        def body(asm):
            asm.il(5, 3)
            asm.nop()
            asm.lnop()
            asm.ai(6, 5, 1)     # even, reads r5
            asm.lqd(5, 0, 0)    # odd, writes r5
        spu, stats = run(body)
        assert word(spu.get_reg(6), 0) == 4   # read old r5

    def test_taken_branch_blocks_pairing_with_target(self):
        def body(asm):
            asm.hbr("t")
            asm.il(1, 0)
            asm.br("t")
            asm.il(2, 99)      # skipped
            asm.label("t")
            asm.il(3, 7)
        spu, stats = run(body)
        assert word(spu.get_reg(2), 0) == 0
        assert word(spu.get_reg(3), 0) == 7

    def test_branch_can_pair_as_second_of_pair(self):
        """even + branch(odd) can share a cycle when independent."""
        def body(asm):
            asm.hbr("out")
            asm.il(1, 0)
            asm.nop()
            asm.il(2, 1)         # even
            asm.brz(1, "out")    # odd branch, condition long ready
            asm.il(3, 99)        # skipped
            asm.label("out")
        spu, stats = run(body)
        assert word(spu.get_reg(3), 0) == 0
        assert stats.dual_issue_cycles >= 1


class TestBranchSemantics:
    def test_brnz_falls_through_on_zero(self):
        def body(asm):
            asm.il(1, 0)
            asm.brnz(1, "skip")
            asm.il(2, 42)
            asm.label("skip")
        spu, _ = run(body)
        assert word(spu.get_reg(2), 0) == 42

    def test_branch_condition_uses_preferred_slot_only(self):
        asm = Asm()
        asm.stop()
        spu = SPU()
        # r1: zero in word 0, junk elsewhere -> brz must take.
        spu.set_reg(1, from_words(0, 7, 7, 7))
        asm2 = Asm()
        asm2.hbr("out")
        asm2.brz(1, "out")
        asm2.il(2, 1)
        asm2.label("out")
        asm2.stop()
        prog = asm2.finish()
        # set_reg cleared by run()? run() does not reset registers.
        stats = spu.run(prog)
        assert word(spu.get_reg(2), 0) == 0

    def test_backward_unhinted_loop_pays_per_iteration(self):
        def hinted(asm):
            asm.hbr("loop")
            asm.il(1, 5)
            asm.label("loop")
            asm.ai(1, 1, -1)
            asm.brnz(1, "loop")
        _, s_hint = run(hinted)

        def unhinted(asm):
            asm.il(1, 5)
            asm.label("loop")
            asm.ai(1, 1, -1)
            asm.brnz(1, "loop")
        _, s_plain = run(unhinted)
        assert s_plain.branch_penalty_cycles == 4 * BRANCH_PENALTY
        assert s_hint.branch_penalty_cycles == 0
        assert s_plain.cycles > s_hint.cycles


class TestGuards:
    def test_max_instructions_guard(self):
        asm = Asm()
        asm.hbr("loop")
        asm.il(1, 0)
        asm.label("loop")
        asm.ai(1, 1, 1)
        asm.br("loop")
        asm.stop()
        with pytest.raises(SPUError, match="runaway"):
            SPU().run(asm.finish(), max_instructions=100)

    def test_pc_fell_off_end(self):
        asm = Asm()
        asm.il(1, 1)   # no stop
        prog = asm.finish()
        with pytest.raises(SPUError, match="fell off"):
            SPU().run(prog)

    def test_register_value_masked_to_128_bits(self):
        spu = SPU()
        spu.set_reg(3, (1 << 130) | 5)
        assert spu.get_reg(3) == ((1 << 130) | 5) & ((1 << 128) - 1)


class TestProfileModeParity:
    def test_profiling_does_not_change_timing(self):
        def body(asm):
            asm.hbr("loop")
            asm.il(1, 0)
            asm.il(2, 25)
            asm.label("loop")
            asm.a(1, 1, 2)
            asm.lnop()
            asm.ai(2, 2, -1)
            asm.brnz(2, "loop")
        _, plain = run(body)
        _, profiled = run(body, profile=True)
        assert profiled.cycles == plain.cycles
        assert profiled.instructions == plain.instructions
        assert profiled.execution_counts is not None
