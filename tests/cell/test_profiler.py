"""Kernel profiler: per-instruction counts, opcode mix, issue bounds."""

import pytest

from repro.cell.profiler import KernelProfile, profile
from repro.cell.program import Asm
from repro.cell.spu import SPU
from repro.core.planner import plan_tile
from repro.core.tile import DFATile
from repro.dfa import build_dfa

PATTERNS = [bytes([1, 2, 3]), bytes([4, 5])]


def small_loop(n=10):
    asm = Asm()
    asm.hbr("loop")
    asm.il(1, 0)
    asm.il(2, n)
    asm.label("loop")
    asm.a(1, 1, 2)       # even
    asm.lnop()           # odd
    asm.ai(2, 2, -1)
    asm.brnz(2, "loop")
    asm.stop()
    return asm.finish()


class TestProfileBasics:
    def test_execution_counts_match_loop_trips(self):
        prog = small_loop(10)
        prof = profile(SPU(), prog)
        counts = prof.stats.execution_counts
        loop_body_index = prog.labels["loop"]
        assert counts[loop_body_index] == 10

    def test_opcode_histogram(self):
        prof = profile(SPU(), small_loop(5))
        assert prof.opcode_counts["a"] == 5
        assert prof.opcode_counts["brnz"] == 5
        assert prof.opcode_counts["il"] == 2

    def test_dynamic_total_matches_stats(self):
        prof = profile(SPU(), small_loop(7))
        assert prof.dynamic_instructions == prof.stats.instructions

    def test_pipe_counts_sum(self):
        prof = profile(SPU(), small_loop(4))
        from repro.cell.isa import EVEN, ODD
        assert prof.pipe_counts[EVEN] + prof.pipe_counts[ODD] == \
            prof.dynamic_instructions

    def test_issue_bound_below_cycles(self):
        prof = profile(SPU(), small_loop(20))
        assert prof.issue_bound_cycles <= prof.stats.cycles
        assert 0 < prof.schedule_efficiency <= 1.0

    def test_hot_sorted_descending(self):
        prof = profile(SPU(), small_loop(9))
        counts = [c for _, c, _ in prof.hot]
        assert counts == sorted(counts, reverse=True)

    def test_render_mentions_mix_and_hotspots(self):
        prof = profile(SPU(), small_loop(3))
        text = prof.render()
        assert "opcode mix" in text
        assert "hottest" in text
        assert "pipe balance" in text

    def test_profile_off_by_default(self):
        stats = SPU().run(small_loop(3))
        assert stats.execution_counts is None


class TestProfileKernel:
    def test_dfa_kernel_profile_shape(self):
        """The peak kernel's dynamic mix: loads + rotates on the odd pipe,
        adds/ands on the even pipe; STT loads dominate the odd pipe."""
        tile = DFATile(build_dfa(PATTERNS, 32),
                       plan=plan_tile(buffer_bytes=1024))
        kernel = tile.kernel_for(96, version=4)
        kernel.write_start_states(tile.local_store)
        tile.local_store.write(kernel.input_base, bytes(96))
        tile.spu.reset()
        prof = profile(tile.spu, kernel.program)
        # per transition: rotmi, a, andi, andi, a (even);
        # rotqbyi, lqx, rotqby (odd)
        assert prof.opcode_counts["lqx"] >= 96
        assert prof.opcode_counts["andi"] >= 2 * 96
        assert 0.55 < prof.even_fraction < 0.70
        # Efficiency should be high for the unrolled kernel.
        assert prof.schedule_efficiency > 0.75
