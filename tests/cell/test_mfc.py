"""The MFC DMA engine: command validation, data movement, lists, tags."""

import pytest

from repro.cell.local_store import LocalStore
from repro.cell.memory import MainMemory
from repro.cell.mfc import DMAError, MAX_DMA_SIZE, MFC, QUEUE_DEPTH


@pytest.fixture
def setup():
    ls = LocalStore()
    mem = MainMemory(4 << 20)
    return ls, mem, MFC(ls, mem)


class TestValidation:
    def test_size_limits(self, setup):
        ls, mem, mfc = setup
        with pytest.raises(DMAError, match="DMA size"):
            mfc.get(0, 0, 0, tag=0)
        with pytest.raises(DMAError, match="DMA list"):
            mfc.get(0, 0, MAX_DMA_SIZE + 16, tag=0)

    def test_alignment(self, setup):
        ls, mem, mfc = setup
        with pytest.raises(DMAError, match="aligned"):
            mfc.get(8, 0, 64, tag=0)
        with pytest.raises(DMAError, match="aligned"):
            mfc.get(0, 8, 64, tag=0)

    def test_tag_range(self, setup):
        ls, mem, mfc = setup
        with pytest.raises(DMAError, match="tag"):
            mfc.get(0, 0, 64, tag=32)

    def test_queue_depth(self, setup):
        ls, mem, mfc = setup
        for i in range(QUEUE_DEPTH):
            mfc.get(i * 16, 0, 16, tag=1)
        with pytest.raises(DMAError, match="queue full"):
            mfc.get(0x1000, 0, 16, tag=1)


class TestDataMovement:
    def test_get_copies_memory_to_ls(self, setup):
        ls, mem, mfc = setup
        mem.write(0x4000, b"A" * 64)
        mfc.get(0x100, 0x4000, 64, tag=0)
        assert ls.read(0x100, 64) == b"A" * 64

    def test_put_copies_ls_to_memory(self, setup):
        ls, mem, mfc = setup
        ls.write(0x200, b"B" * 32)
        mfc.put(0x200, 0x8000, 32, tag=0)
        assert mem.read(0x8000, 32) == b"B" * 32

    def test_get_list_splits_large_transfers(self, setup):
        ls, mem, mfc = setup
        payload = bytes(range(256)) * ((40 * 1024) // 256)
        mem.write(0, payload)
        cmds = mfc.get_list(0, 0, 40 * 1024, tag=2)
        assert len(cmds) == 3  # 16k + 16k + 8k
        assert ls.read(0, 40 * 1024) == payload
        # Elements chained back to back in time.
        for a, b in zip(cmds, cmds[1:]):
            assert b.start_s == pytest.approx(a.end_s)

    def test_put_list_roundtrip(self, setup):
        ls, mem, mfc = setup
        data = b"\xab" * (20 * 1024)
        ls.write(0, data)
        mfc.put_list(0, 0x10000, 20 * 1024, tag=3)
        assert mem.read(0x10000, 20 * 1024) == data


class TestTiming:
    def test_duration_uses_bandwidth_model(self, setup):
        ls, mem, mfc = setup
        cmd = mfc.get(0, 0, 16 * 1024, tag=0)
        assert cmd.duration_s == pytest.approx(5.94e-6, rel=0.01)

    def test_wait_tag_returns_latest_end_and_drains(self, setup):
        ls, mem, mfc = setup
        mfc.get(0, 0, 1024, tag=4, start_s=0.0)
        c2 = mfc.get(0x400, 0, 2048, tag=4, start_s=1e-6)
        end = mfc.wait_tag(4)
        assert end == pytest.approx(c2.end_s)
        assert mfc.pending(4) == []

    def test_wait_tag_keeps_other_tags(self, setup):
        ls, mem, mfc = setup
        mfc.get(0, 0, 64, tag=1)
        mfc.get(0x100, 0, 64, tag=2)
        mfc.wait_tag(1)
        assert len(mfc.pending()) == 1
        assert mfc.pending(2)[0].tag == 2

    def test_bytes_transferred_accumulates(self, setup):
        ls, mem, mfc = setup
        mfc.get(0, 0, 64, tag=0)
        mfc.put(0, 0x100, 32, tag=0)
        assert mfc.bytes_transferred == 96
