"""Property-based checks of the SPU ISA against Python-semantics oracles."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cell.isa import (
    Instruction,
    from_bytes16,
    from_words,
    to_bytes16,
    word,
)
from repro.cell.local_store import LocalStore
from repro.cell.spu import SPU

regval = st.integers(min_value=0, max_value=(1 << 128) - 1)
word32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


def run_op(op, a=None, b=None, c=None, imm=None):
    spu = SPU(LocalStore())
    if a is not None:
        spu.regs[1] = a
    if b is not None:
        spu.regs[2] = b
    if c is not None:
        spu.regs[3] = c
    inst = Instruction(op, rt=4, ra=1 if a is not None else None,
                       rb=2 if b is not None else None,
                       rc=3 if c is not None else None, imm=imm)
    inst.spec.execute(spu, inst)
    return spu.regs[4]


class TestWordHelpers:
    @given(word32, word32, word32, word32)
    def test_from_words_word_roundtrip(self, w0, w1, w2, w3):
        v = from_words(w0, w1, w2, w3)
        assert [word(v, i) for i in range(4)] == [w0, w1, w2, w3]

    @given(regval)
    def test_bytes_roundtrip(self, v):
        assert from_bytes16(to_bytes16(v)) == v


class TestArithmeticOracle:
    @given(regval, regval)
    def test_a_is_per_word_modular_add(self, a, b):
        out = run_op("a", a=a, b=b)
        for i in range(4):
            assert word(out, i) == (word(a, i) + word(b, i)) & 0xFFFFFFFF

    @given(regval, regval)
    def test_sf_is_per_word_subtract_from(self, a, b):
        out = run_op("sf", a=a, b=b)
        for i in range(4):
            assert word(out, i) == (word(b, i) - word(a, i)) & 0xFFFFFFFF

    @given(regval, regval)
    def test_logicals_oracle(self, a, b):
        assert run_op("and_", a=a, b=b) == a & b
        assert run_op("or_", a=a, b=b) == a | b
        assert run_op("xor_", a=a, b=b) == a ^ b
        assert run_op("andc", a=a, b=b) == a & ~b & ((1 << 128) - 1)

    @given(regval, st.integers(min_value=0, max_value=31))
    def test_shli_oracle(self, a, amt):
        out = run_op("shli", a=a, imm=amt)
        for i in range(4):
            assert word(out, i) == (word(a, i) << amt) & 0xFFFFFFFF

    @given(regval, st.integers(min_value=0, max_value=31))
    def test_rotmi_oracle(self, a, amt):
        out = run_op("rotmi", a=a, imm=amt)
        for i in range(4):
            assert word(out, i) == word(a, i) >> amt

    @given(regval, st.integers(min_value=0, max_value=31))
    def test_roti_oracle(self, a, amt):
        out = run_op("roti", a=a, imm=amt)
        for i in range(4):
            w = word(a, i)
            expected = ((w << amt) | (w >> (32 - amt))) & 0xFFFFFFFF \
                if amt else w
            assert word(out, i) == expected


class TestQuadwordOracle:
    @given(regval, st.integers(min_value=0, max_value=31))
    def test_rotqbyi_oracle(self, a, amt):
        out = run_op("rotqbyi", a=a, imm=amt)
        data = to_bytes16(a)
        expected = bytes(data[(i + amt) % 16] for i in range(16))
        assert to_bytes16(out) == expected

    @given(regval, word32)
    def test_rotqby_uses_mod_16(self, a, count):
        b = from_words(count, 0, 0, 0)
        out = run_op("rotqby", a=a, b=b)
        data = to_bytes16(a)
        amt = count % 16
        expected = bytes(data[(i + amt) % 16] for i in range(16))
        assert to_bytes16(out) == expected

    @given(regval, regval, st.lists(st.integers(min_value=0, max_value=31),
                                    min_size=16, max_size=16))
    def test_shufb_selector_oracle(self, a, b, pattern):
        pat = from_bytes16(bytes(pattern))
        out = run_op("shufb", a=a, b=b, c=pat)
        src = to_bytes16(a) + to_bytes16(b)
        assert to_bytes16(out) == bytes(src[p] for p in pattern)

    @given(regval)
    def test_orx_oracle(self, a):
        out = run_op("orx", a=a)
        expected = word(a, 0) | word(a, 1) | word(a, 2) | word(a, 3)
        assert word(out, 0) == expected
        assert word(out, 1) == word(out, 2) == word(out, 3) == 0


class TestMemoryOracle:
    @given(st.binary(min_size=16, max_size=16),
           st.integers(min_value=0, max_value=1000))
    def test_store_load_roundtrip(self, payload, slot):
        spu = SPU(LocalStore())
        addr = slot * 16
        spu.regs[1] = from_words(addr, 0, 0, 0)
        spu.regs[2] = from_bytes16(payload)
        st_inst = Instruction("stqd", rt=2, ra=1, imm=0)
        st_inst.spec.execute(spu, st_inst)
        ld_inst = Instruction("lqd", rt=3, ra=1, imm=0)
        ld_inst.spec.execute(spu, ld_inst)
        assert spu.regs[3] == spu.regs[2]

    @given(st.integers(min_value=0, max_value=0x3FFF0))
    def test_lqx_force_alignment(self, addr):
        spu = SPU(LocalStore())
        marker = bytes(range(16))
        aligned = addr & ~0xF
        spu.local_store.write(aligned, marker)
        spu.regs[1] = from_words(addr, 0, 0, 0)
        spu.regs[2] = 0
        inst = Instruction("lqx", rt=3, ra=1, rb=2)
        inst.spec.execute(spu, inst)
        assert to_bytes16(spu.regs[3]) == marker
