"""Functional semantics of the SPU instruction subset."""

import pytest

from repro.cell.isa import (
    Instruction,
    MASK128,
    from_bytes16,
    from_words,
    splat_word,
    to_bytes16,
    word,
)
from repro.cell.local_store import LocalStore
from repro.cell.spu import SPU


def exec_one(spu, op, **kwargs):
    inst = Instruction(op, **kwargs)
    inst.spec.execute(spu, inst)
    return inst


@pytest.fixture
def spu():
    return SPU(LocalStore())


# -- register value helpers ---------------------------------------------------


class TestValueHelpers:
    def test_word_extraction(self):
        v = from_words(0x11111111, 0x22222222, 0x33333333, 0x44444444)
        assert word(v, 0) == 0x11111111
        assert word(v, 1) == 0x22222222
        assert word(v, 2) == 0x33333333
        assert word(v, 3) == 0x44444444

    def test_from_words_masks(self):
        v = from_words(0x1_FFFF_FFFF)  # overflowing word is masked
        assert word(v, 0) == 0xFFFFFFFF

    def test_splat(self):
        v = splat_word(0xDEADBEEF)
        assert all(word(v, i) == 0xDEADBEEF for i in range(4))

    def test_bytes_roundtrip(self):
        data = bytes(range(16))
        assert to_bytes16(from_bytes16(data)) == data

    def test_bytes16_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            from_bytes16(b"short")

    def test_byte0_is_most_significant(self):
        v = from_bytes16(bytes([0xAB] + [0] * 15))
        assert word(v, 0) == 0xAB000000


# -- immediate loads -----------------------------------------------------------


class TestImmediates:
    def test_il_sign_extends(self, spu):
        exec_one(spu, "il", rt=1, imm=-5 & 0xFFFF)
        assert word(spu.regs[1], 0) == 0xFFFFFFFB
        assert word(spu.regs[1], 3) == 0xFFFFFFFB

    def test_il_positive(self, spu):
        exec_one(spu, "il", rt=1, imm=1234)
        assert all(word(spu.regs[1], i) == 1234 for i in range(4))

    def test_ila_unsigned_18bit(self, spu):
        exec_one(spu, "ila", rt=1, imm=0x3FFFF)
        assert word(spu.regs[1], 0) == 0x3FFFF

    def test_ilhu_iohl_build_32bit(self, spu):
        exec_one(spu, "ilhu", rt=1, imm=0xDEAD)
        exec_one(spu, "iohl", rt=1, imm=0xBEEF)
        assert word(spu.regs[1], 0) == 0xDEADBEEF


# -- arithmetic and logicals ------------------------------------------------------


class TestArithmetic:
    def test_a_per_word(self, spu):
        spu.regs[1] = from_words(1, 2, 3, 0xFFFFFFFF)
        spu.regs[2] = from_words(10, 20, 30, 1)
        exec_one(spu, "a", rt=3, ra=1, rb=2)
        assert [word(spu.regs[3], i) for i in range(4)] == [11, 22, 33, 0]

    def test_ai_sign_extended(self, spu):
        spu.regs[1] = splat_word(100)
        exec_one(spu, "ai", rt=2, ra=1, imm=-1)
        assert word(spu.regs[2], 0) == 99

    def test_sf_subtract_from(self, spu):
        spu.regs[1] = splat_word(3)
        spu.regs[2] = splat_word(10)
        exec_one(spu, "sf", rt=3, ra=1, rb=2)  # rt = rb - ra
        assert word(spu.regs[3], 0) == 7

    def test_and_or_xor_andc(self, spu):
        spu.regs[1] = splat_word(0b1100)
        spu.regs[2] = splat_word(0b1010)
        exec_one(spu, "and_", rt=3, ra=1, rb=2)
        exec_one(spu, "or_", rt=4, ra=1, rb=2)
        exec_one(spu, "xor_", rt=5, ra=1, rb=2)
        exec_one(spu, "andc", rt=6, ra=1, rb=2)
        assert word(spu.regs[3], 0) == 0b1000
        assert word(spu.regs[4], 0) == 0b1110
        assert word(spu.regs[5], 0) == 0b0110
        assert word(spu.regs[6], 0) == 0b0100

    def test_andi_clears_flag_bit(self, spu):
        """The kernel's `andi rt, ra, -2` strips the final-state tag."""
        spu.regs[1] = splat_word(0x00012345)
        exec_one(spu, "andi", rt=2, ra=1, imm=-2)
        assert word(spu.regs[2], 0) == 0x00012344

    def test_andi_extracts_flag_bit(self, spu):
        spu.regs[1] = splat_word(0x00012345)
        exec_one(spu, "andi", rt=2, ra=1, imm=1)
        assert word(spu.regs[2], 0) == 1

    def test_andbi_per_byte(self, spu):
        spu.regs[1] = from_bytes16(bytes(range(16)))
        exec_one(spu, "andbi", rt=2, ra=1, imm=0x0E)
        assert to_bytes16(spu.regs[2]) == bytes(b & 0x0E for b in range(16))


class TestCompares:
    def test_ceq(self, spu):
        spu.regs[1] = from_words(5, 6, 7, 8)
        spu.regs[2] = from_words(5, 0, 7, 0)
        exec_one(spu, "ceq", rt=3, ra=1, rb=2)
        assert [word(spu.regs[3], i) for i in range(4)] == \
            [0xFFFFFFFF, 0, 0xFFFFFFFF, 0]

    def test_ceqi(self, spu):
        spu.regs[1] = from_words(5, 3, 5, 5)
        exec_one(spu, "ceqi", rt=2, ra=1, imm=5)
        assert word(spu.regs[2], 1) == 0

    def test_cgt_signed(self, spu):
        spu.regs[1] = from_words(1, 0xFFFFFFFF, 5, 0)   # 1, -1, 5, 0
        spu.regs[2] = from_words(0, 0, 5, 0xFFFFFFFF)   # 0, 0, 5, -1
        exec_one(spu, "cgt", rt=3, ra=1, rb=2)
        assert [word(spu.regs[3], i) for i in range(4)] == \
            [0xFFFFFFFF, 0, 0, 0xFFFFFFFF]

    def test_cgti(self, spu):
        spu.regs[1] = splat_word(4)
        exec_one(spu, "cgti", rt=2, ra=1, imm=3)
        assert word(spu.regs[2], 0) == 0xFFFFFFFF


class TestShifts:
    def test_shli(self, spu):
        spu.regs[1] = splat_word(0x13)
        exec_one(spu, "shli", rt=2, ra=1, imm=2)
        assert word(spu.regs[2], 0) == 0x4C

    def test_shli_large_amount_zeroes(self, spu):
        spu.regs[1] = splat_word(0xFFFFFFFF)
        exec_one(spu, "shli", rt=2, ra=1, imm=32)
        assert spu.regs[2] == 0

    def test_shli_packed_offsets_no_cross_byte_garbage(self, spu):
        """The Figure-4 trick: symbols < 32 shifted left 2 stay inside
        their byte lanes."""
        syms = bytes([31, 0, 17, 5] * 4)
        spu.regs[1] = from_bytes16(syms)
        exec_one(spu, "shli", rt=2, ra=1, imm=2)
        assert to_bytes16(spu.regs[2]) == bytes(s << 2 for s in syms)

    def test_rotmi_shifts_right(self, spu):
        spu.regs[1] = splat_word(0xAB000000)
        exec_one(spu, "rotmi", rt=2, ra=1, imm=24)
        assert word(spu.regs[2], 0) == 0xAB

    def test_roti_rotates(self, spu):
        spu.regs[1] = splat_word(0x80000001)
        exec_one(spu, "roti", rt=2, ra=1, imm=1)
        assert word(spu.regs[2], 0) == 0x00000003


# -- odd pipe: loads, stores, shuffles -----------------------------------------------


class TestLoadsStores:
    def test_lqd_aligned(self, spu):
        spu.local_store.write(0x100, bytes(range(16)))
        spu.regs[1] = splat_word(0x100)
        exec_one(spu, "lqd", rt=2, ra=1, imm=0)
        assert to_bytes16(spu.regs[2]) == bytes(range(16))

    def test_lqd_displacement(self, spu):
        spu.local_store.write(0x110, b"B" * 16)
        spu.regs[1] = splat_word(0x100)
        exec_one(spu, "lqd", rt=2, ra=1, imm=16)
        assert to_bytes16(spu.regs[2]) == b"B" * 16

    def test_lqx_force_aligns(self, spu):
        spu.local_store.write(0x100, bytes(range(16)))
        spu.regs[1] = splat_word(0x0FC)
        spu.regs[2] = splat_word(0x00B)  # 0xFC + 0xB = 0x107 -> 0x100
        exec_one(spu, "lqx", rt=3, ra=1, rb=2)
        assert to_bytes16(spu.regs[3]) == bytes(range(16))

    def test_stqd_roundtrip(self, spu):
        spu.regs[1] = splat_word(0x200)
        spu.regs[2] = from_bytes16(b"0123456789abcdef")
        exec_one(spu, "stqd", rt=2, ra=1, imm=0)
        assert spu.local_store.read(0x200, 16) == b"0123456789abcdef"

    def test_stqx(self, spu):
        spu.regs[1] = splat_word(0x200)
        spu.regs[2] = splat_word(0x40)
        spu.regs[3] = from_bytes16(b"X" * 16)
        exec_one(spu, "stqx", rt=3, ra=1, rb=2)
        assert spu.local_store.read(0x240, 16) == b"X" * 16


class TestQuadwordByteOps:
    def test_rotqbyi_moves_byte_i_to_front(self, spu):
        data = bytes(range(16))
        spu.regs[1] = from_bytes16(data)
        for i in range(16):
            exec_one(spu, "rotqbyi", rt=2, ra=1, imm=i)
            assert to_bytes16(spu.regs[2])[0] == i

    def test_rotqby_uses_preferred_slot_mod_16(self, spu):
        data = bytes(range(16))
        spu.regs[1] = from_bytes16(data)
        spu.regs[2] = splat_word(19)  # 19 mod 16 = 3
        exec_one(spu, "rotqby", rt=3, ra=1, rb=2)
        assert to_bytes16(spu.regs[3])[0] == 3

    def test_shufb_selects_from_both_sources(self, spu):
        spu.regs[1] = from_bytes16(bytes(range(16)))          # 0..15
        spu.regs[2] = from_bytes16(bytes(range(16, 32)))      # 16..31
        pattern = bytes([0x00, 0x10, 0x0F, 0x1F] + [0x80] * 12)
        spu.regs[3] = from_bytes16(pattern)
        exec_one(spu, "shufb", rt=4, ra=1, rb=2, rc=3)
        out = to_bytes16(spu.regs[4])
        assert out[:4] == bytes([0, 16, 15, 31])
        assert out[4:] == bytes(12)

    def test_shufb_special_constants(self, spu):
        spu.regs[1] = from_bytes16(b"\xaa" * 16)
        spu.regs[2] = from_bytes16(b"\xbb" * 16)
        pattern = bytes([0x80, 0xC0, 0xE0] + [0x00] * 13)
        spu.regs[3] = from_bytes16(pattern)
        exec_one(spu, "shufb", rt=4, ra=1, rb=2, rc=3)
        out = to_bytes16(spu.regs[4])
        assert out[0] == 0x00
        assert out[1] == 0xFF
        assert out[2] == 0x80

    def test_orx_reduces_words(self, spu):
        spu.regs[1] = from_words(0x1, 0x2, 0x4, 0x8)
        exec_one(spu, "orx", rt=2, ra=1)
        assert word(spu.regs[2], 0) == 0xF
        assert word(spu.regs[2], 1) == 0


class TestInstructionMetadata:
    def test_sources_include_store_data(self):
        inst = Instruction("stqd", rt=5, ra=1, imm=0)
        assert 5 in inst.sources()
        assert inst.destination() is None

    def test_sources_include_branch_condition(self):
        inst = Instruction("brnz", rt=7, target="x")
        assert 7 in inst.sources()

    def test_load_destination(self):
        inst = Instruction("lqd", rt=9, ra=1, imm=0)
        assert inst.destination() == 9

    def test_render_contains_opcode_and_registers(self):
        inst = Instruction("a", rt=3, ra=1, rb=2, comment="sum")
        text = inst.render()
        assert "a" in text and "r3" in text and "sum" in text
