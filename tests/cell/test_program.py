"""Assembler and program container."""

import pytest

from repro.cell.isa import EVEN, ODD
from repro.cell.program import Asm, AssemblyError


class TestAsmValidation:
    def test_register_out_of_range(self):
        asm = Asm()
        with pytest.raises(AssemblyError, match="out of range"):
            asm.il(128, 0)

    def test_duplicate_label(self):
        asm = Asm()
        asm.label("x")
        with pytest.raises(AssemblyError, match="duplicate"):
            asm.label("x")

    def test_unresolved_branch_target(self):
        asm = Asm()
        asm.br("nowhere")
        asm.stop()
        with pytest.raises(AssemblyError, match="unresolved"):
            asm.finish()

    def test_lqd_alignment_enforced(self):
        asm = Asm()
        with pytest.raises(AssemblyError, match="aligned"):
            asm.lqd(1, 2, 8)

    def test_stqd_alignment_enforced(self):
        asm = Asm()
        with pytest.raises(AssemblyError, match="aligned"):
            asm.stqd(1, 2, 24)


class TestHints:
    def test_hbr_marks_branches(self):
        asm = Asm()
        asm.hbr("loop")
        asm.label("loop")
        asm.il(1, 0)
        asm.brz(1, "loop")
        asm.stop()
        prog = asm.finish()
        branches = [i for i in prog.instructions if i.spec.is_branch]
        assert branches and all(b.hinted for b in branches)

    def test_unhinted_branch_stays_unhinted(self):
        asm = Asm()
        asm.label("loop")
        asm.il(1, 0)
        asm.brz(1, "loop")
        asm.stop()
        prog = asm.finish()
        branches = [i for i in prog.instructions if i.spec.is_branch]
        assert branches and not any(b.hinted for b in branches)


class TestProgramQueries:
    def _prog(self):
        asm = Asm()
        asm.il(1, 0)        # even
        asm.lnop()          # odd
        asm.a(2, 1, 1)      # even
        asm.lqd(3, 1, 0)    # odd
        asm.stop()          # even
        return asm.finish()

    def test_len_and_iter(self):
        prog = self._prog()
        assert len(prog) == 5
        assert len(list(prog)) == 5

    def test_registers_used(self):
        prog = self._prog()
        assert prog.registers_used() == 3  # r1, r2, r3

    def test_pipe_mix(self):
        mix = self._prog().pipe_mix()
        assert mix[EVEN] == 3
        assert mix[ODD] == 2

    def test_listing_contains_labels_and_pipes(self):
        asm = Asm()
        asm.label("entry")
        asm.il(1, 7, "seed")
        asm.stop()
        text = asm.finish().listing()
        assert "entry:" in text
        assert "[e]" in text
        assert "seed" in text

    def test_branch_targets_resolved_to_indices(self):
        asm = Asm()
        asm.label("top")
        asm.il(1, 0)
        asm.br("top")
        asm.stop()
        prog = asm.finish()
        br = prog.instructions[1]
        assert br.target_index == 0

    def test_unknown_opcode_rejected(self):
        from repro.cell.isa import Instruction
        asm = Asm()
        with pytest.raises(AssemblyError, match="unknown opcode"):
            asm.raw(Instruction("frobnicate"))
