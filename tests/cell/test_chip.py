"""EIB, PPE, SPE and the chip assembly."""

import pytest

from repro.cell.eib import EIB, EIB_PEAK
from repro.cell.memory import MainMemory
from repro.cell.ppe import PPE
from repro.cell.processor import CellProcessor, NUM_SPES
from repro.cell.spe import SPE
from repro.dfa import case_fold_32


class TestEIB:
    def test_peak_is_204_8_gbs(self):
        eib = EIB()
        assert eib.peak == pytest.approx(204.8e9)
        assert eib.peak == pytest.approx(EIB_PEAK)

    def test_ls_to_ls_faster_than_memory(self):
        eib = EIB()
        assert eib.ls_to_ls_seconds(16 * 1024) \
            < eib.memory_seconds(16 * 1024)

    def test_ring_sharing_beyond_eight_slots(self):
        eib = EIB()
        t8 = eib.ls_to_ls_seconds(4096, concurrent=8)
        t16 = eib.ls_to_ls_seconds(4096, concurrent=16)
        assert t8 == pytest.approx(eib.ls_to_ls_seconds(4096, concurrent=1))
        assert t16 == pytest.approx(2 * t8)

    def test_invalid_args(self):
        eib = EIB()
        with pytest.raises(ValueError):
            eib.ls_to_ls_seconds(0)
        with pytest.raises(ValueError):
            eib.ls_to_ls_seconds(64, concurrent=0)


class TestPPE:
    def test_fold_applies_table(self):
        ppe = PPE()
        fold = case_fold_32()
        out = ppe.fold(b"aAzZ@", fold.table)
        assert out == fold.fold_bytes(b"aAzZ@")

    def test_fold_rejects_bad_table(self):
        with pytest.raises(ValueError):
            PPE().fold(b"x", [0] * 10)

    def test_interleave_matches_core_function(self):
        from repro.core.interleave import interleave_streams
        streams = [bytes([i] * 8) for i in range(16)]
        assert PPE().interleave(streams) == interleave_streams(streams)

    def test_slice_input_overlap(self):
        ppe = PPE()
        data = bytes(range(100))
        slices = ppe.slice_input(data, parts=4, overlap=5)
        assert len(slices) == 4
        assert slices[0] == data[:25]
        assert slices[1] == data[20:50]   # 5 bytes of lead-in
        assert slices[3][-1] == data[-1]

    def test_slice_input_errors(self):
        ppe = PPE()
        with pytest.raises(ValueError):
            ppe.slice_input(b"abc", 0, 0)
        with pytest.raises(ValueError):
            ppe.slice_input(b"abc", 2, -1)

    def test_cost_model_and_can_feed(self):
        ppe = PPE()
        assert ppe.seconds_for(0) == 0
        assert ppe.seconds_for(12_800_000_000) == pytest.approx(1.0)
        # 4 B/cycle * 3.2 GHz * 8 = 102.4 Gbps >= one chip's 40.88.
        assert ppe.can_feed(40.88)
        assert not ppe.can_feed(200.0)


class TestChip:
    def test_has_eight_spes(self):
        chip = CellProcessor()
        assert len(chip.spes) == NUM_SPES == 8
        assert chip.spe(7).index == 7

    def test_spe_index_bounds(self):
        chip = CellProcessor()
        with pytest.raises(ValueError):
            chip.spe(8)
        with pytest.raises(ValueError):
            SPE(9, MainMemory(1 << 16))

    def test_spes_share_main_memory(self):
        chip = CellProcessor()
        chip.memory.write(0x1000, b"shared datum....")
        chip.spe(0).mfc.get(0, 0x1000, 16, tag=0)
        chip.spe(5).mfc.get(0, 0x1000, 16, tag=0)
        assert chip.spe(0).local_store.read(0, 16) == \
            chip.spe(5).local_store.read(0, 16) == b"shared datum...."
