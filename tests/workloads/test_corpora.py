"""Structured corpora generators."""

import pytest

from repro.dfa import case_fold_32
from repro.workloads import english_like, http_requests, log_lines


class TestEnglishLike:
    def test_length_exact(self):
        assert len(english_like(500, seed=1)) == 500

    def test_deterministic(self):
        assert english_like(200, seed=2) == english_like(200, seed=2)
        assert english_like(200, seed=2) != english_like(200, seed=3)

    def test_mostly_letters_and_spaces(self):
        text = english_like(2000, seed=4)
        letters = sum(1 for b in text
                      if chr(b).isalpha() or b == ord(" "))
        assert letters == len(text)

    def test_exercises_fold_letter_buckets(self):
        """Structured text visits many distinct folded symbols, unlike
        payloads of unmapped bytes which all bucket to 0."""
        fold = case_fold_32()
        folded = fold.fold_bytes(english_like(2000, seed=5))
        assert len(set(folded)) > 20

    def test_zero_length(self):
        assert english_like(0) == b""

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            english_like(-1)


class TestHttpRequests:
    def test_count_and_shape(self):
        reqs = http_requests(10, seed=6)
        assert len(reqs) == 10
        for r in reqs:
            assert r.split(b" ", 2)[1].startswith(b"/")
            assert b"HTTP/1.1" in r
            assert b"Host:" in r

    def test_injection_appears(self):
        marker = b"EVIL_SIGNATURE_XYZ"
        reqs = http_requests(60, seed=7, inject=[marker])
        assert any(marker in r for r in reqs)

    def test_no_injection_by_default(self):
        reqs = http_requests(30, seed=8)
        assert not any(b"X-Data:" in r for r in reqs)

    def test_deterministic(self):
        assert http_requests(5, seed=9) == http_requests(5, seed=9)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            http_requests(0)


class TestLogLines:
    def test_line_count(self):
        text = log_lines(25, seed=10)
        assert text.count(b"\n") == 25

    def test_timestamps_monotone(self):
        text = log_lines(20, seed=11)
        stamps = [int(line.split(b" ", 1)[0])
                  for line in text.splitlines()]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == len(stamps)

    def test_levels_present(self):
        text = log_lines(50, seed=12)
        assert any(level in text
                   for level in (b"INFO", b"WARN", b"ERROR", b"DEBUG"))

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            log_lines(0)


class TestCorporaIntegration:
    def test_matcher_finds_injected_signatures_in_http(self):
        from repro.core.matcher import CellStringMatcher
        signature = b"UNION SELECT"
        reqs = http_requests(80, seed=13, inject=[signature])
        matcher = CellStringMatcher([signature])
        hits = sum(matcher.scan(r).total_matches for r in reqs)
        expected = sum(1 for r in reqs if signature in r)
        assert hits >= expected >= 1
