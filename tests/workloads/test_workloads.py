"""Workload generators: determinism, ranges, planted-match honesty."""

import numpy as np
import pytest

from repro.dfa import AhoCorasick, case_fold_32
from repro.workloads import (
    adversarial_payload,
    ascii_keywords,
    http_payload,
    packet_stream,
    plant_matches,
    prefix_heavy_signatures,
    random_payload,
    random_signatures,
    signatures_for_states,
    streams_for_tile,
    tenant_traffic,
)
from repro.dfa.partition import trie_states


class TestRandomSignatures:
    def test_deterministic_under_seed(self):
        assert random_signatures(10, seed=1) == random_signatures(10, seed=1)
        assert random_signatures(10, seed=1) != random_signatures(10, seed=2)

    def test_distinct_and_sized(self):
        sigs = random_signatures(50, 4, 9, seed=3)
        assert len(set(sigs)) == 50
        assert all(4 <= len(s) <= 9 for s in sigs)

    def test_symbols_in_alphabet_avoiding_zero(self):
        sigs = random_signatures(30, seed=4)
        for s in sigs:
            assert all(1 <= b < 32 for b in s)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            random_signatures(0)
        with pytest.raises(ValueError):
            random_signatures(5, min_len=0)
        with pytest.raises(ValueError):
            random_signatures(5, min_len=9, max_len=3)

    def test_impossible_request_detected(self):
        # 2-symbol alphabet minus avoided symbol: only 1 value -> at most
        # max_len distinct patterns of length 1..1.
        with pytest.raises(ValueError, match="distinct"):
            random_signatures(10, 1, 1, alphabet_size=2, seed=0)


class TestSignaturesForStates:
    @pytest.mark.parametrize("target", [50, 200, 800, 1600])
    def test_state_count_near_target(self, target):
        sigs = signatures_for_states(target, seed=5)
        states = trie_states(sigs)
        assert target <= states <= target + 12  # overshoot < max_len

    def test_rejects_tiny_target(self):
        with pytest.raises(ValueError):
            signatures_for_states(1)


class TestPrefixHeavy:
    def test_sharing_reduces_states(self):
        heavy = prefix_heavy_signatures(40, seed=6)
        flat = random_signatures(40, 10, 10, seed=6)
        assert trie_states(heavy) < trie_states(flat)

    def test_count_and_distinct(self):
        sigs = prefix_heavy_signatures(25, seed=7)
        assert len(set(sigs)) == 25


class TestAsciiKeywords:
    def test_foldable(self):
        fold = case_fold_32()
        words = ascii_keywords(20, seed=8)
        for w in words:
            folded = fold.fold_bytes(w)
            assert all(b < 32 for b in folded)

    def test_distinct(self):
        words = ascii_keywords(100, seed=9)
        assert len(set(words)) == 100


class TestTraffic:
    def test_random_payload_range(self):
        data = random_payload(1000, alphabet_size=32, seed=1)
        assert len(data) == 1000
        assert max(data) < 32

    def test_plant_matches_actually_plants(self):
        patterns = random_signatures(5, 3, 5, seed=2)
        payload = plant_matches(random_payload(2000, seed=3), patterns, 10,
                                seed=4)
        ac = AhoCorasick(patterns, 32)
        assert len(ac.find_all(payload)) >= 1

    def test_plant_matches_preserves_length(self):
        patterns = random_signatures(3, 3, 4, seed=5)
        payload = random_payload(500, seed=6)
        planted = plant_matches(payload, patterns, 5, seed=7)
        assert len(planted) == len(payload)

    def test_plant_matches_errors(self):
        with pytest.raises(ValueError):
            plant_matches(b"xy", [bytes([1, 2, 3])], 1)
        with pytest.raises(ValueError):
            plant_matches(b"xyz", [], 1)

    def test_packet_stream_shapes(self):
        patterns = random_signatures(4, 3, 5, seed=8)
        packets = packet_stream(30, 64, 256, patterns=patterns,
                                match_fraction=0.5, seed=9)
        assert len(packets) == 30
        assert all(64 <= len(p) <= 256 for p in packets)

    def test_packet_stream_deterministic(self):
        a = packet_stream(5, seed=10)
        b = packet_stream(5, seed=10)
        assert a == b

    def test_streams_for_tile(self):
        patterns = random_signatures(4, 3, 5, seed=11)
        streams = streams_for_tile(96, patterns, seed=12)
        assert len(streams) == 16
        assert all(len(s) == 96 for s in streams)


class TestAdversarial:
    def test_never_actually_matches(self):
        pattern = bytes([1, 2, 3, 4, 5])
        payload = adversarial_payload(pattern, 1000)
        ac = AhoCorasick([pattern], 32)
        assert ac.find_all(payload) == []

    def test_length_exact(self):
        assert len(adversarial_payload(bytes([1, 2, 3]), 100)) == 100

    def test_mismatch_at_start_variant(self):
        pattern = bytes([1, 2, 3])
        payload = adversarial_payload(pattern, 99, mismatch_at_end=False)
        assert AhoCorasick([pattern], 32).find_all(payload) == []

    def test_errors(self):
        with pytest.raises(ValueError):
            adversarial_payload(b"", 10)
        with pytest.raises(ValueError):
            adversarial_payload(b"ab", 0)


class TestTenantTraffic:
    TENANTS = ["acme", "beta"]
    ATTACKS = {"acme": [b"EVILSIG", b"BADBOT"]}

    def _scenario(self, seed=7, **kwargs):
        defaults = dict(flows_per_tenant=4,
                        attack_patterns=self.ATTACKS,
                        attack_fraction=0.25, seed=seed)
        defaults.update(kwargs)
        return tenant_traffic(self.TENANTS, 120, **defaults)

    def test_deterministic_under_seed(self):
        a = self._scenario()
        b = self._scenario()
        assert [(p.tenant, p.flow, p.payload, p.attacks)
                for p in a] == \
            [(p.tenant, p.flow, p.payload, p.attacks) for p in b]
        c = self._scenario(seed=8)
        assert [p.payload for p in a] != [p.payload for p in c]

    def test_http_shape(self):
        rng = np.random.default_rng(3)
        payload = http_payload(rng, host=b"t.example")
        line, rest = payload.split(b"\r\n", 1)
        method, path, version = line.split(b" ")
        assert method in (b"GET", b"POST", b"PUT", b"HEAD")
        assert version == b"HTTP/1.1"
        assert b"Host: t.example" in rest
        assert b"\r\n\r\n" in rest

    def test_attacks_only_for_configured_tenants(self):
        packets = self._scenario()
        assert {p.tenant for p in packets} == set(self.TENANTS)
        attacked = [p for p in packets if p.attacks]
        assert attacked, "attack_fraction=0.25 planted nothing"
        assert all(p.tenant == "acme" for p in attacked)

    def test_planted_attacks_are_ground_truth(self):
        ac = AhoCorasick(self.ATTACKS["acme"], 256)
        for p in self._scenario():
            found = ac.find_all(p.payload)
            if p.attacks:
                assert found, "planted attack not locatable"

    def test_flow_ids_scoped_to_tenant(self):
        for p in self._scenario():
            assert p.flow.startswith(f"{p.tenant}-flow-")

    def test_validation(self):
        with pytest.raises(ValueError):
            tenant_traffic([], 10)
        with pytest.raises(ValueError):
            tenant_traffic(["t"], 0)
        with pytest.raises(ValueError):
            tenant_traffic(["t"], 10, attack_fraction=1.5)
        with pytest.raises(ValueError):
            tenant_traffic(["t"], 10, flows_per_tenant=0)
