"""Shared fixtures: folded dictionaries, planted traffic, small tiles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dfa import AhoCorasick, case_fold_32
from repro.workloads import plant_matches, random_payload, random_signatures


@pytest.fixture(scope="session")
def fold():
    return case_fold_32()


@pytest.fixture(scope="session")
def small_patterns():
    """A handful of distinct folded patterns (symbols 1..31)."""
    return random_signatures(8, 3, 7, seed=1234)


@pytest.fixture(scope="session")
def small_ac(small_patterns):
    return AhoCorasick(small_patterns, 32)


@pytest.fixture(scope="session")
def small_dfa(small_ac):
    return small_ac.to_dfa()


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def planted_block(small_patterns):
    """4 KB folded payload with ~20 planted dictionary hits."""
    payload = random_payload(4096, seed=7)
    return plant_matches(payload, small_patterns, 20, seed=8)


def make_streams(patterns, length=192, n=16, seed=0):
    """Equal-length folded streams with a few planted matches each."""
    rng = np.random.default_rng(seed)
    streams = []
    for _ in range(n):
        s = rng.integers(0, 32, length, dtype=np.uint8).tobytes()
        s = plant_matches(s, patterns, 3, seed=int(rng.integers(2 ** 31)))
        streams.append(s)
    return streams
