"""Alphabet folding (the paper's 256 -> 32 data reduction)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.dfa.alphabet import (
    FoldMap,
    case_fold_32,
    fold_from_classes,
    identity_fold,
)


class TestCaseFold32:
    def setup_method(self):
        self.fold = case_fold_32()

    def test_width_is_32(self):
        assert self.fold.width == 32

    def test_paper_range_maps_directly(self):
        """0x40..0x5F ('@', A-Z, '[', '\\', ']', '^', '_') -> 0..31."""
        for b in range(0x40, 0x60):
            assert self.fold.fold_byte(b) == b - 0x40

    def test_lowercase_folds_onto_uppercase(self):
        for c in range(ord("a"), ord("z") + 1):
            upper = c - 0x20
            assert self.fold.fold_byte(c) == self.fold.fold_byte(upper)

    def test_case_insensitive_end_to_end(self):
        assert self.fold.fold_bytes(b"ViRuS") == self.fold.fold_bytes(
            b"virus") == self.fold.fold_bytes(b"VIRUS")

    def test_other_bytes_bucket_to_zero(self):
        assert self.fold.fold_byte(0x00) == 0
        assert self.fold.fold_byte(ord("0")) == 0
        assert self.fold.fold_byte(0xFF) == 0

    def test_collisions_exist_by_design(self):
        assert self.fold.collision_count() > 0

    def test_preimage_of_letter(self):
        pre = self.fold.preimage(ord("A") - 0x40)
        assert ord("A") in pre and ord("a") in pre

    def test_fold_symbols_matches_fold_bytes(self):
        data = bytes(range(256))
        arr = self.fold.fold_symbols(data)
        assert arr.tobytes() == self.fold.fold_bytes(data)


class TestIdentityFold:
    def test_full_width_is_identity(self):
        fold = identity_fold()
        assert fold.is_identity()
        data = bytes(range(256))
        assert fold.fold_bytes(data) == data

    def test_narrow_width_buckets_high_bytes(self):
        fold = identity_fold(16)
        assert fold.fold_byte(10) == 10
        assert fold.fold_byte(200) == 0
        assert not fold.is_identity()


class TestFoldFromClasses:
    def test_explicit_classes(self):
        fold = fold_from_classes([[0, 1], [2], [3, 4, 5]])
        assert fold.width == 3
        assert fold.fold_byte(0) == 0
        assert fold.fold_byte(4) == 2
        assert fold.fold_byte(99) == 0  # default

    def test_overlapping_classes_rejected(self):
        with pytest.raises(ValueError, match="assigned to classes"):
            fold_from_classes([[1], [1]])

    def test_byte_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            fold_from_classes([[256]])

    def test_default_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            fold_from_classes([[1]], default=5)

    def test_empty_classes_rejected(self):
        with pytest.raises(ValueError):
            fold_from_classes([])


class TestFoldMapValidation:
    def test_wrong_table_size(self):
        with pytest.raises(ValueError, match="256"):
            FoldMap(tuple([0] * 100), 32)

    def test_symbol_out_of_width(self):
        table = [0] * 256
        table[5] = 40
        with pytest.raises(ValueError):
            FoldMap(tuple(table), 32)

    def test_bad_width(self):
        with pytest.raises(ValueError):
            FoldMap(tuple([0] * 256), 0)


class TestFoldProperties:
    @given(st.binary(min_size=0, max_size=512))
    def test_output_always_within_width(self, data):
        fold = case_fold_32()
        out = fold.fold_bytes(data)
        assert all(b < 32 for b in out)

    @given(st.binary(min_size=0, max_size=256))
    def test_fold_is_idempotent_on_range(self, data):
        """Folding folded output changes nothing for symbols that map to
        themselves... (symbols 0..31 all live in 0x00..0x1F, which the
        case fold buckets to 0 — so instead check determinism)."""
        fold = case_fold_32()
        assert fold.fold_bytes(data) == fold.fold_bytes(data)

    @given(st.integers(min_value=1, max_value=256))
    def test_identity_fold_table_is_consistent(self, width):
        fold = identity_fold(width)
        assert len(fold.table) == 256
        assert max(fold.table) < width


class TestNpTableCache:
    def test_cache_survives_id_reuse(self):
        """Regression: the numpy table cache must be per instance, not
        keyed by id() (recycled ids once returned a stale wide table)."""
        import gc
        wide = identity_fold(256)
        _ = wide.np_table
        del wide
        gc.collect()
        narrow = case_fold_32()
        table = narrow.np_table
        assert table.max() < 32
        assert len(table) == 256

    def test_distinct_instances_distinct_tables(self):
        a = identity_fold(256)
        b = case_fold_32()
        assert a.np_table is not b.np_table
        assert a.np_table[200] == 200
        assert b.np_table[200] == 0
