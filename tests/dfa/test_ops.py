"""DFA algebra: union, intersection, difference, complement."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dfa import AhoCorasick, DFAError, build_dfa
from repro.dfa.ops import complement, difference, intersection, product, \
    union
from repro.workloads import random_payload


def dfa_for(patterns):
    return build_dfa(patterns, 32)


A = dfa_for([bytes([1, 2])])
B = dfa_for([bytes([3, 4]), bytes([2, 3])])


class TestUnion:
    def test_counts_add_up(self):
        text = bytes([1, 2, 3, 4, 0, 2, 3])
        u = union(A, B)
        # union's final entries: positions where either side is final.
        a_trace = A.state_trace(text)
        b_trace = B.state_trace(text)
        expected = sum(1 for sa, sb in zip(a_trace, b_trace)
                       if A.final_mask[sa] or B.final_mask[sb])
        assert u.count_matches(text) == expected

    def test_outputs_report_both_sides_with_shifted_ids(self):
        u = union(A, B)
        events = u.match_events(bytes([1, 2, 3]))
        ids = {e.pattern for e in events}
        assert 0 in ids         # A's pattern 0 ([1,2])
        assert 2 in ids         # B's pattern 1 ([2,3]) shifted by 1

    def test_union_equals_joint_dictionary(self):
        """union(A, B) accepts exactly like one AC DFA over A∪B."""
        joint = dfa_for([bytes([1, 2]), bytes([3, 4]), bytes([2, 3])])
        assert union(A, B, minimal=True).equivalent_to(joint)

    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=0, max_size=300).map(
        lambda b: bytes(x % 32 for x in b)))
    def test_union_final_entries_property(self, text):
        u = union(A, B)
        ta, tb = A.state_trace(text), B.state_trace(text)
        expected = sum(1 for sa, sb in zip(ta, tb)
                       if A.final_mask[sa] or B.final_mask[sb])
        assert u.count_matches(text) == expected


class TestIntersection:
    def test_simultaneous_finality(self):
        # A final after ..1,2 ; B final after ..2,3 — never simultaneous
        # unless a position ends both [1,2] and ([2,3] or [3,4]).
        inter = intersection(A, B)
        assert inter.count_matches(bytes([1, 2, 3, 4])) == 0

    def test_nonempty_intersection(self):
        x = dfa_for([bytes([5])])
        y = dfa_for([bytes([4, 5]), bytes([6])])
        inter = intersection(x, y)
        # position ending '5' preceded by '4' is final in both.
        assert inter.count_matches(bytes([4, 5])) == 1
        assert inter.count_matches(bytes([0, 5])) == 0

    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=0, max_size=300).map(
        lambda b: bytes(x % 32 for x in b)))
    def test_intersection_property(self, text):
        inter = intersection(A, B)
        ta, tb = A.state_trace(text), B.state_trace(text)
        expected = sum(1 for sa, sb in zip(ta, tb)
                       if A.final_mask[sa] and B.final_mask[sb])
        assert inter.count_matches(text) == expected


class TestDifference:
    def test_whitelisting(self):
        """Alert on [1,2] unless it is part of whitelisted [1,2,9]... here:
        positions final in A but not in W."""
        w = dfa_for([bytes([2])])   # whitelists every '2' end position
        diff = difference(A, w)
        # every end of [1,2] also ends '2' -> nothing remains
        assert diff.count_matches(bytes([1, 2, 1, 2])) == 0

    def test_partial_whitelist(self):
        x = dfa_for([bytes([1]), bytes([2])])
        w = dfa_for([bytes([2])])
        diff = difference(x, w)
        assert diff.count_matches(bytes([1, 2, 1])) == 2  # only the 1s


class TestComplement:
    def test_flips_finality(self):
        c = complement(A)
        text = bytes([1, 2, 0])
        assert A.count_matches(text) + c.count_matches(text) == len(text)

    def test_double_complement_is_identity_language(self):
        cc = complement(complement(A))
        assert cc.equivalent_to(A)

    def test_outputs_dropped(self):
        assert complement(A).outputs == {}


class TestProductMechanics:
    def test_alphabet_mismatch_rejected(self):
        with pytest.raises(DFAError, match="alphabet"):
            union(A, build_dfa([bytes([1])], 16))

    def test_reachable_only(self):
        """Product states = reachable pairs, not the full cross product."""
        u = union(A, B)
        assert u.num_states <= A.num_states * B.num_states

    def test_minimal_flag_shrinks(self):
        raw = union(A, B, minimal=False)
        small = union(A, B, minimal=True)
        assert small.num_states <= raw.num_states
        assert small.equivalent_to(raw)

    def test_custom_rule(self):
        xor = product(A, B, lambda fa, fb: fa != fb)
        text = bytes([1, 2, 3])
        ta, tb = A.state_trace(text), B.state_trace(text)
        expected = sum(1 for sa, sb in zip(ta, tb)
                       if bool(A.final_mask[sa]) != bool(B.final_mask[sb]))
        assert xor.count_matches(text) == expected
