"""Aho–Corasick construction and search."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import NaiveMatcher
from repro.dfa import AhoCorasick, DFAError, build_dfa


def sym_pattern(min_size=1, max_size=6):
    return st.binary(min_size=min_size, max_size=max_size).map(
        lambda b: bytes(x % 31 + 1 for x in b))


class TestConstruction:
    def test_state_count_equals_trie_nodes(self):
        ac = AhoCorasick([bytes([1, 2, 3]), bytes([1, 2, 4])], 32)
        # root + shared (1,2) + two leaves = 5
        assert ac.num_states == 5

    def test_outputs_merged_through_failure_links(self):
        """'AB' ends inside 'XAB', so reaching XAB's leaf must report
        both patterns."""
        ac = AhoCorasick([bytes([5, 1, 2]), bytes([1, 2])], 32)
        events = ac.find_all(bytes([5, 1, 2]))
        assert {(e.end, e.pattern) for e in events} == {(3, 0), (3, 1)}

    def test_rejects_empty_dictionary(self):
        with pytest.raises(DFAError):
            AhoCorasick([], 32)

    def test_rejects_empty_pattern(self):
        with pytest.raises(DFAError, match="empty"):
            AhoCorasick([b""], 32)

    def test_rejects_symbol_outside_alphabet(self):
        with pytest.raises(DFAError, match="fold"):
            AhoCorasick([bytes([40])], 32)

    def test_rejects_bad_alphabet(self):
        with pytest.raises(DFAError):
            AhoCorasick([bytes([1])], 0)

    def test_max_pattern_length(self):
        ac = AhoCorasick([bytes([1]), bytes([1, 2, 3])], 32)
        assert ac.max_pattern_length == 3


class TestSearch:
    def test_overlapping_occurrences(self):
        """Pattern 'AA' in 'AAAA' occurs 3 times."""
        ac = AhoCorasick([bytes([1, 1])], 32)
        assert len(ac.find_all(bytes([1, 1, 1, 1]))) == 3

    def test_find_all_rejects_bad_symbol(self):
        ac = AhoCorasick([bytes([1])], 4)
        with pytest.raises(DFAError, match="outside alphabet"):
            ac.find_all(bytes([9]))

    def test_count_final_entries_vs_events(self):
        """Counting semantics (+1 per final entry) can differ from the
        occurrence count when several patterns end at one position."""
        pats = [bytes([5, 1, 2]), bytes([1, 2])]
        ac = AhoCorasick(pats, 32)
        text = bytes([5, 1, 2])
        assert len(ac.find_all(text)) == 2
        assert ac.count_final_entries(text) == 1

    @settings(max_examples=60, deadline=None)
    @given(st.lists(sym_pattern(), min_size=1, max_size=6, unique=True),
           st.binary(min_size=0, max_size=200).map(
               lambda b: bytes(x % 32 for x in b)))
    def test_find_all_matches_naive(self, patterns, text):
        ac = AhoCorasick(patterns, 32)
        naive = NaiveMatcher(patterns)
        # Dedup: identical occurrence lists require pattern lists without
        # duplicates that alias after the unique constraint (bytes equal).
        assert ac.find_all(text) == naive.find_all(text)


class TestToDFA:
    def test_dfa_count_matches_final_entries(self):
        pats = [bytes([1, 2]), bytes([3])]
        ac = AhoCorasick(pats, 32)
        dfa = ac.to_dfa()
        text = bytes([1, 2, 3, 1, 2])
        assert dfa.count_matches(text) == ac.count_final_entries(text)

    def test_dfa_outputs_preserved(self):
        pats = [bytes([1, 2])]
        dfa = build_dfa(pats, 32)
        events = dfa.match_events(bytes([0, 1, 2]))
        assert [(e.end, e.pattern) for e in events] == [(3, 0)]

    def test_dfa_is_complete(self):
        dfa = build_dfa([bytes([1, 2, 3])], 32)
        assert dfa.transitions.shape == (dfa.num_states, 32)
        assert dfa.transitions.min() >= 0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(sym_pattern(), min_size=1, max_size=5, unique=True),
           st.binary(min_size=0, max_size=120).map(
               lambda b: bytes(x % 32 for x in b)))
    def test_dfa_events_match_ac_events(self, patterns, text):
        ac = AhoCorasick(patterns, 32)
        dfa = ac.to_dfa()
        assert dfa.match_events(text) == ac.find_all(text)
