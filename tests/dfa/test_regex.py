"""Regex pipeline: parser, Thompson NFA, determinization, minimization."""

import re

import pytest
from hypothesis import given, settings, strategies as st

from repro.dfa.alphabet import case_fold_32, identity_fold
from repro.dfa.regex import (
    RegexError,
    compile_patterns,
    compile_regex,
    determinize,
    minimize,
    parse,
)
from repro.dfa.regex.nfa import build_nfa, combine
from repro.dfa.regex.parser import Alt, Concat, Empty, Repeat, SymbolSet


FOLD = identity_fold(128)  # ASCII-transparent fold for re comparison


class TestParser:
    def test_literal_concat(self):
        ast = parse("abc", FOLD)
        assert isinstance(ast, Concat)
        assert len(ast.parts) == 3

    def test_alternation(self):
        ast = parse("a|b|c", FOLD)
        assert isinstance(ast, Alt)
        assert len(ast.options) == 3

    def test_quantifiers(self):
        for pat, lo, hi in [("a*", 0, None), ("a+", 1, None),
                            ("a?", 0, 1), ("a{3}", 3, 3),
                            ("a{2,}", 2, None), ("a{2,5}", 2, 5)]:
            ast = parse(pat, FOLD)
            assert isinstance(ast, Repeat)
            assert (ast.lo, ast.hi) == (lo, hi)

    def test_char_class_range(self):
        ast = parse("[a-c]", FOLD)
        assert ast.symbols == frozenset({ord("a"), ord("b"), ord("c")})

    def test_negated_class(self):
        ast = parse("[^a]", FOLD)
        assert ord("a") not in ast.symbols
        assert ord("b") in ast.symbols

    def test_dot_is_full_alphabet(self):
        ast = parse(".", FOLD)
        assert len(ast.symbols) == FOLD.width

    def test_escapes(self):
        assert parse(r"\x41", FOLD).symbols == frozenset({0x41})
        assert ord("5") in parse(r"\d", FOLD).symbols
        assert ord("_") in parse(r"\w", FOLD).symbols
        assert ord(" ") in parse(r"\s", FOLD).symbols
        assert parse(r"\.", FOLD).symbols == frozenset({ord(".")})

    def test_empty_pattern_is_epsilon(self):
        assert isinstance(parse("", FOLD), Empty)

    def test_class_folding(self):
        """[a-c] over the case fold collapses onto uppercase symbols."""
        fold = case_fold_32()
        ast = parse("[a-c]", fold)
        expected = {fold.fold_byte(ord(c)) for c in "abc"}
        assert ast.symbols == frozenset(expected)

    @pytest.mark.parametrize("bad", [
        "a{2,1}", "(", ")", "a)", "[", "[]", "*a", "|*", "a{", r"\q",
        r"\xZZ", "[z-a]",
    ])
    def test_malformed_patterns_rejected(self, bad):
        with pytest.raises(RegexError):
            parse(bad, FOLD)


class TestCompileSemantics:
    def count_re(self, pattern, text):
        """Occurrence count with Python re (overlapping end positions)."""
        count = 0
        for i in range(len(text) + 1):
            m = re.match(f"(?:{pattern})$", text[:i], flags=0)
            # Count end positions where some suffix matches: emulate the
            # unanchored acceptor: final at position i iff any substring
            # ending at i matches.
            for j in range(i + 1):
                if re.fullmatch(pattern, text[j:i]):
                    count += 1
                    break
        return count

    @pytest.mark.parametrize("pattern,text,expected", [
        ("AB", "ZABAB", 2),
        ("A+B", "AAABxAB", 2),
        ("A(B|C)D", "ABDxACD", 2),
        ("A.C", "ABCxAZC", 2),
        ("AB?C", "ACxABC", 2),
        ("A{2,3}", "AAAA", 3),      # ends at 2,3,4
    ])
    def test_known_counts(self, pattern, text, expected):
        dfa = compile_regex(pattern, FOLD)
        assert dfa.count_matches(text.encode()) == expected

    def test_unanchored_scanner_matches_anywhere(self):
        dfa = compile_regex("XY", FOLD)
        assert dfa.count_matches(b"aaXYbb") == 1

    def test_anchored_mode(self):
        dfa = compile_regex("AB", FOLD, unanchored=False)
        assert dfa.count_matches(b"AB") == 1
        assert dfa.count_matches(b"ZAB") == 0

    @settings(max_examples=40, deadline=None)
    @given(st.text(alphabet="ABC", min_size=0, max_size=30))
    def test_against_python_re(self, text):
        """Final-entry count == number of positions where some substring
        ending there matches — cross-checked with Python's re."""
        pattern = "A(B|C)*A"
        dfa = compile_regex(pattern, FOLD)
        expected = sum(
            1 for i in range(1, len(text) + 1)
            if any(re.fullmatch(pattern, text[j:i])
                   for j in range(i))
        )
        assert dfa.count_matches(text.encode()) == expected

    def test_multi_pattern_outputs(self):
        dfa = compile_patterns(["AB", "CD"], FOLD)
        events = dfa.match_events(b"ABxCD")
        assert {(e.end, e.pattern) for e in events} == {(2, 0), (5, 1)}

    def test_case_fold_regex(self):
        fold = case_fold_32()
        dfa = compile_regex("VIRUS", fold)
        assert dfa.count_matches(fold.fold_bytes(b"a ViRuS!")) == 1


class TestMinimization:
    def test_minimize_preserves_language(self):
        raw = compile_regex("A(B|C)+D", FOLD, minimal=False)
        small = minimize(raw)
        assert small.num_states <= raw.num_states
        assert small.equivalent_to(raw)

    def test_minimize_reduces_redundancy(self):
        # After 'A' and after 'C' the suffix language is identical, so the
        # two subset states must merge.
        raw = compile_regex("AB|CB", FOLD, minimal=False)
        small = minimize(raw)
        assert small.num_states < raw.num_states

    def test_minimize_keeps_distinct_outputs_apart(self):
        """States reporting different pattern ids must not merge."""
        dfa = compile_patterns(["AB", "CB"], FOLD)
        texts = [(b"AB", 0), (b"CB", 1)]
        for text, pid in texts:
            events = dfa.match_events(text)
            assert events and all(e.pattern == pid for e in events)

    @settings(max_examples=25, deadline=None)
    @given(st.text(alphabet="AB", min_size=0, max_size=20))
    def test_minimized_equals_raw_on_inputs(self, text):
        raw = compile_regex("A*BA?", FOLD, minimal=False)
        small = minimize(raw)
        assert small.count_matches(text.encode()) == \
            raw.count_matches(text.encode())


class TestNFA:
    def test_epsilon_closure(self):
        ast = parse("A?", FOLD)
        nfa = build_nfa(ast, FOLD.width, unanchored=False)
        closure = nfa.epsilon_closure({nfa.start})
        # A? can accept immediately: closure contains an accepting state.
        assert nfa.accepted_patterns(closure)

    def test_combine_requires_patterns(self):
        with pytest.raises(RegexError):
            combine([], FOLD.width)

    def test_determinize_is_complete(self):
        nfa = build_nfa(parse("AB", FOLD), FOLD.width)
        dfa = determinize(nfa)
        assert dfa.transitions.shape[1] == FOLD.width
