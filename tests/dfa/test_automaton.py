"""The DFA quintuple: validation, interpretation, structure."""

import numpy as np
import pytest

from repro.dfa.automaton import DFA, DFAError, MatchEvent


def two_state_dfa():
    """Accepts any string ending in symbol 1 (2-symbol alphabet)."""
    return DFA([[0, 1], [0, 1]], finals=[1])


class TestValidation:
    def test_rejects_non_2d(self):
        with pytest.raises(DFAError):
            DFA([0, 1], finals=[])

    def test_rejects_dangling_transition(self):
        with pytest.raises(DFAError, match="unknown states"):
            DFA([[0, 5]], finals=[])

    def test_rejects_bad_start(self):
        with pytest.raises(DFAError, match="start"):
            DFA([[0, 0]], finals=[], start=3)

    def test_rejects_bad_final(self):
        with pytest.raises(DFAError, match="final"):
            DFA([[0, 0]], finals=[9])

    def test_rejects_output_on_nonfinal(self):
        with pytest.raises(DFAError, match="non-final"):
            DFA([[0, 1], [0, 1]], finals=[1], outputs={0: (0,)})

    def test_rejects_empty(self):
        with pytest.raises(DFAError):
            DFA(np.zeros((0, 2), dtype=np.int32), finals=[])


class TestInterpretation:
    def test_step(self):
        dfa = two_state_dfa()
        assert dfa.step(0, 1) == 1
        assert dfa.step(1, 0) == 0

    def test_step_rejects_bad_symbol(self):
        with pytest.raises(DFAError):
            two_state_dfa().step(0, 2)

    def test_count_matches(self):
        dfa = two_state_dfa()
        assert dfa.count_matches(bytes([1, 0, 1, 1])) == 3
        assert dfa.count_matches(bytes([0, 0])) == 0
        assert dfa.count_matches(b"") == 0

    def test_run_returns_final_state(self):
        dfa = two_state_dfa()
        assert dfa.run(bytes([0, 1])) == 1
        assert dfa.run(bytes([1, 0])) == 0

    def test_state_trace(self):
        dfa = two_state_dfa()
        assert dfa.state_trace(bytes([1, 0, 1])) == [1, 0, 1]

    def test_match_events_use_outputs(self):
        dfa = DFA([[0, 1], [0, 1]], finals=[1], outputs={1: (7,)})
        events = dfa.match_events(bytes([1, 0, 1]))
        assert events == [MatchEvent(1, 7), MatchEvent(3, 7)]


class TestStructure:
    def test_trim_drops_unreachable(self):
        # State 2 unreachable.
        dfa = DFA([[0, 1], [0, 1], [2, 2]], finals=[1])
        trimmed = dfa.trim()
        assert trimmed.num_states == 2
        assert trimmed.count_matches(bytes([1, 1])) == 2

    def test_trim_noop_when_all_reachable(self):
        dfa = two_state_dfa()
        assert dfa.trim() is dfa

    def test_reachable_states(self):
        dfa = DFA([[0, 1], [0, 1], [2, 2]], finals=[1])
        mask = dfa.reachable_states()
        assert mask.tolist() == [True, True, False]

    def test_memory_bytes(self):
        dfa = two_state_dfa()
        assert dfa.memory_bytes() == 2 * 2 * 4
        assert dfa.memory_bytes(cell_bytes=2) == 8

    def test_repr(self):
        assert "states=2" in repr(two_state_dfa())


class TestEquivalence:
    def test_equivalent_to_self(self):
        dfa = two_state_dfa()
        assert dfa.equivalent_to(dfa)

    def test_equivalent_to_padded_version(self):
        # Same language with a redundant duplicate state.
        a = two_state_dfa()
        b = DFA([[0, 1], [2, 1], [0, 1]], finals=[1])
        assert a.equivalent_to(b)

    def test_not_equivalent_different_language(self):
        a = two_state_dfa()
        b = DFA([[1, 0], [1, 0]], finals=[1])  # ends in symbol 0
        assert not a.equivalent_to(b)

    def test_not_equivalent_different_alphabet(self):
        a = two_state_dfa()
        b = DFA([[0, 1, 0], [0, 1, 0]], finals=[1])
        assert not a.equivalent_to(b)
