"""DOT export of automata."""

import pytest

from repro.dfa import build_dfa, case_fold_32
from repro.dfa.visualize import symbol_labels, to_dot


@pytest.fixture(scope="module")
def dfa():
    return build_dfa([bytes([1, 2]), bytes([3])], 32)


class TestToDot:
    def test_structure(self, dfa):
        dot = to_dot(dfa)
        assert dot.startswith("digraph dfa {")
        assert dot.rstrip().endswith("}")
        assert f"start -> s{dfa.start};" in dot

    def test_final_states_doubled(self, dfa):
        dot = to_dot(dfa)
        for f in dfa.finals:
            assert f"s{f} [shape=doublecircle];" in dot

    def test_outputs_labelled(self, dfa):
        dot = to_dot(dfa)
        assert "out:" in dot

    def test_start_edges_suppressed_by_default(self, dfa):
        dot = to_dot(dfa)
        assert f"-> s{dfa.start} [" not in dot
        full = to_dot(dfa, skip_to_start=False)
        assert f"-> s{dfa.start} [" in full

    def test_symbol_ranges_collapse(self, dfa):
        # Build a state with a contiguous symbol range to one target.
        from repro.dfa.automaton import DFA
        table = [[1] * 32, [1] * 32]
        d = DFA(table, finals=[1])
        dot = to_dot(d, skip_to_start=False)
        assert '"0-31"' in dot

    def test_fold_labels(self, dfa):
        fold = case_fold_32()
        dot = to_dot(dfa, fold=fold)
        # Symbol 1 is 'A' under the case fold.
        assert '"A' in dot or 'A"' in dot or "A-" in dot

    def test_too_many_states_rejected(self):
        from repro.workloads import signatures_for_states
        big = build_dfa(signatures_for_states(300, seed=1), 32)
        with pytest.raises(ValueError, match="slice"):
            to_dot(big, max_states=100)

    def test_every_state_mentioned(self, dfa):
        dot = to_dot(dfa, skip_to_start=False)
        for s in range(dfa.num_states):
            assert f"s{s}" in dot


class TestSymbolLabels:
    def test_case_fold_letters(self):
        labels = symbol_labels(case_fold_32())
        assert labels[1] == "A"
        assert labels[26] == "Z"

    def test_width_matches(self):
        assert len(symbol_labels(case_fold_32())) == 32
