"""Dictionary partitioning for series tiles / STT replacement."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dfa import DFAError, partition_patterns, trie_states
from repro.dfa.partition import _TrieCounter


def sym_pattern():
    return st.binary(min_size=1, max_size=8).map(
        lambda b: bytes(x % 31 + 1 for x in b))


class TestTrieCounter:
    def test_counts_shared_prefixes_once(self):
        assert trie_states([bytes([1, 2, 3]), bytes([1, 2, 4])]) == 5

    def test_duplicate_pattern_adds_nothing(self):
        assert trie_states([bytes([1, 2]), bytes([1, 2])]) == 3

    def test_added_states_prediction(self):
        trie = _TrieCounter()
        trie.insert(bytes([1, 2]))
        assert trie.added_states(bytes([1, 2, 3])) == 1
        assert trie.added_states(bytes([1, 2])) == 0
        assert trie.added_states(bytes([7, 8])) == 2


class TestPartition:
    def test_single_slice_when_it_fits(self):
        pats = [bytes([1, 2]), bytes([3, 4])]
        pd = partition_patterns(pats, max_states=100)
        assert pd.num_slices == 1
        pd.validate()

    def test_splits_on_budget(self):
        pats = [bytes([i, i, i]) for i in range(1, 9)]  # 4 states each
        pd = partition_patterns(pats, max_states=9)     # 2 patterns/slice
        assert pd.num_slices == 4
        pd.validate()

    def test_every_slice_respects_budget(self):
        pats = [bytes([i % 31 + 1, (i * 7) % 31 + 1, (i * 3) % 31 + 1])
                for i in range(40)]
        pd = partition_patterns(pats, max_states=12)
        pd.validate()
        for dfa in pd.dfas:
            assert dfa.num_states <= 12

    def test_oversized_pattern_rejected(self):
        with pytest.raises(DFAError, match="by itself"):
            partition_patterns([bytes([1] * 50)], max_states=10)

    def test_tiny_budget_rejected(self):
        with pytest.raises(DFAError):
            partition_patterns([bytes([1])], max_states=1)

    def test_empty_dictionary_rejected(self):
        with pytest.raises(DFAError):
            partition_patterns([], max_states=10)

    def test_global_pattern_id_roundtrip(self):
        pats = [bytes([i, i]) for i in range(1, 7)]
        pd = partition_patterns(pats, max_states=5)
        seen = set()
        for si in range(pd.num_slices):
            for li in range(len(pd.groups[si])):
                seen.add(pd.global_pattern_id(si, li))
        assert seen == set(range(len(pats)))

    def test_slice_patterns(self):
        pats = [bytes([1, 2]), bytes([3, 4])]
        pd = partition_patterns(pats, max_states=100)
        assert pd.slice_patterns(0) == pats

    def test_total_states(self):
        pats = [bytes([1, 2])]
        pd = partition_patterns(pats, max_states=100)
        assert pd.total_states() == 3

    @settings(max_examples=40, deadline=None)
    @given(st.lists(sym_pattern(), min_size=1, max_size=15, unique=True),
           st.integers(min_value=10, max_value=60))
    def test_partition_invariants(self, patterns, budget):
        pd = partition_patterns(patterns, budget)
        pd.validate()
        # Union of slices' match events == monolithic dictionary events.
        from repro.dfa import AhoCorasick
        import numpy as np
        text = bytes(np.random.default_rng(0).integers(0, 32, 150,
                                                       dtype=np.uint8))
        mono = AhoCorasick(patterns, 32).find_all(text)
        combined = []
        for si in range(pd.num_slices):
            ac = AhoCorasick(pd.slice_patterns(si), 32)
            for ev in ac.find_all(text):
                combined.append((ev.end, pd.global_pattern_id(si,
                                                              ev.pattern)))
        assert sorted(combined) == sorted((e.end, e.pattern) for e in mono)
